//! Record a structured execution trace of an adaptive run (with fault
//! injection) and export it in the Chrome trace-event format for
//! `chrome://tracing` / Perfetto.
//!
//! ```sh
//! cargo run --release --example trace_export
//! # then load /tmp/sae-trace.json in chrome://tracing
//! ```

use sae::dag::{Engine, EngineConfig, FaultPlan, TraceEvent};
use sae::workloads::WorkloadKind;

fn main() -> std::io::Result<()> {
    let mut config = EngineConfig::four_node_hdd();
    config.fault_plan = Some(
        FaultPlan::new(42)
            .with_crash(2, 120.0, 45.0)
            .with_task_failures(0.01),
    );
    let workload = WorkloadKind::Terasort.build_scaled(0.25);
    let engine = Engine::new(workload.configure(config.clone()), config.adaptive_policy());
    let (report, trace) = engine.run_traced(&workload.job);

    println!(
        "run complete: {:.1} s, {} trace events",
        report.total_runtime,
        trace.len()
    );
    println!(
        "tasks per executor: {:?}",
        trace.tasks_started_per_executor(4)
    );
    for executor in 0..4 {
        println!(
            "executor {executor} resizes: {:?}",
            trace.resizes_for(executor)
        );
    }
    let failures = trace
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::ExecutorFailed { .. } | TraceEvent::ExecutorRecovered { .. }
            )
        })
        .count();
    println!("failure/recovery events: {failures}");

    let path = std::env::temp_dir().join("sae-trace.json");
    std::fs::write(&path, trace.to_chrome_trace())?;
    println!("chrome trace written to {}", path.display());
    Ok(())
}
