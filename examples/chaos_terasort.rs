//! Terasort under chaos: one executor crash plus a 2 % transient task
//! failure rate. Retries, heartbeat detection, and re-registration keep
//! the job alive, and the adaptive policy still beats the default because
//! interval poisoning keeps contaminated measurements out of the
//! knowledge base.
//!
//! ```sh
//! cargo run --release --example chaos_terasort
//! ```

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig, FaultPlan};
use sae::workloads::WorkloadKind;

fn main() {
    let workload = WorkloadKind::Terasort.build_scaled(0.5);
    let plan = FaultPlan::new(2024)
        .with_crash(2, 60.0, 40.0)
        .with_task_failures(0.02);
    println!(
        "Terasort, {:.1} GiB input, crash of executor 2 at t=60s (40s downtime), 2% transient failures\n",
        workload.input_mb / 1024.0
    );

    let mut results = Vec::new();
    for (name, adaptive) in [("default", false), ("dynamic", true)] {
        let mut config = EngineConfig::four_node_hdd();
        config.fault_plan = Some(plan.clone());
        let config = workload.configure(config);
        let policy = if adaptive {
            config.adaptive_policy()
        } else {
            ThreadPolicy::Default
        };
        match Engine::new(config, policy).try_run(&workload.job) {
            Ok(report) => {
                println!(
                    "{name:>7}: {:>7.1} s  ({} attempts for {} tasks, {} failed, blacklisted: {:?})",
                    report.total_runtime,
                    report.total_attempts(),
                    report.stages.iter().map(|s| s.tasks).sum::<usize>(),
                    report.total_failed_attempts(),
                    report.blacklisted_executors,
                );
                results.push((name, report.total_runtime));
            }
            Err(err) => println!("{name:>7}: failed: {err}"),
        }
    }

    if let [(_, default), (_, dynamic)] = results[..] {
        println!(
            "\nadaptive vs default under chaos: {:+.1}%",
            (dynamic / default - 1.0) * 100.0
        );
    }
}
