//! Where the self-adaptive executors shine: PageRank's shuffle stages are
//! invisible to static tuning (limitation L2) but the MAPE-K loop tunes
//! every stage (Figure 8b).
//!
//! ```sh
//! cargo run --release --example pagerank_adaptive
//! ```

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig};
use sae::workloads::WorkloadKind;

fn main() {
    let config = EngineConfig::four_node_hdd();
    let workload = WorkloadKind::PageRank.build();

    let default = Engine::new(config.clone(), ThreadPolicy::Default).run(&workload.job);
    let dynamic = Engine::new(config.clone(), config.adaptive_policy()).run(&workload.job);

    println!(
        "PageRank: default {:.1} s -> dynamic {:.1} s ({:+.1}%)\n",
        default.total_runtime,
        dynamic.total_runtime,
        (dynamic.total_runtime / default.total_runtime - 1.0) * 100.0
    );

    println!("per-stage view (dynamic):");
    for stage in &dynamic.stages {
        let default_stage = &default.stages[stage.stage_id];
        println!(
            "  stage {} ({:<12}) {:>7.1} s (default {:>7.1} s)  threads {}/{}  [{}]",
            stage.stage_id,
            stage.name,
            stage.duration,
            default_stage.duration,
            stage.threads_used,
            dynamic.total_cores,
            stage.kind,
        );
    }

    println!("\nMAPE-K decision traces (executor 0):");
    for stage in &dynamic.stages {
        let e = &stage.executors[0];
        println!(
            "  stage {}: {:?} -> {} threads, {} monitored intervals",
            stage.stage_id,
            e.decisions,
            e.final_threads,
            e.intervals.len()
        );
        for iv in &e.intervals {
            println!(
                "      I_{:<2} eps={:>7.2}s  mu={:>7.1} MB/s  zeta={:.4}",
                iv.threads, iv.epoll_wait, iv.throughput, iv.zeta
            );
        }
    }
}
