//! How storage hardware changes the tuning landscape (§6.3, Figures
//! 10–11): SSDs tolerate concurrency that thrashes HDDs, so the same
//! workload wants very different thread counts — and the self-adaptive
//! executors find both without reconfiguration.
//!
//! ```sh
//! cargo run --release --example ssd_vs_hdd
//! ```

use sae::core::{StaticPolicy, ThreadPolicy};
use sae::dag::{Engine, EngineConfig};
use sae::workloads::WorkloadKind;

fn sweep(label: &str, config: &EngineConfig) {
    let workload = WorkloadKind::Terasort.build();
    println!("{label} static sweep (Terasort):");
    for threads in [32usize, 16, 8, 4, 2] {
        let policy = if threads == config.node_spec.cores {
            ThreadPolicy::Default
        } else {
            ThreadPolicy::Static(StaticPolicy::new(threads))
        };
        let report = Engine::new(config.clone(), policy).run(&workload.job);
        let stages: Vec<String> = report
            .stages
            .iter()
            .map(|s| format!("{:.0}", s.duration))
            .collect();
        println!(
            "  {threads:>2} threads -> {:>7.1} s  (stages: {})",
            report.total_runtime,
            stages.join(" / ")
        );
    }
    let dynamic = Engine::new(config.clone(), config.adaptive_policy()).run(&workload.job);
    let threads: Vec<String> = dynamic
        .stages
        .iter()
        .map(|s| format!("{}/{}", s.threads_used, dynamic.total_cores))
        .collect();
    println!(
        "  dynamic    -> {:>7.1} s  (threads: {})\n",
        dynamic.total_runtime,
        threads.join(" / ")
    );
}

fn main() {
    sweep("HDD", &EngineConfig::four_node_hdd());
    sweep("SSD", &EngineConfig::four_node_ssd());
    println!(
        "On HDDs the read stage wants ~8 threads; on SSDs the default 32\n\
         is already right and the controller leaves it alone — the same\n\
         binary adapts to both, with zero manual tuning."
    );
}
