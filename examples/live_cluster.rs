//! A live loopback cluster: one driver, three executors, real TCP, real
//! spill files — printing the driver's slot registry every time a
//! `PoolSizeChanged` message arrives (the §5.4 protocol extension made
//! visible).
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```

use sae::core::MapeConfig;
use sae::live::{terasort, ClusterConfig, LiveCluster, SlotInfo};

fn render_registry(registry: &[SlotInfo]) -> String {
    registry
        .iter()
        .enumerate()
        .map(|(e, s)| {
            let state = if !s.registered {
                "absent"
            } else if !s.alive {
                "LOST"
            } else if s.blacklisted {
                "blacklisted"
            } else {
                "alive"
            };
            format!("e{e}[{}/{} {state}]", s.free, s.slots)
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() {
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: 3,
        mape: MapeConfig::new(2, 8),
        ..ClusterConfig::default()
    })
    .expect("bind driver and launch executors");

    let job = terasort(24, 20_000, 42);
    println!(
        "running {} on 3 live executors over loopback TCP\n",
        job.name
    );
    println!("slot registry after each PoolSizeChanged round-trip:");

    let report = cluster
        .run_with_observer(&job, |decision, registry| {
            println!(
                "  t={:6.3}s  executor {} -> {} threads   {}",
                decision.at,
                decision.executor,
                decision.size,
                render_registry(registry)
            );
        })
        .expect("live terasort completes");
    cluster.shutdown().expect("executors exit cleanly");

    println!();
    for stage in &report.stages {
        println!(
            "stage {:>14}: {} tasks, {} attempts ({} failed), {:.3}s",
            stage.name, stage.tasks, stage.attempts, stage.failed_attempts, stage.duration_secs
        );
    }
    println!(
        "job {} finished in {:.3}s with {} pool-size round-trips",
        report.job,
        report.runtime_secs,
        report.decisions.len()
    );
}
