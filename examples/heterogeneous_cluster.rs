//! Per-node adaptation on a heterogeneous cluster (limitation L4).
//!
//! Real clusters show large disk-speed variability even across identical
//! hardware (Figure 3); because every executor runs its own MAPE-K loop,
//! slow nodes can settle on different thread counts than fast ones.
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig};
use sae::storage::VariabilityConfig;
use sae::workloads::WorkloadKind;

fn main() {
    let config = EngineConfig::four_node_hdd()
        .with_variability(VariabilityConfig::das5())
        .with_seed(2); // seed 2 includes a slow-disk outlier node
    let workload = WorkloadKind::Terasort.build();

    let default = Engine::new(config.clone(), ThreadPolicy::Default).run(&workload.job);
    let dynamic = Engine::new(config.clone(), config.adaptive_policy()).run(&workload.job);

    println!(
        "Terasort on a heterogeneous 4-node cluster (DAS-5 variability):\n  \
         default {:.1} s -> dynamic {:.1} s ({:+.1}%)\n",
        default.total_runtime,
        dynamic.total_runtime,
        (dynamic.total_runtime / default.total_runtime - 1.0) * 100.0
    );

    println!("per-executor settled thread counts (dynamic):");
    println!("stage     exec0  exec1  exec2  exec3");
    for stage in &dynamic.stages {
        let finals: Vec<String> = stage
            .executors
            .iter()
            .map(|e| format!("{:>5}", e.final_threads))
            .collect();
        println!("stage {}   {}", stage.stage_id, finals.join("  "));
    }
    println!(
        "\nEach executor tunes locally — no global coordination, which is\n\
         why the approach scales (every node makes a local decision, §6.2)."
    );
}
