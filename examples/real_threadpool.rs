//! The mechanism on real OS threads: an [`sae::pool::AdaptivePool`] runs a
//! synthetic I/O-contended workload and the MAPE-K loop resizes the pool
//! while tasks execute.
//!
//! ```sh
//! cargo run --release --example real_threadpool
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sae::core::MapeConfig;
use sae::pool::AdaptivePool;

fn main() {
    // Shared "device": tracks concurrent users; the more concurrent users,
    // the longer each simulated I/O takes and the more wait accumulates —
    // a miniature seek-thrash curve on real threads.
    let concurrent = Arc::new(AtomicUsize::new(0));
    let wait_us = Arc::new(AtomicU64::new(0));
    let bytes_kb = Arc::new(AtomicU64::new(0));

    let probe_wait = Arc::clone(&wait_us);
    let probe_bytes = Arc::clone(&bytes_kb);
    let pool = AdaptivePool::new(
        MapeConfig::new(2, 16),
        Arc::new(move || {
            (
                probe_wait.load(Ordering::Relaxed) as f64 / 1e6,
                probe_bytes.load(Ordering::Relaxed) as f64 / 1024.0,
            )
        }),
    );

    println!("stage start: pool at {} threads (c_min)", {
        pool.stage_started(Some(400));
        pool.current_threads()
    });

    for i in 0..400 {
        let concurrent = Arc::clone(&concurrent);
        let wait_us = Arc::clone(&wait_us);
        let bytes_kb = Arc::clone(&bytes_kb);
        pool.submit(move || {
            let users = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            // Free below ~6 concurrent users, then latency grows
            // quadratically — a miniature seek-thrash knee.
            let over = users.saturating_sub(6) as u64;
            let delay = 2_000 + over * over * 400;
            std::thread::sleep(Duration::from_micros(delay));
            wait_us.fetch_add(delay, Ordering::Relaxed);
            bytes_kb.fetch_add(10_240, Ordering::Relaxed); // 10 MB per task
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        if i % 100 == 99 {
            // Let the queue drain enough for the monitor to observe.
            while pool.current_threads() < 16
                && !pool.settled()
                && pool.intervals_observed() < 1 + i / 100
            {
                std::thread::sleep(Duration::from_millis(1));
            }
            println!(
                "  after {:>3} tasks: {} threads, {} intervals, settled: {}",
                i + 1,
                pool.current_threads(),
                pool.intervals_observed(),
                pool.settled()
            );
        }
    }
    pool.shutdown();
    println!(
        "final: {} threads (settled: {})",
        pool.current_threads(),
        pool.settled()
    );
}
