//! An actual (in-memory) Terasort on the adaptive real-thread pool:
//! generate 100-byte records, range-partition them as the paper's sampled
//! first stage does, and sort every partition as a task on an
//! [`sae::pool::AdaptivePool`]. Sorting is CPU-bound, so the controller
//! takes the L3 shortcut straight to `c_max` — the same decision the
//! simulated executors make for the SQL scan stages.
//!
//! ```sh
//! cargo run --release --example real_terasort
//! ```

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sae::core::MapeConfig;
use sae::pool::{AdaptivePool, CounterProbe};
use sae::workloads::datagen::{teragen, RangePartitioner, TeraRecord};

fn main() {
    let records = teragen(400_000, 2026); // ~40 MB of records
    println!(
        "generated {} records ({} MB)",
        records.len(),
        records.len() / 10_000
    );

    // Stage 0: sample and build the range partitioner (cheap, inline).
    let partitioner = RangePartitioner::from_sample(&records[..10_000], 64);
    let buckets = partitioner.split(&records);

    // Stage 1: sort each partition on the adaptive pool, with the shared
    // per-task probe the live runtime uses: tasks record the bytes they
    // touched (and, were they blocking on disk, the time spent waiting).
    let probe = CounterProbe::new();
    let pool = AdaptivePool::new(MapeConfig::new(2, 8), probe.as_probe());
    pool.stage_started(Some(buckets.len()));
    println!("pool starts at {} threads", pool.current_threads());

    let sorted: Arc<Mutex<Vec<Option<Vec<TeraRecord>>>>> =
        Arc::new(Mutex::new(vec![None; buckets.len()]));
    let started = Instant::now();
    for (i, mut bucket) in buckets.into_iter().enumerate() {
        let sorted = Arc::clone(&sorted);
        let probe = probe.clone();
        pool.submit(move || {
            let volume = bucket.len() as u64 * 100;
            bucket.sort_unstable();
            // Purely in-memory sorting: bytes moved, zero blocked time —
            // which is exactly why the controller reads it as CPU-bound.
            probe.record(volume, Duration::ZERO);
            sorted.lock().unwrap()[i] = Some(bucket);
        });
    }
    pool.shutdown();
    println!(
        "sorted in {:.1} ms; pool settled at {} threads (CPU-bound -> c_max)",
        started.elapsed().as_secs_f64() * 1e3,
        pool.current_threads()
    );

    // Verify the concatenation is globally ordered.
    let sorted = Arc::try_unwrap(sorted).unwrap().into_inner().unwrap();
    let mut previous: Option<[u8; 10]> = None;
    let mut total = 0usize;
    for bucket in sorted {
        let bucket = bucket.expect("every partition sorted");
        for r in &bucket {
            if let Some(p) = previous {
                assert!(p <= r.key, "output not globally sorted");
            }
            previous = Some(r.key);
        }
        total += bucket.len();
    }
    assert_eq!(total, 400_000);
    println!("verified: {total} records in global key order");
}
