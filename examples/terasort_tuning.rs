//! The paper's headline experiment: how the executor thread count changes
//! Terasort's runtime on HDDs (Figure 2a), and what each policy achieves
//! (Figure 8a).
//!
//! ```sh
//! cargo run --release --example terasort_tuning
//! ```

use sae::core::{StaticPolicy, ThreadPolicy};
use sae::dag::{Engine, EngineConfig};
use sae::workloads::WorkloadKind;

fn main() {
    let config = EngineConfig::four_node_hdd();
    let workload = WorkloadKind::Terasort.build();
    println!(
        "Terasort, {:.1} GiB input, {} nodes\n",
        workload.input_mb / 1024.0,
        config.nodes
    );

    println!("static sweep (threads for I/O stages; other stages default):");
    let mut best = (32usize, f64::INFINITY);
    for threads in [32usize, 16, 8, 4, 2] {
        let policy = if threads == config.node_spec.cores {
            ThreadPolicy::Default
        } else {
            ThreadPolicy::Static(StaticPolicy::new(threads))
        };
        let report = Engine::new(config.clone(), policy).run(&workload.job);
        println!("  {threads:>2} threads -> {:>7.1} s", report.total_runtime);
        if report.total_runtime < best.1 {
            best = (threads, report.total_runtime);
        }
    }
    println!("  best static: {} threads ({:.1} s)\n", best.0, best.1);

    let default = Engine::new(config.clone(), ThreadPolicy::Default)
        .run(&workload.job)
        .total_runtime;
    let dynamic = Engine::new(config.clone(), config.adaptive_policy())
        .run(&workload.job)
        .total_runtime;
    println!("default : {default:>7.1} s");
    println!(
        "static  : {:>7.1} s  ({:+.1}% vs default)",
        best.1,
        (best.1 / default - 1.0) * 100.0
    );
    println!(
        "dynamic : {dynamic:>7.1} s  ({:+.1}% vs default)",
        (dynamic / default - 1.0) * 100.0
    );
    println!("\n(The paper reports -39% for the best static setting and -34% dynamic.)");
}
