//! Quickstart: define a job, run it under the default and the
//! self-adaptive executor policies, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sae::core::ThreadPolicy;
use sae::dag::{Engine, EngineConfig, JobSpec, StageSpec};

fn main() {
    // A 3-stage job on the paper's 4-node HDD cluster: scan 20 GB, sort it
    // through a compressed shuffle, write the result back.
    let job = JobSpec::builder("quickstart-sort")
        .stage(StageSpec::read("scan", 20_480.0).cpu_per_mb(0.02))
        .stage(
            StageSpec::read("map", 20_480.0)
                .cpu_per_mb(0.04)
                .shuffle_out(9_000.0),
        )
        .stage(
            StageSpec::shuffle("reduce", 9_000.0)
                .cpu_per_mb(0.05)
                .write_output(20_480.0),
        )
        .build();

    let config = EngineConfig::four_node_hdd();
    println!(
        "cluster: {} nodes x {} cores, {} disks\n",
        config.nodes,
        config.node_spec.cores,
        config.node_spec.disk.name()
    );

    for policy in [ThreadPolicy::Default, config.adaptive_policy()] {
        let name = policy.name();
        let report = Engine::new(config.clone(), policy).run(&job);
        println!("policy: {name}");
        println!("  total runtime: {:.1} s", report.total_runtime);
        for stage in &report.stages {
            println!(
                "  stage {} ({:<8}) {:>8.1} s   threads {}/{}   cpu {:>3.0}%  iowait {:>3.0}%",
                stage.stage_id,
                stage.name,
                stage.duration,
                stage.threads_used,
                report.total_cores,
                stage.avg_cpu_busy * 100.0,
                stage.avg_cpu_iowait * 100.0,
            );
        }
        println!();
    }
}
