//! Umbrella crate for the SAE (Self-adaptive Executors) stack.
//!
//! Re-exports every sub-crate under a stable module path so examples and
//! downstream users only need a single dependency:
//!
//! ```
//! use sae::metrics::MetricRegistry;
//!
//! let registry = MetricRegistry::new();
//! registry.counter("demo").inc();
//! assert_eq!(registry.counter("demo").value(), 1);
//! ```

#![forbid(unsafe_code)]

pub use sae_cluster as cluster;
pub use sae_core as core;
pub use sae_dag as dag;
pub use sae_live as live;
pub use sae_metrics as metrics;
pub use sae_net as net;
pub use sae_pool as pool;
pub use sae_sim as sim;
pub use sae_storage as storage;
pub use sae_workloads as workloads;
