//! Property-based tests for the DFS model.

use proptest::prelude::*;
use sae_cluster::Dfs;

proptest! {
    /// Block sizes sum exactly to the file size and no block exceeds the
    /// configured block size.
    #[test]
    fn block_sizes_partition_the_file(
        block_size in 16u64..512,
        size_mb in 1.0f64..10_000.0,
        nodes in 1usize..32,
    ) {
        let mut dfs = Dfs::new(block_size, 3, 0);
        dfs.create_file("f", size_mb, nodes);
        let f = dfs.file("f").unwrap();
        let total: f64 = f.blocks.iter().map(|b| b.size_mb).sum();
        prop_assert!((total - size_mb).abs() < 1e-6);
        for b in &f.blocks {
            prop_assert!(b.size_mb > 0.0);
            prop_assert!(b.size_mb <= block_size as f64 + 1e-9);
        }
    }

    /// Replicas are distinct valid nodes and the count equals
    /// `min(replication, nodes)`.
    #[test]
    fn replica_placement_invariants(
        replication in 1usize..8,
        nodes in 1usize..16,
        size_mb in 1.0f64..2_000.0,
        seed in any::<u64>(),
    ) {
        let mut dfs = Dfs::new(64, replication, seed);
        dfs.create_file("f", size_mb, nodes);
        let expected = replication.min(nodes);
        for block in &dfs.file("f").unwrap().blocks {
            prop_assert_eq!(block.replicas.len(), expected);
            let mut sorted = block.replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), expected, "replicas must be distinct");
            for &r in &block.replicas {
                prop_assert!(r < nodes);
            }
        }
    }

    /// Placement is a pure function of (seed, name, size, nodes).
    #[test]
    fn placement_deterministic(seed in any::<u64>(), size_mb in 1.0f64..1_000.0) {
        let build = || {
            let mut dfs = Dfs::new(64, 2, seed);
            dfs.create_file("f", size_mb, 5);
            dfs.file("f").unwrap().clone()
        };
        prop_assert_eq!(build(), build());
    }

    /// Primary replicas round-robin across nodes, so reads are balanced.
    #[test]
    fn primaries_are_balanced(nodes in 1usize..12) {
        let mut dfs = Dfs::new(64, 1, 0);
        dfs.create_file("f", 64.0 * nodes as f64 * 4.0, nodes);
        let f = dfs.file("f").unwrap();
        let mut counts = vec![0usize; nodes];
        for b in &f.blocks {
            counts[b.replicas[0]] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "imbalanced primaries: {counts:?}");
    }
}
