//! An HDFS-like distributed file system model (placement + locality).
//!
//! The DFS does block bookkeeping only; the actual I/O flows are issued by
//! the DAG engine against the disks chosen here. Placement follows HDFS
//! semantics: the first replica lands on the writer's node (or round-robin
//! for generated input data), the remaining replicas on distinct random
//! nodes.

use std::collections::BTreeMap;

use sae_sim::rng::DeterministicRng;

/// One block of a DFS file.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    /// Block index within its file.
    pub index: usize,
    /// Block size in MB (the final block may be smaller).
    pub size_mb: f64,
    /// Nodes holding a replica, first entry is the primary.
    pub replicas: Vec<usize>,
}

impl BlockInfo {
    /// Whether `node` holds a replica of this block.
    pub fn is_local(&self, node: usize) -> bool {
        self.replicas.contains(&node)
    }
}

/// Metadata of a DFS file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileInfo {
    /// File name.
    pub name: String,
    /// Total size in MB.
    pub size_mb: f64,
    /// The file's blocks in order.
    pub blocks: Vec<BlockInfo>,
}

/// The distributed file system namespace.
///
/// # Examples
///
/// ```
/// use sae_cluster::Dfs;
///
/// let mut dfs = Dfs::new(128, 3, 1);
/// dfs.create_file("data", 300.0, 4);
/// let file = dfs.file("data").unwrap();
/// assert_eq!(file.blocks.len(), 3); // 128 + 128 + 44
/// assert!(file.blocks.iter().all(|b| b.replicas.len() == 3));
/// ```
#[derive(Debug, Clone)]
pub struct Dfs {
    block_size_mb: f64,
    replication: usize,
    seed: u64,
    files: BTreeMap<String, FileInfo>,
}

impl Dfs {
    /// Creates a DFS with the given block size (MB) and replication factor.
    ///
    /// # Panics
    ///
    /// Panics if `block_size_mb` or `replication` is zero.
    pub fn new(block_size_mb: u64, replication: usize, seed: u64) -> Self {
        assert!(block_size_mb > 0, "block size must be positive");
        assert!(replication > 0, "replication factor must be positive");
        Self {
            block_size_mb: block_size_mb as f64,
            replication,
            seed,
            files: BTreeMap::new(),
        }
    }

    /// Block size in MB.
    pub fn block_size_mb(&self) -> f64 {
        self.block_size_mb
    }

    /// Replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Effective replication on a cluster of `nodes` nodes (capped, since a
    /// node stores at most one replica of a block).
    pub fn effective_replication(&self, nodes: usize) -> usize {
        self.replication.min(nodes)
    }

    /// Creates a file of `size_mb`, placing block replicas across `nodes`
    /// nodes (round-robin primaries, random distinct secondaries).
    ///
    /// Returns the created file's metadata.
    ///
    /// # Panics
    ///
    /// Panics if the file already exists, `size_mb` is not positive, or
    /// `nodes` is zero.
    pub fn create_file(&mut self, name: &str, size_mb: f64, nodes: usize) -> &FileInfo {
        assert!(
            !self.files.contains_key(name),
            "file {name:?} already exists"
        );
        assert!(size_mb > 0.0, "file size must be positive");
        assert!(nodes > 0, "cluster must have nodes");
        let mut rng = DeterministicRng::seed(
            self.seed
                ^ name.bytes().fold(0u64, |h, b| {
                    h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64)
                }),
        );
        let replication = self.effective_replication(nodes);
        let n_blocks = (size_mb / self.block_size_mb).ceil() as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut remaining = size_mb;
        for index in 0..n_blocks {
            let size = remaining.min(self.block_size_mb);
            remaining -= size;
            let primary = index % nodes;
            let mut replicas = vec![primary];
            let mut candidates: Vec<usize> = (0..nodes).filter(|&n| n != primary).collect();
            rng.shuffle(&mut candidates);
            replicas.extend(candidates.into_iter().take(replication - 1));
            blocks.push(BlockInfo {
                index,
                size_mb: size,
                replicas,
            });
        }
        self.files.insert(
            name.to_owned(),
            FileInfo {
                name: name.to_owned(),
                size_mb,
                blocks,
            },
        );
        self.files.get(name).expect("just inserted")
    }

    /// Looks up a file by name.
    pub fn file(&self, name: &str) -> Option<&FileInfo> {
        self.files.get(name)
    }

    /// Removes a file, returning its metadata if it existed.
    pub fn delete_file(&mut self, name: &str) -> Option<FileInfo> {
        self.files.remove(name)
    }

    /// Iterates over all files in name order.
    pub fn iter(&self) -> impl Iterator<Item = &FileInfo> {
        self.files.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_and_sizes() {
        let mut dfs = Dfs::new(128, 1, 0);
        dfs.create_file("f", 300.0, 2);
        let f = dfs.file("f").unwrap();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.blocks[0].size_mb, 128.0);
        assert_eq!(f.blocks[1].size_mb, 128.0);
        assert!((f.blocks[2].size_mb - 44.0).abs() < 1e-9);
        let total: f64 = f.blocks.iter().map(|b| b.size_mb).sum();
        assert!((total - 300.0).abs() < 1e-9);
    }

    #[test]
    fn replicas_are_distinct_nodes() {
        let mut dfs = Dfs::new(64, 3, 7);
        dfs.create_file("f", 6400.0, 8);
        for block in &dfs.file("f").unwrap().blocks {
            let mut nodes = block.replicas.clone();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), 3, "replicas must be distinct");
        }
    }

    #[test]
    fn replication_capped_by_cluster_size() {
        let mut dfs = Dfs::new(64, 4, 0);
        dfs.create_file("f", 128.0, 2);
        for block in &dfs.file("f").unwrap().blocks {
            assert_eq!(block.replicas.len(), 2);
        }
    }

    #[test]
    fn full_replication_gives_full_locality() {
        // Paper setup: replication = #nodes so every executor reads locally.
        let mut dfs = Dfs::new(128, 4, 3);
        dfs.create_file("input", 2048.0, 4);
        for block in &dfs.file("input").unwrap().blocks {
            for node in 0..4 {
                assert!(block.is_local(node));
            }
        }
    }

    #[test]
    fn primaries_round_robin() {
        let mut dfs = Dfs::new(128, 1, 0);
        dfs.create_file("f", 512.0, 4);
        let primaries: Vec<usize> = dfs
            .file("f")
            .unwrap()
            .blocks
            .iter()
            .map(|b| b.replicas[0])
            .collect();
        assert_eq!(primaries, vec![0, 1, 2, 3]);
    }

    #[test]
    fn placement_is_deterministic() {
        let build = || {
            let mut dfs = Dfs::new(64, 2, 11);
            dfs.create_file("f", 640.0, 5);
            dfs.file("f").unwrap().clone()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn delete_removes() {
        let mut dfs = Dfs::new(64, 1, 0);
        dfs.create_file("f", 64.0, 1);
        assert!(dfs.delete_file("f").is_some());
        assert!(dfs.file("f").is_none());
        assert!(dfs.delete_file("f").is_none());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_create_rejected() {
        let mut dfs = Dfs::new(64, 1, 0);
        dfs.create_file("f", 64.0, 1);
        dfs.create_file("f", 64.0, 1);
    }
}
