//! Nodes and cluster construction.

use sae_net::{Fabric, FabricConfig};
use sae_sim::{CapacityCurve, Kernel, ResourceId};
use sae_storage::{DeviceProfile, Disk, NodeVariability, VariabilityConfig};

/// Hardware description of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of virtual cores (hardware execution contexts).
    pub cores: usize,
    /// Memory in GB (bounds executor caching; informational for now).
    pub memory_gb: f64,
    /// Storage device profile.
    pub disk: DeviceProfile,
}

impl NodeSpec {
    /// A DAS-5 node as used in the paper's evaluation: 32 virtual cores
    /// (16 physical with HyperThreading), 56 GB of memory, 7200 rpm HDD.
    pub fn das5_hdd() -> Self {
        Self {
            cores: 32,
            memory_gb: 56.0,
            disk: DeviceProfile::hdd_7200(),
        }
    }

    /// The same node with a SATA SSD (§6.3).
    pub fn das5_ssd() -> Self {
        Self {
            cores: 32,
            memory_gb: 56.0,
            disk: DeviceProfile::ssd_sata(),
        }
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self::das5_hdd()
    }
}

/// One simulated node: CPU, disk and NIC resources.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node index within the cluster.
    pub id: usize,
    /// Hardware description.
    pub spec: NodeSpec,
    /// CPU resource: capacity = `cores` core-seconds/s, ≤ 1 core per flow.
    pub cpu: ResourceId,
    /// The node's disk.
    pub disk: Disk,
    /// Ingress NIC resource.
    pub nic: ResourceId,
    /// Page-cache-backed shuffle-serve path (remote fetches read spilled
    /// map output through here, not through the platter).
    pub serve: ResourceId,
    /// Disk speed factor from per-node variability.
    pub speed_factor: f64,
}

/// Builds a [`Cluster`], registering all resources on a kernel.
///
/// # Examples
///
/// ```
/// use sae_cluster::{ClusterBuilder, NodeSpec};
/// use sae_sim::Kernel;
/// use sae_storage::VariabilityConfig;
///
/// let mut kernel: Kernel<u32> = Kernel::new();
/// let cluster = ClusterBuilder::new(4)
///     .node_spec(NodeSpec::das5_ssd())
///     .variability(VariabilityConfig::das5())
///     .seed(7)
///     .build(&mut kernel);
/// assert_eq!(cluster.nodes(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    nodes: usize,
    spec: NodeSpec,
    fabric: FabricConfig,
    variability: VariabilityConfig,
    seed: u64,
}

impl ClusterBuilder {
    /// Starts a builder for a cluster of `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        Self {
            nodes,
            spec: NodeSpec::default(),
            fabric: FabricConfig::default(),
            variability: VariabilityConfig::homogeneous(),
            seed: 0,
        }
    }

    /// Sets the per-node hardware spec (all nodes identical, as on DAS-5).
    pub fn node_spec(mut self, spec: NodeSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the network fabric configuration.
    pub fn fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }

    /// Enables per-node disk speed variability.
    pub fn variability(mut self, variability: VariabilityConfig) -> Self {
        self.variability = variability;
        self
    }

    /// Seeds the variability sampler.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Registers every node's resources on `kernel` and returns the
    /// cluster.
    pub fn build<P>(&self, kernel: &mut Kernel<P>) -> Cluster {
        let fabric = Fabric::register(kernel, self.fabric, self.nodes);
        let variability = NodeVariability::new(self.variability, self.seed);
        let nodes = (0..self.nodes)
            .map(|id| {
                let speed_factor = variability.speed_factor(id);
                let cpu = kernel.add_resource(
                    CapacityCurve::constant(self.spec.cores as f64).with_per_flow_cap(1.0),
                );
                let disk = Disk::register(kernel, self.spec.disk.clone(), speed_factor);
                let serve_profile = self.spec.disk.clone();
                let serve = kernel.add_resource(
                    CapacityCurve::from_fn(move |counts| {
                        serve_profile.serve_path_bandwidth(counts.total()) * speed_factor
                    })
                    .with_per_flow_cap(self.spec.disk.serve_stream_cap()),
                );
                Node {
                    id,
                    spec: self.spec.clone(),
                    cpu,
                    disk,
                    nic: fabric.ingress(id),
                    serve,
                    speed_factor,
                }
            })
            .collect();
        Cluster { nodes, fabric }
    }
}

/// A set of simulated nodes sharing a network fabric.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    fabric: Fabric,
}

impl Cluster {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Iterates over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// The network fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Total virtual cores across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.spec.cores).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_das5_hdd() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let cluster = ClusterBuilder::new(4).build(&mut kernel);
        assert_eq!(cluster.nodes(), 4);
        assert_eq!(cluster.node(0).spec.cores, 32);
        assert_eq!(cluster.total_cores(), 128);
        assert_eq!(cluster.node(0).spec.disk.name(), "hdd-7200rpm");
    }

    #[test]
    fn homogeneous_cluster_has_unit_factors() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let cluster = ClusterBuilder::new(3).build(&mut kernel);
        for node in cluster.iter() {
            assert_eq!(node.speed_factor, 1.0);
        }
    }

    #[test]
    fn variability_spreads_factors() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let cluster = ClusterBuilder::new(44)
            .variability(VariabilityConfig::das5())
            .seed(42)
            .build(&mut kernel);
        let factors: Vec<f64> = cluster.iter().map(|n| n.speed_factor).collect();
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "variability must spread factors");
    }

    #[test]
    fn nodes_get_distinct_resources() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let cluster = ClusterBuilder::new(3).build(&mut kernel);
        let mut seen = std::collections::HashSet::new();
        for node in cluster.iter() {
            assert!(seen.insert(node.cpu));
            assert!(seen.insert(node.disk.resource()));
            assert!(seen.insert(node.nic));
        }
    }

    #[test]
    fn ssd_spec_propagates() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let cluster = ClusterBuilder::new(2)
            .node_spec(NodeSpec::das5_ssd())
            .build(&mut kernel);
        assert_eq!(cluster.node(1).spec.disk.name(), "ssd-sata");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        let _ = ClusterBuilder::new(0);
    }
}
