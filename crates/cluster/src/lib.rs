//! Cluster topology and an HDFS-like distributed file system model.
//!
//! A [`Cluster`] registers, per node, a CPU resource (capacity = core
//! count, one core max per thread), a [`sae_storage::Disk`] with per-node
//! speed variability, and an ingress NIC from [`sae_net::Fabric`] — the
//! simulated stand-in for a DAS-5 node (§6.1: 32 virtual cores, 56 GB RAM,
//! 7200 rpm HDD or SATA SSD).
//!
//! The [`Dfs`] models HDFS block placement: files are split into fixed-size
//! blocks, each replicated onto `replication` distinct nodes, enabling the
//! locality-aware task placement the paper's experimental setup relies on
//! ("replication factor equal to the number of nodes ... to make sure all
//! executors achieve maximum locality").
//!
//! # Examples
//!
//! ```
//! use sae_cluster::{ClusterBuilder, Dfs};
//! use sae_sim::Kernel;
//!
//! let mut kernel: Kernel<u32> = Kernel::new();
//! let cluster = ClusterBuilder::new(4).build(&mut kernel);
//! let mut dfs = Dfs::new(128, 4, 42);
//! dfs.create_file("input", 1024.0, cluster.nodes());
//! assert_eq!(dfs.file("input").unwrap().blocks.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfs;
mod topology;

pub use dfs::{BlockInfo, Dfs, FileInfo};
pub use topology::{Cluster, ClusterBuilder, Node, NodeSpec};
