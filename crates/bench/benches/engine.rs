//! Driver-scheduler scaling benchmark: the indexed pending queue vs the
//! pre-index reference scan.
//!
//! Two layers:
//!
//! - **queue drain** isolates pure scheduling cost: `n` tasks with
//!   replica-style locality are enqueued and drained through round-robin
//!   pick sweeps, the access pattern of the engine's assignment loop. The
//!   reference scan pays two `O(pending)` scans plus a `Vec::remove` shift
//!   per pick (`O(n²)` total); the indexed queue is amortised `O(1)` per
//!   task. The reference is capped at 10⁴ tasks.
//! - **engine runs** time whole simulations of a scheduling-dominated job
//!   (one read stage fanned out into tiny tasks), indexed vs reference,
//!   asserting bit-identical `JobReport`s wherever both run.
//!
//! Besides the criterion groups, a summary pass prints the speedup per
//! size; set `SAE_WRITE_BENCH_JSON=1` to rewrite the checked-in
//! `BENCH_engine.json` at the repo root:
//!
//! ```text
//! SAE_WRITE_BENCH_JSON=1 cargo bench -p sae-bench --bench engine
//! ```

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use sae_core::ThreadPolicy;
use sae_dag::sched::{PendingQueue, ReferenceQueue};
use sae_dag::{Engine, EngineConfig, JobReport, JobSpec, StageSpec};

/// Nodes backing the queue-drain layer (HDFS-style replication 3).
const DRAIN_NODES: usize = 64;

/// Replica-style preferred list for task `t`.
fn replicas(t: usize, nodes: usize) -> [usize; 3] {
    [t % nodes, (t + 1) % nodes, (t + 2) % nodes]
}

/// Enqueues `n` tasks and drains them through round-robin pick sweeps.
/// Returns the picked sequence's checksum so the work cannot be optimised
/// away.
fn drain_indexed(queue: &mut PendingQueue, n: usize) -> usize {
    queue.reset(n, DRAIN_NODES);
    for t in 0..n {
        queue.push(t, &replicas(t, DRAIN_NODES));
    }
    let mut sum = 0usize;
    let mut e = 0usize;
    while !queue.is_empty() {
        sum = sum.wrapping_add(queue.pick(e, |_| false).expect("non-empty queue"));
        e = (e + 1) % DRAIN_NODES;
    }
    sum
}

fn drain_reference(queue: &mut ReferenceQueue, n: usize) -> usize {
    queue.reset();
    for t in 0..n {
        queue.push(t);
    }
    let mut sum = 0usize;
    let mut e = 0usize;
    while !queue.is_empty() {
        let picked = queue
            .pick(e, |t| replicas(t, DRAIN_NODES).contains(&e), |_| false)
            .expect("non-empty queue");
        sum = sum.wrapping_add(picked);
        e = (e + 1) % DRAIN_NODES;
    }
    sum
}

/// A scheduling-dominated job: one read stage fanned out into `tasks`
/// tiny tasks, so driver-side queue work dominates the simulation.
fn scale_job(tasks: usize) -> JobSpec {
    JobSpec::builder("sched-scale")
        .stage(
            StageSpec::read("scan", 2048.0)
                .with_tasks(tasks)
                .cpu_per_mb(0.0005),
        )
        .build()
}

fn run_engine(tasks: usize, nodes: usize, reference: bool) -> JobReport {
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.nodes = nodes;
    cfg.reference_scheduler = reference;
    Engine::new(cfg, ThreadPolicy::Default).run(&scale_job(tasks))
}

/// The task-count → cluster-size grid of the summary pass.
const ENGINE_GRID: [(usize, usize); 3] = [(1_000, 4), (10_000, 16), (100_000, 256)];

/// Reference cap: above this the `O(n²)` scan takes minutes.
const REFERENCE_CAP: usize = 10_000;

fn bench_queue_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_drain");
    let mut reference = ReferenceQueue::new();
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, &n| {
            b.iter(|| black_box(drain_reference(&mut reference, n)));
        });
    }
    let mut indexed = PendingQueue::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| black_box(drain_indexed(&mut indexed, n)));
        });
    }
    group.finish();
}

fn bench_engine_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    for &(tasks, nodes) in ENGINE_GRID.iter().filter(|&&(t, _)| t <= REFERENCE_CAP) {
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{tasks}t_{nodes}n")),
            &tasks,
            |b, &tasks| {
                b.iter(|| black_box(run_engine(tasks, nodes, true).total_runtime));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("indexed", format!("{tasks}t_{nodes}n")),
            &tasks,
            |b, &tasks| {
                b.iter(|| black_box(run_engine(tasks, nodes, false).total_runtime));
            },
        );
    }
    group.finish();
}

criterion_group!(engine_benches, bench_queue_drain, bench_engine_runs);

/// Best-of-three wall-clock seconds for `f()`.
fn measure<O>(mut f: impl FnMut() -> O) -> (f64, O) {
    let start = Instant::now();
    let mut out = f();
    let mut best = start.elapsed().as_secs_f64();
    for _ in 0..2 {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

fn summary_json() -> String {
    let mut drain_rows = String::new();
    let mut indexed = PendingQueue::new();
    let mut reference = ReferenceQueue::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        let (idx_s, idx_sum) = measure(|| drain_indexed(&mut indexed, n));
        let reference = (n <= REFERENCE_CAP).then(|| {
            let (ref_s, ref_sum) = measure(|| drain_reference(&mut reference, n));
            assert_eq!(idx_sum, ref_sum, "drain checksums diverged at n={n}");
            ref_s
        });
        let speedup = reference.map(|ref_s| ref_s / idx_s);
        println!(
            "drain  n={n:>6}  indexed {:>10.1} tasks/s  reference {}  speedup {}",
            n as f64 / idx_s,
            reference.map_or("        (skipped)".into(), |s| format!(
                "{:>10.1} tasks/s",
                n as f64 / s
            )),
            speedup.map_or("   —".into(), |s| format!("{s:.1}x")),
        );
        if !drain_rows.is_empty() {
            drain_rows.push_str(",\n");
        }
        drain_rows.push_str(&format!(
            "    {{\n      \"pending_tasks\": {n},\n      \"indexed_seconds\": {idx_s:.6},\n      \"reference_seconds\": {},\n      \"speedup\": {}\n    }}",
            reference.map_or("null".into(), |s| format!("{s:.6}")),
            speedup.map_or("null".into(), |s| format!("{s:.2}")),
        ));
    }

    let mut engine_rows = String::new();
    for &(tasks, nodes) in &ENGINE_GRID {
        let (idx_s, idx_report) = measure(|| run_engine(tasks, nodes, false));
        let reference = (tasks <= REFERENCE_CAP).then(|| {
            let (ref_s, ref_report) = measure(|| run_engine(tasks, nodes, true));
            // `{:?}` of f64 is the shortest round-trip representation, so
            // equal debug strings mean bit-equal reports.
            assert_eq!(
                format!("{idx_report:?}"),
                format!("{ref_report:?}"),
                "JobReports diverged at {tasks} tasks / {nodes} nodes"
            );
            ref_s
        });
        let speedup = reference.map(|ref_s| ref_s / idx_s);
        println!(
            "engine n={tasks:>6} nodes={nodes:>3}  indexed {idx_s:>8.3}s  reference {}  speedup {}",
            reference.map_or("(skipped)".into(), |s| format!("{s:>8.3}s")),
            speedup.map_or("   —".into(), |s| format!("{s:.1}x")),
        );
        if !engine_rows.is_empty() {
            engine_rows.push_str(",\n");
        }
        engine_rows.push_str(&format!(
            "    {{\n      \"tasks\": {tasks},\n      \"nodes\": {nodes},\n      \"indexed_seconds\": {idx_s:.6},\n      \"reference_seconds\": {},\n      \"speedup\": {},\n      \"reports_identical\": {}\n    }}",
            reference.map_or("null".into(), |s| format!("{s:.6}")),
            speedup.map_or("null".into(), |s| format!("{s:.2}")),
            if reference.is_some() { "true" } else { "null" },
        ));
    }

    format!(
        "{{\n  \"benchmark\": \"engine_scheduler_scaling\",\n  \"workload\": \"queue drain: n replica-local tasks, round-robin picks over {DRAIN_NODES} nodes; engine runs: one read stage fanned out into n tiny tasks\",\n  \"timing\": \"best of 3 runs, release build; reference scan capped at {REFERENCE_CAP} tasks\",\n  \"queue_drain\": [\n{drain_rows}\n  ],\n  \"engine_runs\": [\n{engine_rows}\n  ]\n}}\n"
    )
}

fn main() {
    engine_benches();
    println!();
    let json = summary_json();
    if std::env::var("SAE_WRITE_BENCH_JSON").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
        std::fs::write(path, &json).expect("write BENCH_engine.json");
        println!("wrote {path}");
    }
}
