//! Flight-recorder overhead benchmark: what does always-on tracing cost?
//!
//! Two layers. The criterion groups price the primitive: one
//! `FlightRecorder::push` when disabled (capacity 0, a single branch),
//! when enabled, and under contention, plus a `chrome_trace` render of a
//! full ring. The summary pass then prices the system: a loopback
//! Terasort with the recorder off vs on, interleaved best-of-N wall
//! clock, asserting the traced run costs less than 2% — the budget that
//! makes it safe to leave the recorder on in every live run.
//!
//! Set `SAE_WRITE_BENCH_JSON=1` to rewrite the checked-in
//! `BENCH_recorder.json` at the repo root:
//!
//! ```text
//! SAE_WRITE_BENCH_JSON=1 cargo bench -p sae-bench --bench recorder
//! ```

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use sae_core::MapeConfig;
use sae_live::{terasort, ClusterConfig, FlightRecorder, LiveCluster, LiveEvent};

fn frame_event(i: usize) -> LiveEvent {
    LiveEvent::FrameSent {
        executor: i % 4,
        kind: "assign-task",
        bytes: 64 + i % 128,
        at: i as f64 * 1e-6,
    }
}

fn bench_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("recorder_push");
    let disabled = FlightRecorder::disabled();
    group.bench_function("disabled", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            disabled.push(black_box(frame_event(i)));
        });
    });
    let enabled = FlightRecorder::new(16_384);
    group.bench_function("enabled_16384", |b| {
        let mut i = 0;
        b.iter(|| {
            i += 1;
            enabled.push(black_box(frame_event(i)));
        });
    });
    group.bench_function("enabled_contended_4_threads", |b| {
        let recorder = FlightRecorder::new(16_384);
        b.iter(|| {
            std::thread::scope(|s| {
                for t in 0..4 {
                    let r = recorder.clone();
                    s.spawn(move || {
                        for i in 0..256 {
                            r.push(frame_event(t * 256 + i));
                        }
                    });
                }
            });
        });
    });
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let recorder = FlightRecorder::new(16_384);
    for i in 0..16_384 {
        recorder.push(frame_event(i));
    }
    c.bench_function("chrome_trace_render_16384", |b| {
        b.iter(|| black_box(recorder.chrome_trace().len()));
    });
}

criterion_group!(recorder_benches, bench_push, bench_render);

/// One loopback Terasort; returns the wall-clock seconds of the `run`
/// call alone (launch and shutdown excluded — the 2% budget is about the
/// job, not the one-off trace dump).
fn run_terasort(recorder_capacity: usize, seed: u64) -> f64 {
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: 3,
        mape: MapeConfig::new(2, 8),
        recorder_capacity,
        // A tight scheduling quantum: at the 50ms default the driver's
        // assignment loop granularity dominates run-to-run variance.
        check_interval: Duration::from_millis(10),
        ..ClusterConfig::default()
    })
    .expect("launch live cluster");
    let start = Instant::now();
    cluster
        .run(&terasort(48, 60_000, seed))
        .expect("live terasort");
    let secs = start.elapsed().as_secs_f64();
    cluster.shutdown().expect("clean shutdown");
    secs
}

/// Interleaved best-of-N: alternating off/on runs so thermal or cache
/// drift hits both sides equally; the minimum is the least-noisy
/// estimator for a fixed workload. If the first batch lands over budget
/// (the true cost is well under 1%, so that means scheduling noise), one
/// escalation batch doubles the sample before the verdict.
fn measure_overhead(rounds: usize) -> (f64, f64, f64) {
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    // One warm-up pair primes the page cache for the spill files.
    run_terasort(0, 1);
    run_terasort(16_384, 1);
    let mut measured = 0;
    loop {
        for round in measured..measured + rounds {
            let seed = 100 + round as u64;
            best_off = best_off.min(run_terasort(0, seed));
            best_on = best_on.min(run_terasort(16_384, seed));
        }
        measured += rounds;
        let overhead = (best_on - best_off) / best_off * 100.0;
        if overhead < 2.0 || measured > rounds {
            return (best_off, best_on, overhead);
        }
        println!(
            "  first batch over budget ({overhead:+.2}%): escalating to {} rounds",
            2 * rounds
        );
    }
}

fn main() {
    recorder_benches();
    println!();
    let (off, on, overhead) = measure_overhead(9);
    println!(
        "loopback Terasort (48 tasks x 60k records, 3 executors), best of 9:\n  \
         recorder off {off:.4}s   recorder on {on:.4}s   overhead {overhead:+.2}%"
    );
    let json = format!(
        "{{\n  \"benchmark\": \"recorder_overhead\",\n  \"workload\": \"loopback Terasort, 48 tasks x 60k records, 3 executors\",\n  \"timing\": \"interleaved best of 9 runs, release build, run() wall clock\",\n  \"recorder_off_seconds\": {off:.6},\n  \"recorder_on_seconds\": {on:.6},\n  \"overhead_percent\": {overhead:.3},\n  \"budget_percent\": 2.0\n}}\n"
    );
    if std::env::var("SAE_WRITE_BENCH_JSON").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recorder.json");
        std::fs::write(path, &json).expect("write BENCH_recorder.json");
        println!("wrote {path}");
    }
    assert!(
        overhead < 2.0,
        "flight recorder exceeded its 2% overhead budget: {overhead:+.2}%"
    );
    println!("OK: recorder overhead {overhead:+.2}% is within the 2% budget");
}
