//! Reactor scale sweep: one driver, hundreds of executor connections.
//!
//! A single-threaded *fake fleet* — N non-blocking loopback sockets
//! driven by the same `sae-poll` poller the reactor uses — registers
//! with the driver and answers every `AssignTask` with an instant
//! `TaskFinished`, so the measurement isolates the driver's wire layer:
//! no Terasort I/O, no MAPE-K, just frames. The sweep runs executor
//! counts 4→512 against both transports:
//!
//! * `reactor` — the epoll event loop (one thread, all sockets, batched
//!   decode, coalesced writes);
//! * `blocking` — the pinned thread-per-connection reference (one reader
//!   thread per socket, synchronous writes).
//!
//! Reported per point: frames/sec through the driver, client-measured
//! assignment turnaround (`TaskFinished` sent → next `AssignTask`
//! received) p50/p99, and wakeups per frame (how many frames each
//! scheduler wakeup amortizes — the reactor's whole thesis).
//!
//! Acceptance gates (full sweep): the reactor holds ≥256 concurrent
//! registered connections at the top of the sweep, and beats the
//! blocking baseline's frames/sec by ≥5x there.
//!
//! `SAE_REACTOR_BENCH_QUICK=1` shrinks the sweep to the 128-executor
//! point for CI smoke. Set `SAE_WRITE_BENCH_JSON=1` to rewrite the
//! checked-in `BENCH_reactor.json`:
//!
//! ```text
//! SAE_WRITE_BENCH_JSON=1 cargo bench -p sae-bench --bench reactor
//! ```

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sae_dag::Message;
use sae_live::wire::{Frame, FrameCursor};
use sae_live::{terasort, Driver, DriverConfig, DriverTransport, FlightRecorder};
use sae_metrics::MetricRegistry;
use sae_poll::{Event, Interest, Poller};

/// Slots each fake executor registers with: enough outstanding
/// assignments per connection to keep the driver's batches meaty.
const SLOTS: usize = 8;

/// One fake executor connection.
struct FakeConn {
    stream: TcpStream,
    cursor: FrameCursor,
    out: VecDeque<u8>,
    want_write: bool,
    done: bool,
    /// Set when a `TaskFinished` goes out; taken when the next
    /// `AssignTask` lands — the assignment turnaround sample.
    armed_at: Option<Instant>,
}

impl FakeConn {
    fn queue(&mut self, frame: &Frame, scratch: &mut Vec<u8>) {
        scratch.clear();
        frame.encode(scratch);
        self.out.extend(scratch.iter().copied());
    }

    /// Writes queued bytes until drained or `WouldBlock`; returns
    /// whether the queue is now empty.
    fn flush(&mut self) -> io::Result<bool> {
        while !self.out.is_empty() {
            let (head, _) = self.out.as_slices();
            match self.stream.write(head) {
                Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote 0")),
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

/// What the fake fleet measured from its side of the wire.
struct FleetReport {
    /// Assignment-turnaround samples, sorted, in milliseconds.
    latencies: Vec<f64>,
    /// First `AssignTask` seen → last frame seen: the steady-state
    /// window. Connection setup and registration happen before the
    /// first assignment, so backlog stalls during the connect storm
    /// (the listener queue holds 128; a 512-socket burst would park
    /// the rest in SYN retransmit for seconds) don't pollute the
    /// throughput of either transport.
    steady_secs: f64,
}

/// One point of the sweep.
struct ScalePoint {
    executors: usize,
    transport: &'static str,
    runtime_secs: f64,
    steady_secs: f64,
    frames: u64,
    frames_per_sec: f64,
    wakeups_per_frame: f64,
    p50_ms: f64,
    p99_ms: f64,
    registered: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Flushes `conn`, arming or disarming `EPOLLOUT` as the queue state
/// demands (the same partial-write discipline the reactor itself uses).
fn flush_and_arm(poller: &Poller, conn: &mut FakeConn, token: u64) {
    match conn.flush() {
        Ok(true) if conn.want_write => {
            conn.want_write = false;
            let _ = poller.modify(&conn.stream, token, Interest::READABLE);
        }
        Ok(true) => {}
        Ok(false) if !conn.want_write => {
            conn.want_write = true;
            let _ = poller.modify(&conn.stream, token, Interest::BOTH);
        }
        Ok(false) => {}
        Err(_) => conn.done = true,
    }
}

/// Runs the single-threaded fake fleet against the driver at `addr`
/// until every connection has seen `Shutdown` (or died).
fn run_fleet(addr: SocketAddr, executors: usize) -> io::Result<FleetReport> {
    let poller = Poller::new()?;
    let mut scratch = Vec::new();
    let mut conns: Vec<FakeConn> = Vec::with_capacity(executors);
    for id in 0..executors {
        // Pace the connect storm: the driver is accepting concurrently,
        // but the kernel's listen backlog holds ~128 — a full-speed
        // 512-socket burst overflows it and the excess SYNs sit in
        // retransmit for seconds. A short breath every 64 connects
        // keeps every wave inside the backlog.
        if id > 0 && id % 64 == 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        poller.register(&stream, id as u64, Interest::READABLE)?;
        let mut conn = FakeConn {
            stream,
            cursor: FrameCursor::new(),
            out: VecDeque::new(),
            want_write: false,
            done: false,
            armed_at: None,
        };
        conn.queue(
            &Frame::Register {
                executor: id,
                slots: SLOTS,
            },
            &mut scratch,
        );
        flush_and_arm(&poller, &mut conn, id as u64);
        conns.push(conn);
    }

    let mut events: Vec<Event> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut last_heartbeat = Instant::now();
    let mut first_assign: Option<Instant> = None;
    let mut last_frame = Instant::now();
    let started = Instant::now();
    while conns.iter().any(|c| !c.done) {
        if started.elapsed() > Duration::from_secs(180) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "fleet never saw shutdown",
            ));
        }
        poller.wait(&mut events, Some(Duration::from_millis(50)))?;
        for ev in &events {
            let idx = ev.token as usize;
            let conn = &mut conns[idx];
            if conn.done {
                continue;
            }
            if ev.readable || ev.error {
                loop {
                    match conn.stream.read(&mut read_buf) {
                        Ok(0) => {
                            conn.done = true;
                            break;
                        }
                        Ok(n) => conn.cursor.extend(&read_buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.done = true;
                            break;
                        }
                    }
                }
                loop {
                    match conn.cursor.next() {
                        Ok(Some(Frame::Core(Message::AssignTask { task, .. }))) => {
                            let now = Instant::now();
                            first_assign.get_or_insert(now);
                            last_frame = now;
                            if let Some(t0) = conn.armed_at.take() {
                                latencies.push((now - t0).as_secs_f64() * 1e3);
                            }
                            conn.queue(
                                &Frame::TaskFinished {
                                    task,
                                    executor: idx,
                                    attempt: 0,
                                },
                                &mut scratch,
                            );
                            conn.armed_at = Some(Instant::now());
                        }
                        Ok(Some(Frame::StageStart { .. })) => {
                            // The stage barrier is driver progress, not
                            // assignment turnaround: disarm.
                            conn.armed_at = None;
                            last_frame = Instant::now();
                        }
                        Ok(Some(Frame::Shutdown)) => {
                            conn.done = true;
                            last_frame = Instant::now();
                            break;
                        }
                        Ok(Some(_)) => {
                            last_frame = Instant::now();
                        }
                        Ok(None) => break,
                        Err(_) => {
                            conn.done = true;
                            break;
                        }
                    }
                }
                if !conn.done {
                    flush_and_arm(&poller, conn, ev.token);
                }
            }
            if ev.writable && !conn.done {
                flush_and_arm(&poller, conn, ev.token);
            }
            if conn.done {
                let _ = poller.deregister(&conn.stream);
            }
        }
        // A coarse heartbeat keeps the traffic shape honest without
        // mattering for liveness (the driver's timeout is 60 s).
        if last_heartbeat.elapsed() >= Duration::from_millis(500) {
            last_heartbeat = Instant::now();
            for (id, conn) in conns.iter_mut().enumerate() {
                if conn.done {
                    continue;
                }
                conn.queue(
                    &Frame::Core(Message::Heartbeat { executor: id }),
                    &mut scratch,
                );
                flush_and_arm(&poller, conn, id as u64);
            }
        }
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let steady_secs = first_assign
        .map(|t0| (last_frame - t0).as_secs_f64())
        .unwrap_or(0.0)
        .max(1e-6);
    Ok(FleetReport {
        latencies,
        steady_secs,
    })
}

/// One sweep point: bind a driver on `transport`, run the fake fleet,
/// report wire-layer throughput from the driver's own counters.
fn run_scale(transport: DriverTransport, executors: usize, tasks_per_exec: usize) -> ScalePoint {
    let metrics = MetricRegistry::new();
    let driver = Driver::bind(DriverConfig {
        executors,
        heartbeat_timeout: Duration::from_secs(60),
        check_interval: Duration::from_millis(5),
        max_task_attempts: 4,
        blacklist_after: 1_000_000,
        probation: Duration::from_secs(2),
        deadline: Duration::from_secs(150),
        task_deadline: None,
        min_live_executors: 1,
        degraded_wait: Duration::from_secs(5),
        transport,
        shutdown_drain: Duration::from_millis(500),
        recorder: FlightRecorder::disabled(),
        metrics: metrics.clone(),
    })
    .expect("bind driver");
    let addr = driver.addr().expect("driver addr");
    let job = terasort(executors * tasks_per_exec, 1, 7);
    let driver_thread = std::thread::spawn(move || {
        let start = Instant::now();
        let report = driver.run(&job);
        (report, start.elapsed())
    });
    let fleet = run_fleet(addr, executors).expect("fleet run");
    let (report, elapsed) = driver_thread.join().expect("driver thread");
    let report = report.expect("driver run");

    let snapshot = metrics.snapshot();
    let frames = snapshot.counters["live.driver.frames_received"]
        + snapshot.counters["live.driver.frames_sent"];
    let wakeups = snapshot.counters["live.driver.wakeups"];
    ScalePoint {
        executors,
        transport: match transport {
            DriverTransport::Reactor => "reactor",
            DriverTransport::Blocking => "blocking",
        },
        runtime_secs: elapsed.as_secs_f64(),
        steady_secs: fleet.steady_secs,
        frames,
        frames_per_sec: frames as f64 / fleet.steady_secs,
        wakeups_per_frame: wakeups as f64 / frames as f64,
        p50_ms: percentile(&fleet.latencies, 0.50),
        p99_ms: percentile(&fleet.latencies, 0.99),
        registered: report.registry.iter().filter(|s| s.registered).count(),
    }
}

fn main() {
    let quick = std::env::var("SAE_REACTOR_BENCH_QUICK").is_ok();
    let counts: &[usize] = if quick {
        &[128]
    } else {
        &[4, 16, 64, 128, 256, 512]
    };
    let tasks_per_exec = if quick { 16 } else { 24 };

    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "execs",
        "transport",
        "frames",
        "frames/s",
        "wake/frame",
        "p50 ms",
        "p99 ms",
        "steady s",
        "time s"
    );
    let mut points: Vec<ScalePoint> = Vec::new();
    for &n in counts {
        for transport in [DriverTransport::Reactor, DriverTransport::Blocking] {
            let point = run_scale(transport, n, tasks_per_exec);
            println!(
                "{:>6} {:>9} {:>12} {:>12.0} {:>10.3} {:>9.3} {:>9.3} {:>8.3} {:>7.2}",
                point.executors,
                point.transport,
                point.frames,
                point.frames_per_sec,
                point.wakeups_per_frame,
                point.p50_ms,
                point.p99_ms,
                point.steady_secs,
                point.runtime_secs,
            );
            assert_eq!(
                point.registered, n,
                "{} at {n}: not every connection registered",
                point.transport
            );
            points.push(point);
        }
    }

    let top = *counts.last().unwrap();
    let fps = |transport: &str| {
        points
            .iter()
            .find(|p| p.executors == top && p.transport == transport)
            .map(|p| p.frames_per_sec)
            .unwrap()
    };
    let speedup = fps("reactor") / fps("blocking");
    println!(
        "\ntop of sweep ({top} executors): reactor {:.0} frames/s vs blocking {:.0} frames/s = {speedup:.2}x",
        fps("reactor"),
        fps("blocking")
    );

    let mut json = String::from("{\n  \"benchmark\": \"reactor_scale\",\n");
    json.push_str(&format!(
        "  \"workload\": \"loopback fake fleet, {tasks_per_exec} tasks/executor x 2 stages, {SLOTS} slots, instant TaskFinished replies\",\n"
    ));
    json.push_str(&format!("  \"top_executors\": {top},\n"));
    json.push_str(&format!(
        "  \"speedup_at_top\": {speedup:.3},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"executors\": {}, \"transport\": \"{}\", \"frames\": {}, \"frames_per_sec\": {:.1}, \"wakeups_per_frame\": {:.4}, \"assign_latency_p50_ms\": {:.4}, \"assign_latency_p99_ms\": {:.4}, \"steady_secs\": {:.4}, \"runtime_secs\": {:.4}, \"registered\": {}}}{}\n",
            p.executors,
            p.transport,
            p.frames,
            p.frames_per_sec,
            p.wakeups_per_frame,
            p.p50_ms,
            p.p99_ms,
            p.steady_secs,
            p.runtime_secs,
            p.registered,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    if std::env::var("SAE_WRITE_BENCH_JSON").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_reactor.json");
        std::fs::write(path, &json).expect("write BENCH_reactor.json");
        println!("wrote {path}");
    }

    if !quick {
        let top_reactor = points
            .iter()
            .find(|p| p.executors == top && p.transport == "reactor")
            .unwrap();
        assert!(
            top_reactor.registered >= 256,
            "reactor held only {} concurrent connections at the top of the sweep",
            top_reactor.registered
        );
        assert!(
            speedup >= 5.0,
            "reactor speedup over thread-per-connection at {top} executors is {speedup:.2}x, want >= 5x"
        );
        println!("OK: {top} concurrent connections, {speedup:.2}x over the blocking baseline");
    }
}
