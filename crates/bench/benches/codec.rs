//! Wire-codec throughput micro-bench: what one frame costs to encode,
//! reassemble and send.
//!
//! Three comparisons price the S1 read/write-path work:
//!
//! * `cursor_decode/*` — frame reassembly through [`FrameCursor`] with
//!   the reader's reused chunk buffer vs the pre-optimisation pattern of
//!   a fresh 4 KiB allocation per read call;
//! * `wire_send/*` — 256 frames as individual `send` calls (one
//!   `write_all` syscall each) vs one coalesced `send_batch` (a single
//!   vectored-style write of the whole batch);
//! * `encode_1024_frames` — the pure serialization floor.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::io::Read;
use std::net::{TcpListener, TcpStream};

use sae_dag::Message;
use sae_live::wire::{Frame, FrameCursor, FrameWriter};

/// A representative traffic mix: mostly assignments and completions,
/// some heartbeats and pool resizes.
fn traffic(n: usize) -> Vec<Frame> {
    (0..n)
        .map(|i| match i % 8 {
            0..=2 => Frame::Core(Message::AssignTask {
                task: i,
                executor: i % 16,
            }),
            3..=5 => Frame::TaskFinished {
                task: i,
                executor: i % 16,
                attempt: 0,
            },
            6 => Frame::Core(Message::Heartbeat { executor: i % 16 }),
            _ => Frame::Core(Message::PoolSizeChanged {
                executor: i % 16,
                size: 1 + i % 8,
            }),
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let frames = traffic(1024);
    let mut buf = Vec::with_capacity(32 * 1024);
    c.bench_function("encode_1024_frames", |b| {
        b.iter(|| {
            buf.clear();
            for frame in &frames {
                frame.encode(&mut buf);
            }
            buf.len()
        });
    });
}

fn bench_decode(c: &mut Criterion) {
    let frames = traffic(1024);
    let mut wire = Vec::new();
    for frame in &frames {
        frame.encode(&mut wire);
    }
    let mut group = c.benchmark_group("cursor_decode_1024_frames");
    group.bench_function("reused_buffer", |b| {
        let mut cursor = FrameCursor::new();
        b.iter(|| {
            let mut decoded = 0usize;
            for chunk in wire.chunks(4096) {
                cursor.extend(chunk);
                while let Some(frame) = cursor.next().unwrap() {
                    black_box(&frame);
                    decoded += 1;
                }
            }
            decoded
        });
    });
    group.bench_function("fresh_alloc_per_read", |b| {
        // The pre-S1 read path: a zeroed 4 KiB buffer allocated for
        // every read call before the bytes reach the decoder.
        let mut cursor = FrameCursor::new();
        b.iter(|| {
            let mut decoded = 0usize;
            for chunk in wire.chunks(4096) {
                let mut fresh = vec![0u8; 4096];
                fresh[..chunk.len()].copy_from_slice(chunk);
                cursor.extend(&fresh[..chunk.len()]);
                while let Some(frame) = cursor.next().unwrap() {
                    black_box(&frame);
                    decoded += 1;
                }
            }
            decoded
        });
    });
    group.finish();
}

fn bench_send(c: &mut Criterion) {
    let frames = traffic(256);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let tx = TcpStream::connect(addr).unwrap();
    let (rx, _) = listener.accept().unwrap();
    // A drain thread keeps the socket buffer empty so sends never stall.
    std::thread::spawn(move || {
        let mut rx = rx;
        let mut sink = [0u8; 64 * 1024];
        while matches!(rx.read(&mut sink), Ok(n) if n > 0) {}
    });
    let mut writer = FrameWriter::new(tx);
    let mut group = c.benchmark_group("wire_send_256_frames");
    group.bench_function("one_syscall_per_frame", |b| {
        b.iter(|| {
            let mut sent = 0usize;
            for frame in &frames {
                sent += writer.send(frame).unwrap();
            }
            sent
        });
    });
    group.bench_function("coalesced_batch", |b| {
        b.iter(|| writer.send_batch(&frames).unwrap());
    });
    group.finish();
}

criterion_group!(codec_benches, bench_encode, bench_decode, bench_send);

fn main() {
    codec_benches();
}
