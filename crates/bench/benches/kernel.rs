//! Kernel scaling benchmark: virtual-time kernel vs the pre-rewrite
//! reference implementation.
//!
//! The workload is the degenerate case the rewrite targets: `n` concurrent
//! flows on one processor-sharing resource, all distinct works, drained to
//! idle. Every completion repopulates the rate schedule, so the reference
//! kernel pays an O(n) per-event sweep (O(n²) total) while the
//! virtual-time kernel pays O(log n) (O(n log n) total). The reference is
//! capped at 10⁴ flows — at 10⁵ its quadratic sweep takes minutes.
//!
//! Besides the criterion groups, a summary pass prints events/sec and the
//! speedup per size; set `SAE_WRITE_BENCH_JSON=1` to rewrite the
//! checked-in `BENCH_kernel.json` at the repo root:
//!
//! ```text
//! SAE_WRITE_BENCH_JSON=1 cargo bench -p sae-bench --bench kernel
//! ```

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

use sae_sim::reference::ReferenceKernel;
use sae_sim::{CapacityCurve, Kernel};

/// Aggregate capacity curve: peaks at a handful of flows, degrades under
/// thrash — the HDD shape from the paper, so `recompute` is exercised with
/// a population-dependent rate on every event.
fn curve() -> CapacityCurve {
    CapacityCurve::from_fn(|counts| {
        let n = counts.total() as f64;
        120.0 * n.min(4.0) / (1.0 + 0.01 * (n - 4.0).max(0.0))
    })
}

/// Distinct per-flow works so each completion is its own event.
fn work(i: usize) -> f64 {
    1.0 + i as f64 * 1e-4
}

fn run_new(n: usize) -> u64 {
    let mut kernel: Kernel<u32> = Kernel::new();
    let r = kernel.add_resource(curve());
    for i in 0..n {
        kernel.start_flow(r, 0, work(i), i as u32);
    }
    kernel.run_to_idle();
    kernel.events_processed()
}

fn run_reference(n: usize) -> u64 {
    let mut kernel: ReferenceKernel<u32> = ReferenceKernel::new();
    let r = kernel.add_resource(curve());
    for i in 0..n {
        kernel.start_flow(r, 0, work(i), i as u32);
    }
    let mut events = 0u64;
    while kernel.next().is_some() {
        events += 1;
    }
    events
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scaling");
    for &n in &[100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, &n| {
            b.iter(|| black_box(run_reference(n)));
        });
    }
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("virtual_time", n), &n, |b, &n| {
            b.iter(|| black_box(run_new(n)));
        });
    }
    group.finish();
}

criterion_group!(kernel_benches, bench_scaling);

/// Best-of-three wall-clock seconds for `f(n)`.
fn measure(n: usize, f: fn(usize) -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..3 {
        let start = Instant::now();
        events = f(n);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, events)
}

fn summary_json() -> String {
    let mut rows = String::new();
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let (new_s, new_events) = measure(n, run_new);
        let reference = (n <= 10_000).then(|| measure(n, run_reference));
        let speedup = reference.map(|(ref_s, _)| ref_s / new_s);
        println!(
            "n={n:>6}  virtual-time {:>10.1} events/s  reference {}  speedup {}",
            new_events as f64 / new_s,
            reference.map_or("        (skipped)".into(), |(s, e)| format!(
                "{:>10.1} events/s",
                e as f64 / s
            )),
            speedup.map_or("   —".into(), |s| format!("{s:.1}x")),
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\n      \"flows\": {n},\n      \"virtual_time_seconds\": {new_s:.6},\n      \"virtual_time_events_per_sec\": {:.0},\n      \"reference_seconds\": {},\n      \"speedup\": {}\n    }}",
            new_events as f64 / new_s,
            reference.map_or("null".into(), |(s, _)| format!("{s:.6}")),
            speedup.map_or("null".into(), |s| format!("{s:.2}")),
        ));
    }
    format!(
        "{{\n  \"benchmark\": \"kernel_scaling\",\n  \"workload\": \"n concurrent flows, distinct works, one HDD-shaped resource, drained to idle\",\n  \"timing\": \"best of 3 runs, release build\",\n  \"sizes\": [\n{rows}\n  ]\n}}\n"
    )
}

fn main() {
    kernel_benches();
    println!();
    let json = summary_json();
    if std::env::var("SAE_WRITE_BENCH_JSON").is_ok() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
        std::fs::write(path, &json).expect("write BENCH_kernel.json");
        println!("wrote {path}");
    }
}
