//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Each ablation prints the *simulated* runtimes it produces (the quantity
//! of interest) before Criterion measures the wall-clock cost of computing
//! them. Run with `cargo bench --bench ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sae_core::{MapeConfig, ThreadPolicy};
use sae_dag::{Engine, EngineConfig};
use sae_workloads::WorkloadKind;

fn dynamic_runtime(cfg: &EngineConfig, kind: WorkloadKind, mape: MapeConfig) -> f64 {
    let w = kind.build_scaled(0.25);
    Engine::new(w.configure(cfg.clone()), ThreadPolicy::Adaptive(mape))
        .run(&w.job)
        .total_runtime
}

/// Ablation 1: rollback tolerance of the hill climb.
///
/// Zero tolerance strands CPU-flat stages at `c_min`; an over-generous
/// band overshoots the knee. The default (0.5) sits between.
fn ablate_tolerance(c: &mut Criterion) {
    let cfg = EngineConfig::four_node_hdd();
    println!("\nablation: rollback tolerance (terasort @ 1/4 scale, dynamic)");
    for tol in [0.0, 0.25, 0.5, 1.0] {
        let mut mape = MapeConfig::new(2, 32);
        mape.rollback_tolerance = tol;
        let runtime = dynamic_runtime(&cfg, WorkloadKind::Terasort, mape);
        println!("  tolerance {tol:4.2}: {runtime:8.1} s");
    }
    c.bench_function("ablation_tolerance_single_run", |b| {
        b.iter(|| {
            let mut mape = MapeConfig::new(2, 32);
            mape.rollback_tolerance = 0.5;
            black_box(dynamic_runtime(&cfg, WorkloadKind::Terasort, mape))
        });
    });
}

/// Ablation 2: the climb's starting point `c_min`.
///
/// The paper starts at 2; starting higher converges faster but can
/// overshoot the knee before the first comparison.
fn ablate_c_min(c: &mut Criterion) {
    let cfg = EngineConfig::four_node_hdd();
    println!("\nablation: c_min (pagerank @ 1/4 scale, dynamic)");
    for c_min in [2usize, 4, 8] {
        let mape = MapeConfig::new(c_min, 32);
        let runtime = dynamic_runtime(&cfg, WorkloadKind::PageRank, mape);
        println!("  c_min {c_min}: {runtime:8.1} s");
    }
    c.bench_function("ablation_cmin_single_run", |b| {
        b.iter(|| {
            black_box(dynamic_runtime(
                &cfg,
                WorkloadKind::PageRank,
                MapeConfig::new(2, 32),
            ))
        });
    });
}

/// Ablation 3: the low-I/O jump heuristic (L3 remedy).
///
/// With the heuristic disabled the controller pays the full doubling climb
/// on CPU-bound stages — visible on Join's scan stage.
fn ablate_io_fraction_jump(c: &mut Criterion) {
    let cfg = EngineConfig::four_node_hdd();
    println!("\nablation: min_io_fraction jump (join @ 1/4 scale, dynamic)");
    for frac in [0.0, 0.25] {
        let mut mape = MapeConfig::new(2, 32);
        mape.min_io_fraction = frac;
        let runtime = dynamic_runtime(&cfg, WorkloadKind::Join, mape);
        let label = if frac == 0.0 { "off " } else { "on  " };
        println!("  jump {label} (threshold {frac}): {runtime:8.1} s");
    }
    c.bench_function("ablation_jump_single_run", |b| {
        b.iter(|| {
            black_box(dynamic_runtime(
                &cfg,
                WorkloadKind::Join,
                MapeConfig::new(2, 32),
            ))
        });
    });
}

/// Ablation 4: CPU/I-O interleaving granularity of the task model.
///
/// One chunk per task serialises I/O and CPU entirely; more chunks let
/// utilisation emerge. Stage durations converge once chunking is fine
/// enough, justifying the default of 4.
fn ablate_chunking(c: &mut Criterion) {
    println!("\nablation: chunks per task (terasort @ 1/4 scale, default policy)");
    for chunks in [1usize, 2, 4, 8] {
        let mut cfg = EngineConfig::four_node_hdd();
        cfg.chunks_per_task = chunks;
        let w = WorkloadKind::Terasort.build_scaled(0.25);
        let runtime = Engine::new(w.configure(cfg), ThreadPolicy::Default)
            .run(&w.job)
            .total_runtime;
        println!("  chunks {chunks}: {runtime:8.1} s");
    }
    let cfg = EngineConfig::four_node_hdd();
    c.bench_function("ablation_chunking_single_run", |b| {
        let w = WorkloadKind::Terasort.build_scaled(0.25);
        b.iter(|| {
            black_box(
                Engine::new(w.configure(cfg.clone()), ThreadPolicy::Default)
                    .run(&w.job)
                    .total_runtime,
            )
        });
    });
}

/// Ablation 5: climb direction (§5.2's ascend-vs-descend argument).
///
/// Descending starts every stage at the (possibly pathological) maximum
/// and pays for the bad settings before finding better ones; the paper
/// argues ascending "gives us a quicker route to finding the optimal
/// thread count".
fn ablate_direction(c: &mut Criterion) {
    use sae_core::ClimbDirection;
    let cfg = EngineConfig::four_node_hdd();
    println!("\nablation: climb direction (terasort @ 1/4 scale, dynamic)");
    for (label, direction) in [
        ("ascend (paper)", ClimbDirection::Ascend),
        ("descend       ", ClimbDirection::Descend),
    ] {
        let mut mape = MapeConfig::new(2, 32);
        mape.direction = direction;
        let runtime = dynamic_runtime(&cfg, WorkloadKind::Terasort, mape);
        println!("  {label}: {runtime:8.1} s");
    }
    c.bench_function("ablation_direction_single_run", |b| {
        let mut mape = MapeConfig::new(2, 32);
        mape.direction = ClimbDirection::Descend;
        b.iter(|| black_box(dynamic_runtime(&cfg, WorkloadKind::Terasort, mape)));
    });
}

/// Ablation 6: congestion index vs average disk utilisation as the sensed
/// signal (§5.2's first argument for ζ: utilisation saturates and cannot
/// discriminate between settings).
fn ablate_signal(c: &mut Criterion) {
    use sae_core::CongestionSignal;
    let cfg = EngineConfig::four_node_hdd();
    println!("\nablation: analyzer signal (terasort @ 1/4 scale, dynamic)");
    for (label, signal) in [
        ("congestion index ζ (paper)", CongestionSignal::ZetaIndex),
        (
            "avg disk utilisation      ",
            CongestionSignal::DiskUtilization,
        ),
    ] {
        let mut mape = MapeConfig::new(2, 32);
        mape.signal = signal;
        let runtime = dynamic_runtime(&cfg, WorkloadKind::Terasort, mape);
        println!("  {label}: {runtime:8.1} s");
    }
    c.bench_function("ablation_signal_single_run", |b| {
        let mut mape = MapeConfig::new(2, 32);
        mape.signal = CongestionSignal::DiskUtilization;
        b.iter(|| black_box(dynamic_runtime(&cfg, WorkloadKind::Terasort, mape)));
    });
}

criterion_group!(
    ablations,
    ablate_tolerance,
    ablate_c_min,
    ablate_io_fraction_jump,
    ablate_chunking,
    ablate_direction,
    ablate_signal
);
criterion_main!(ablations);
