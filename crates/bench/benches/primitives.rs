//! Criterion micro-benchmarks for the hot primitives of the stack:
//! simulation-kernel event processing, capacity-curve evaluation, the
//! controller's decision path, and the real dynamic pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sae_core::{
    congestion_index, AdaptiveController, IntervalMeasurement, MapeConfig, TunablePool,
};
use sae_pool::DynamicThreadPool;
use sae_sim::{CapacityCurve, Kernel};
use sae_storage::{DeviceProfile, DiskClass};

fn bench_kernel_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_kernel");
    for &flows in &[100usize, 1000, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("processor_sharing_flows", flows),
            &flows,
            |b, &flows| {
                b.iter(|| {
                    let mut kernel: Kernel<u32> = Kernel::new();
                    let r = kernel.add_resource(CapacityCurve::constant(100.0));
                    for i in 0..flows {
                        kernel.start_flow(r, 0, 1.0 + (i % 7) as f64, i as u32);
                    }
                    kernel.run_to_idle();
                    black_box(kernel.events_processed())
                });
            },
        );
    }
    group.finish();
}

fn bench_capacity_curves(c: &mut Criterion) {
    let hdd = DeviceProfile::hdd_7200();
    c.bench_function("device_bandwidth_mixed", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for n in 1..64usize {
                total += hdd.bandwidth(black_box(&[
                    (DiskClass::Read, n),
                    (DiskClass::Write, n / 2),
                ]));
            }
            black_box(total)
        });
    });
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("mapek_decision_per_task", |b| {
        b.iter(|| {
            let mut ctl = AdaptiveController::new(MapeConfig::new(2, 32));
            let mut threads = ctl.stage_started(0.0, Some(1000));
            let (mut now, mut epoll, mut bytes) = (0.0, 0.0, 0.0);
            for _ in 0..200 {
                now += 1.0;
                epoll += 0.3 + 0.01 * (threads * threads) as f64;
                bytes += 100.0;
                if let Some(next) = ctl.task_finished(now, epoll, bytes) {
                    threads = next;
                }
            }
            black_box(threads)
        });
    });
    c.bench_function("congestion_index", |b| {
        let m = IntervalMeasurement {
            epoll_wait: 12.5,
            bytes: 2048.0,
            duration: 10.0,
        };
        b.iter(|| black_box(congestion_index(black_box(&m))));
    });
}

fn bench_real_pool(c: &mut Criterion) {
    c.bench_function("dynamic_pool_submit_drain_1000", |b| {
        b.iter(|| {
            let pool = DynamicThreadPool::new(4);
            for _ in 0..1000 {
                pool.submit(|| {
                    black_box(1 + 1);
                });
            }
            pool.shutdown();
        });
    });
    c.bench_function("dynamic_pool_resize", |b| {
        let mut pool = DynamicThreadPool::new(8);
        let mut size = 8usize;
        b.iter(|| {
            size = if size == 8 { 4 } else { 8 };
            pool.set_max_pool_size(black_box(size));
        });
        pool.shutdown();
    });
}

fn bench_engine_end_to_end(c: &mut Criterion) {
    use sae_core::ThreadPolicy;
    use sae_dag::{Engine, EngineConfig};
    use sae_workloads::WorkloadKind;
    c.bench_function("engine_terasort_tenth_scale", |b| {
        let cfg = EngineConfig::four_node_hdd();
        let w = WorkloadKind::Terasort.build_scaled(0.1);
        b.iter(|| {
            let report = Engine::new(w.configure(cfg.clone()), ThreadPolicy::Default).run(&w.job);
            black_box(report.total_runtime)
        });
    });
}

criterion_group!(
    benches,
    bench_kernel_events,
    bench_capacity_curves,
    bench_controller,
    bench_real_pool,
    bench_engine_end_to_end
);
criterion_main!(benches);
