//! The parallel experiment runner must be invisible in the results: any
//! worker count (including 1, the serial path) must produce bit-identical
//! output, because results are collected in input order and every
//! simulation is a pure function of its inputs.
//!
//! `SAE_BENCH_THREADS` is process-global, so everything lives in one test
//! that flips it sequentially.

use sae_bench::experiments::fig2;
use sae_bench::{run_policy, static_sweep};
use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    let cfg = EngineConfig::four_node_hdd();
    let tiny = WorkloadKind::PageRank.build_scaled(0.05);

    // Serial reference (worker count pinned to 1).
    std::env::set_var("SAE_BENCH_THREADS", "1");
    let sweep_serial = format!("{:?}", static_sweep(&cfg, &tiny));
    let policy_serial = format!("{:?}", run_policy(&cfg, &tiny));
    let fig2_serial = fig2::run();

    // Parallel: more workers than this machine may have cores — what
    // matters is that the fan-out path (atomic hand-out + slot collection)
    // is exercised with real interleaving.
    std::env::set_var("SAE_BENCH_THREADS", "4");
    let sweep_par = format!("{:?}", static_sweep(&cfg, &tiny));
    let policy_par = format!("{:?}", run_policy(&cfg, &tiny));
    let fig2_par = fig2::run();
    // A parallel rerun of the same full figure must also be bit-stable.
    let fig2_par2 = fig2::run();

    std::env::remove_var("SAE_BENCH_THREADS");

    // `{:?}` of f64 is the shortest round-trip representation, so equal
    // debug strings mean bit-equal reports.
    assert_eq!(sweep_serial, sweep_par, "static_sweep diverged");
    assert_eq!(policy_serial, policy_par, "run_policy diverged");
    assert_eq!(fig2_serial.body, fig2_par.body, "fig2 serial vs parallel");
    assert_eq!(fig2_par.body, fig2_par2.body, "fig2 parallel rerun");
}
