//! The indexed driver scheduler must be invisible in the figures: the
//! evaluation workloads and the full Figure 2 sweep rerun through the
//! pre-index reference scan (`reference-impl` feature) must produce
//! bit-identical output.
//!
//! `SAE_REFERENCE_SCHEDULER` is process-global, so everything lives in one
//! test that flips it sequentially (the same pattern as
//! `parallel_determinism.rs`).

use sae_bench::experiments::fig2;
use sae_bench::run_workload;
use sae_core::ThreadPolicy;
use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

#[test]
fn indexed_and_reference_schedulers_are_bit_identical() {
    // Terasort and PageRank head-to-head through the config switch,
    // scaled down so the debug-build test stays quick.
    let cfg = EngineConfig::four_node_hdd();
    let mut ref_cfg = cfg.clone();
    ref_cfg.reference_scheduler = true;
    for (kind, scale) in [
        (WorkloadKind::Terasort, 0.05),
        (WorkloadKind::PageRank, 0.05),
    ] {
        let w = kind.build_scaled(scale);
        let indexed = run_workload(&cfg, &w, ThreadPolicy::Default);
        let reference = run_workload(&ref_cfg, &w, ThreadPolicy::Default);
        // `{:?}` of f64 is the shortest round-trip representation, so
        // equal debug strings mean bit-equal reports.
        assert_eq!(
            format!("{indexed:?}"),
            format!("{reference:?}"),
            "{} diverged",
            kind.name()
        );
    }

    // The full Figure 2 sweep (full-size Terasort + PageRank across the
    // whole thread grid, plus BestFit runs). Its configs are built
    // internally, so the reference pass goes through the env switch.
    let indexed = fig2::run();
    std::env::set_var("SAE_REFERENCE_SCHEDULER", "1");
    let reference = fig2::run();
    std::env::remove_var("SAE_REFERENCE_SCHEDULER");
    assert_eq!(indexed.body, reference.body, "fig2 diverged");
}
