//! Regenerates the paper's table2.
fn main() {
    println!("{}", sae_bench::experiments::table2::run());
}
