//! Telemetry-plane overhead bench: what does live streaming cost the
//! data plane, and what happens when a consumer stops consuming?
//!
//! Three phases, all against a real `JobServer` with a real executor
//! fleet on loopback:
//!
//! 1. **overhead** — the same job batch run with zero and with eight
//!    `GET /events` subscribers attached (each a separate process),
//!    paired repetitions, the server process's CPU time compared. The
//!    contract: serving eight live subscribers costs the data plane
//!    < 2% CPU (enforced in full mode; quick mode reports).
//! 2. **stalled subscriber** — a subscriber that connects and never
//!    reads. Backpressure must confine the damage to that subscriber's
//!    own queue: the `live.recorder.dropped_total{kind="subscriber"}`
//!    counter rises, while same-seed jobs produce journals bit-identical
//!    to a subscriber-free bed's.
//! 3. **stream integrity** — a `/jobs/:id/events` follow of one job must
//!    reproduce the final journal record for record.
//!
//! ```sh
//! cargo run --release -p sae-bench --bin telemetry_bench -- --out BENCH_telemetry.json
//! SAE_TELEMETRY_BENCH_QUICK=1 cargo run --release -p sae-bench --bin telemetry_bench
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sae_core::MapeConfig;
use sae_live::executor::LiveExecutorConfig;
use sae_live::server::{JobServer, ServerConfig};
use sae_live::{LiveExecutor, TempDir};
use sae_net::http::parse_response;
use sae_net::sse::{ChunkedDecoder, SseParser};

const SUBSCRIBERS: usize = 8;
const OVERHEAD_CEILING: f64 = 0.02;
/// The overhead batch: a single-slot fleet works through the jobs
/// serially, so batch wall time is the sum of task service times — a
/// low-variance quantity even on a small host — while the event stream
/// (journal, spans, ζ, metric deltas) stays loud throughout.
const BATCH_JOBS: usize = 8;
const BATCH_TASKS: usize = 4;
const BATCH_RECORDS: usize = 25_000;
const POLL: Duration = Duration::from_millis(5);
/// Stall phase: wide jobs make the event firehose dense, so the stalled
/// subscriber's 1024-slot queue overflows within a handful of jobs.
const STALL_TASKS: usize = 32;
const STALL_RECORDS: usize = 500;
const STALL_COMPARED: usize = 4;
const STALL_MAX_JOBS: usize = 60;

fn quick() -> bool {
    std::env::var("SAE_TELEMETRY_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn reps() -> usize {
    if quick() {
        3
    } else {
        11
    }
}

fn batch_jobs() -> usize {
    if quick() {
        4
    } else {
        BATCH_JOBS
    }
}

// ---------------------------------------------------------------- client

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control port");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: sae\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let (resp, _) = parse_response(&buf)
        .expect("well-formed response")
        .expect("complete response");
    (resp.status, resp.body_str())
}

fn field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no field {key} in {body}"))
        + pat.len();
    let rest = &body[start..];
    let quoted = rest.starts_with('"');
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if quoted {
                *i > 0 && *c == '"'
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, _)| if quoted { i + 1 } else { i })
        .unwrap_or(rest.len());
    rest[..end].trim_matches('"').to_string()
}

fn job_body(tenant: &str, tasks: usize, records: usize, seed: u64) -> String {
    format!(
        "{{\"tenant\":\"{tenant}\",\"tasks\":{tasks},\"records_per_task\":{records},\"seed\":{seed}}}"
    )
}

fn submit(addr: SocketAddr, body: &str) -> String {
    let (status, resp) = http(addr, "POST", "/jobs", body);
    assert_eq!(status, 201, "{resp}");
    field(&resp, "job")
}

fn await_completed(addr: SocketAddr, id: &str) -> String {
    loop {
        let (status, resp) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "{resp}");
        let state = field(&resp, "status");
        if state != "queued" && state != "running" {
            assert_eq!(state, "completed", "job {id} failed: {resp}");
            return state;
        }
        thread::sleep(POLL);
    }
}

/// The value of one `/metrics` sample (label block included in `name`).
fn scrape(addr: SocketAddr, name: &str) -> f64 {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
        .unwrap_or(0.0)
}

/// Cumulative CPU milliseconds (user + system) of this process — server
/// loop, executor fleet and submitting clients all live here (the SSE
/// subscribers are child processes), so the delta across a batch is the
/// compute the data plane spent on it, streaming fan-out included.
/// Unlike wall time it is unaffected by the scheduling gaps of a small
/// shared host, which is what makes a 2% comparison meaningful there.
fn cpu_ms() -> f64 {
    // /proc/self/stat fields 14/15 are utime/stime in clock ticks;
    // USER_HZ is 100 on every Linux ABI this workspace targets.
    if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
        // The comm field may contain spaces; fields are stable after ')'.
        if let Some(rest) = stat.rsplit(')').next() {
            let f: Vec<&str> = rest.split_whitespace().collect();
            if let (Some(ut), Some(st)) = (f.get(11), f.get(12)) {
                if let (Ok(ut), Ok(st)) = (ut.parse::<f64>(), st.parse::<f64>()) {
                    return (ut + st) * 1000.0 / 100.0;
                }
            }
        }
    }
    0.0
}

/// Child-process mode (`--drain ADDR`): a live `/events` subscriber that
/// reads the stream at line rate, as `sae-top` would, and prints the
/// byte count when the server closes the stream. Subscribers run as
/// separate processes so the parent's CPU-time measurement covers the
/// data plane's cost of *serving* them, not the consumers' own reads.
fn drain_events(addr: &str) -> ! {
    let mut stream = TcpStream::connect(addr).expect("connect events");
    // Backstop only: the stream carries metric deltas every tick while a
    // batch runs, and the parent tears the bed down right after it, so a
    // multi-second silence means the parent is gone.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /events HTTP/1.1\r\nHost: sae\r\nAccept: text/event-stream\r\n\r\n")
        .expect("subscribe");
    let mut buf = [0u8; 16 * 1024];
    let mut total = 0u64;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => total += n as u64,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    println!("{total}");
    std::process::exit(0);
}

/// Spawns one `--drain` subscriber child against this same binary.
fn spawn_subscriber(addr: SocketAddr) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().expect("own path"))
        .arg("--drain")
        .arg(addr.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn subscriber process")
}

// ---------------------------------------------------------------- server

struct Bed {
    http_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    serve: thread::JoinHandle<std::io::Result<sae_live::ServerReport>>,
    fleet: Vec<LiveExecutor>,
    _spill: TempDir,
}

impl Bed {
    fn launch(executors: usize, slots: usize, max_active: usize) -> Self {
        let cfg = ServerConfig {
            executors,
            max_active,
            max_queued: max_active * 2,
            ..ServerConfig::default()
        };
        let stop = Arc::clone(&cfg.stop);
        let server = JobServer::bind(cfg).expect("bind server");
        let wire_addr = server.wire_addr().unwrap();
        let http_addr = server.http_addr().unwrap();
        let spill = TempDir::new("telemetry-bench").unwrap();
        let fleet = (0..executors)
            .map(|id| {
                let dir = spill.path().join(format!("exec-{id}"));
                std::fs::create_dir_all(&dir).unwrap();
                let mut ecfg = LiveExecutorConfig::new(id, dir);
                ecfg.mape = MapeConfig::new(slots, slots);
                LiveExecutor::launch(wire_addr, ecfg)
            })
            .collect();
        let serve = thread::spawn(move || server.serve());
        Self {
            http_addr,
            stop,
            serve,
            fleet,
            _spill: spill,
        }
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.serve.join().expect("serve thread").expect("serve ok");
        for exec in self.fleet {
            let _ = exec.join();
        }
    }
}

// ---------------------------------------------------------------- phases

/// One timed batch: `subscribers` live `/events` consumers attached,
/// then the whole job batch submitted at once and poll-waited to
/// completion. Returns (batch wall time, process CPU ms, SSE bytes
/// streamed). Server, fleet, clients and subscribers all live in this
/// process, so the CPU delta is the complete compute cost of the batch.
fn run_batch(subscribers: usize) -> (Duration, f64, u64) {
    let bed = Bed::launch(1, 1, BATCH_JOBS * 2);
    let readers: Vec<_> = (0..subscribers)
        .map(|_| spawn_subscriber(bed.http_addr))
        .collect();
    // Give subscribers a beat to land before the clock starts.
    if subscribers > 0 {
        thread::sleep(Duration::from_millis(100));
    }

    let started = Instant::now();
    let cpu_before = cpu_ms();
    let ids: Vec<String> = (0..batch_jobs())
        .map(|i| {
            submit(
                bed.http_addr,
                &job_body("load", BATCH_TASKS, BATCH_RECORDS, i as u64),
            )
        })
        .collect();
    for id in &ids {
        await_completed(bed.http_addr, id);
    }
    let took = started.elapsed();
    let cpu = cpu_ms() - cpu_before;

    // Tearing the bed down closes the streams; each child sees EOF and
    // reports how many bytes it received.
    bed.shutdown();
    let streamed: u64 = readers
        .into_iter()
        .map(|child| {
            let out = child.wait_with_output().expect("subscriber exit");
            String::from_utf8_lossy(&out.stdout)
                .trim()
                .parse()
                .unwrap_or(0)
        })
        .sum();
    if subscribers > 0 {
        assert!(streamed > 0, "subscribers attached but saw no bytes");
    }
    (took, cpu, streamed)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// What the overhead phase measured, medians across reps.
struct Overhead {
    base_wall_ms: f64,
    subbed_wall_ms: f64,
    base_cpu_ms: f64,
    subbed_cpu_ms: f64,
    /// Median of per-rep subscribed/baseline CPU ratios, minus one.
    frac: f64,
    streamed: u64,
}

/// Paired baseline/subscribed repetitions. Each rep runs both configs
/// back to back (order alternating, so slow host drift hits both sides
/// equally) and contributes one subscribed/baseline ratio. The ratio is
/// taken over *process CPU time*, not wall time: every component of the
/// system under test runs inside this process, so the CPU delta is the
/// full compute cost of a batch, and unlike wall time it is not
/// distorted by scheduling gaps on small shared hosts, where wall-clock
/// reps of an identical workload swing by tens of percent. Wall times
/// are still recorded for context.
fn run_overhead() -> Overhead {
    let mut base_wall = Vec::new();
    let mut subbed_wall = Vec::new();
    let mut base_cpu = Vec::new();
    let mut subbed_cpu = Vec::new();
    let mut ratios = Vec::new();
    let mut streamed = 0;
    for rep in 0..reps() {
        let (base, subbed) = if rep % 2 == 0 {
            let base = run_batch(0);
            let subbed = run_batch(SUBSCRIBERS);
            (base, subbed)
        } else {
            let subbed = run_batch(SUBSCRIBERS);
            let base = run_batch(0);
            (base, subbed)
        };
        streamed += subbed.2;
        eprintln!(
            "telemetry_bench:   rep {rep}: baseline {:.0} ms cpu, \
             {SUBSCRIBERS} subscribers {:.0} ms cpu ({:+.1}%); \
             wall {:.0} -> {:.0} ms",
            base.1,
            subbed.1,
            (subbed.1 / base.1 - 1.0) * 100.0,
            base.0.as_secs_f64() * 1e3,
            subbed.0.as_secs_f64() * 1e3,
        );
        base_wall.push(base.0.as_secs_f64() * 1e3);
        subbed_wall.push(subbed.0.as_secs_f64() * 1e3);
        base_cpu.push(base.1);
        subbed_cpu.push(subbed.1);
        ratios.push(subbed.1 / base.1);
    }
    Overhead {
        base_wall_ms: median(&mut base_wall),
        subbed_wall_ms: median(&mut subbed_wall),
        base_cpu_ms: median(&mut base_cpu),
        subbed_cpu_ms: median(&mut subbed_cpu),
        frac: median(&mut ratios) - 1.0,
        streamed,
    }
}

/// Runs the reference schedule on a subscriber-free bed; returns the
/// journals the stalled-subscriber bed must reproduce bit for bit.
fn reference_journals(addr: SocketAddr) -> Vec<String> {
    (0..STALL_COMPARED)
        .map(|i| {
            let id = submit(
                addr,
                &job_body("stall", STALL_TASKS, STALL_RECORDS, 100 + i as u64),
            );
            await_completed(addr, &id);
            http(addr, "GET", &format!("/jobs/{id}/journal"), "").1
        })
        .collect()
}

/// The stalled-subscriber phase: a consumer that never reads while jobs
/// churn. Returns (subscriber drops observed, jobs it took, journals
/// bit-identical to the clean bed).
fn run_stall() -> (f64, usize, bool) {
    let clean = Bed::launch(2, 4, 8);
    let reference = reference_journals(clean.http_addr);
    clean.shutdown();

    let bed = Bed::launch(2, 4, 8);
    // Connect and subscribe, then never read: the TCP window closes, the
    // server's write buffer hits its high-water mark, and the
    // subscription queue starts aging out events.
    let stalled = TcpStream::connect(bed.http_addr).expect("connect events");
    (&stalled)
        .write_all(b"GET /events HTTP/1.1\r\nHost: sae\r\nAccept: text/event-stream\r\n\r\n")
        .expect("subscribe");

    let mut journals = Vec::new();
    let mut drops = 0.0;
    let mut jobs = 0;
    for i in 0..STALL_MAX_JOBS {
        let id = submit(
            bed.http_addr,
            &job_body(
                "stall",
                STALL_TASKS,
                STALL_RECORDS,
                100 + (i % STALL_COMPARED) as u64,
            ),
        );
        await_completed(bed.http_addr, &id);
        jobs = i + 1;
        if journals.len() < STALL_COMPARED {
            journals.push(http(bed.http_addr, "GET", &format!("/jobs/{id}/journal"), "").1);
        }
        drops = scrape(
            bed.http_addr,
            "live_recorder_dropped_total{kind=\"subscriber\"}",
        );
        if drops > 0.0 && journals.len() >= STALL_COMPARED {
            break;
        }
    }
    drop(stalled);
    bed.shutdown();
    (drops, jobs, journals == reference)
}

/// Follows one job's `/jobs/:id/events` stream to its `end` frame and
/// checks the `journal` frames reproduce the final journal exactly.
fn run_integrity() -> bool {
    let bed = Bed::launch(2, 4, 8);
    let id = submit(bed.http_addr, &job_body("itg", 4, 2_000, 7));

    let mut stream = TcpStream::connect(bed.http_addr).expect("connect events");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    stream
        .write_all(
            format!(
                "GET /jobs/{id}/events HTTP/1.1\r\nHost: sae\r\nAccept: text/event-stream\r\n\r\n"
            )
            .as_bytes(),
        )
        .expect("subscribe");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut raw = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(p) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        assert!(Instant::now() < deadline, "no response head");
        match stream.read(&mut buf) {
            Ok(0) => panic!("closed before head"),
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read: {e}"),
        }
    };
    let mut decoder = ChunkedDecoder::new();
    let mut parser = SseParser::new();
    decoder.extend(&raw[head_end..]);
    let mut streamed = String::new();
    'outer: loop {
        while let Some(chunk) = decoder.next_chunk().expect("well-formed chunking") {
            parser.extend(&chunk);
        }
        while let Some(frame) = parser.next_frame() {
            match frame.event.as_deref() {
                Some("journal") => {
                    streamed.push_str(&frame.data);
                    streamed.push('\n');
                }
                Some("end") => break 'outer,
                _ => {}
            }
        }
        if decoder.finished() {
            break;
        }
        assert!(Instant::now() < deadline, "stream never ended");
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => decoder.extend(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read: {e}"),
        }
    }
    let (status, journal) = http(bed.http_addr, "GET", &format!("/jobs/{id}/journal"), "");
    assert_eq!(status, 200);
    bed.shutdown();
    streamed == journal
}

// ---------------------------------------------------------------- output

fn main() {
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--out" => out = Some(argv.next().expect("--out needs a path")),
            "--drain" => drain_events(&argv.next().expect("--drain needs an address")),
            other => {
                eprintln!("usage: telemetry_bench [--out FILE]  (unknown flag {other})");
                std::process::exit(2);
            }
        }
    }

    eprintln!("telemetry_bench: overhead, {} reps each way...", reps());
    let oh = run_overhead();
    let overhead_ok = oh.frac < OVERHEAD_CEILING;

    eprintln!("telemetry_bench: stalled subscriber...");
    let (drops, stall_jobs, journals_identical) = run_stall();

    eprintln!("telemetry_bench: per-job stream integrity...");
    let integrity_ok = run_integrity();

    let json = format!(
        "{{\n  \"benchmark\": \"telemetry_plane\",\n  \
         \"quick_mode\": {},\n  \
         \"overhead\": {{\"subscribers\": {SUBSCRIBERS}, \
         \"batch\": \"{} jobs x {BATCH_TASKS} tasks x {BATCH_RECORDS} records\", \
         \"reps_each\": {}, \
         \"method\": \"median of paired subscribed/baseline process-CPU ratios\", \
         \"baseline_cpu_ms_median\": {:.1}, \
         \"subscribed_cpu_ms_median\": {:.1}, \
         \"baseline_wall_ms_median\": {:.1}, \
         \"subscribed_wall_ms_median\": {:.1}, \"overhead_frac\": {:.4}, \
         \"sse_bytes_streamed\": {}, \"under_2pct\": {overhead_ok}}},\n  \
         \"stalled_subscriber\": {{\"jobs_to_overflow\": {stall_jobs}, \
         \"subscriber_drops\": {drops}, \
         \"journals_bit_identical_to_clean_bed\": {journals_identical}}},\n  \
         \"stream_integrity\": {{\"journal_stream_matches_journal\": {integrity_ok}}}\n}}\n",
        quick(),
        batch_jobs(),
        reps(),
        oh.base_cpu_ms,
        oh.subbed_cpu_ms,
        oh.base_wall_ms,
        oh.subbed_wall_ms,
        oh.frac,
        oh.streamed,
    );
    match &out {
        Some(path) => std::fs::write(path, &json).expect("write bench artifact"),
        None => print!("{json}"),
    }
    eprintln!(
        "telemetry_bench: baseline {:.0} ms cpu, {SUBSCRIBERS} subscribers {:.0} ms cpu \
         ({:+.2}%), stall drops {drops} in {stall_jobs} jobs",
        oh.base_cpu_ms,
        oh.subbed_cpu_ms,
        oh.frac * 100.0
    );

    // The structural contracts hold at any machine speed.
    assert!(
        drops > 0.0,
        "stalled subscriber never overflowed its queue in {stall_jobs} jobs"
    );
    assert!(
        journals_identical,
        "a stalled subscriber perturbed the data plane: journals diverged"
    );
    assert!(integrity_ok, "streamed journal diverged from the journal");
    // The timing contract needs full-length windows for stable medians.
    if !quick() {
        assert!(
            overhead_ok,
            "8 subscribers cost {:.2}% CPU (ceiling {:.0}%)",
            oh.frac * 100.0,
            OVERHEAD_CEILING * 100.0
        );
    }
}
