//! Adaptation-under-chaos benchmark: what does the fault model cost?
//!
//! Runs the same live loopback Terasort twice — once fault-free, once
//! under the standard chaos plan (an executor crash with reincarnation, a
//! transient two-way partition, a throttled link) — and reports:
//!
//! * **job-completion overhead**: chaos wall clock over fault-free wall
//!   clock, with a hard budget of 2.5× (the recovery machinery must pay
//!   for itself in bounded retries, not unbounded stalls);
//! * **detection latency** per injected fault: from the chaos agent
//!   flipping the kill switch (or the nemesis opening the partition
//!   window) to the driver's `ExecutorFailed` trace event — the live
//!   analogue of the simulator's failure-detection bound;
//! * **post-mortem well-formedness**: a failure-path run must leave a
//!   parseable Chrome-trace dump behind.
//!
//! ```sh
//! cargo run --release -p sae-bench --bin chaos_bench -- --out BENCH_chaos.json
//! ```

use std::time::Duration;

use sae_dag::{FaultPlan, TraceEvent, WireDirection};
use sae_live::{terasort, ClusterConfig, LiveCluster, LiveEvent};

const EXECUTORS: usize = 3;
const TASKS: usize = 36;
const RECORDS: usize = 30_000;
const SEED: u64 = 2026;
const OVERHEAD_BUDGET: f64 = 2.5;

// The fault schedule sits early in the job so every window — including
// the crash's downtime and the partition's heal — plays out before even a
// release-build sort finishes; the crash downtime stays above the 0.4 s
// heartbeat timeout so detection always precedes the rebirth.
const CRASH_EXECUTOR: usize = 1;
const CRASH_AT: f64 = 0.4;
const CRASH_DOWNTIME: f64 = 0.6;
const PARTITION_EXECUTOR: usize = 2;
const PARTITION_AT: f64 = 0.5;
const PARTITION_LEN: f64 = 0.8;

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(1234)
        .with_crash(CRASH_EXECUTOR, CRASH_AT, CRASH_DOWNTIME)
        .with_partition(
            PARTITION_EXECUTOR,
            PARTITION_AT,
            PARTITION_LEN,
            WireDirection::Both,
        )
        .with_throttle(0, 0.2, 2.0, 4_000.0)
}

fn cluster_config(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        executors: EXECUTORS,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
        check_interval: Duration::from_millis(25),
        probation: Duration::from_millis(500),
        deadline: Duration::from_secs(120),
        fault_plan: plan,
        ..ClusterConfig::default()
    }
}

struct ChaosRun {
    runtime: f64,
    events: Vec<LiveEvent>,
    reincarnations: u64,
}

fn run_once(plan: FaultPlan) -> ChaosRun {
    let mut cluster = LiveCluster::launch(cluster_config(plan)).expect("launch cluster");
    let report = cluster
        .run(&terasort(TASKS, RECORDS, SEED))
        .expect("terasort under chaos");
    let events = cluster.recorder().snapshot();
    let reincarnations = cluster
        .metrics()
        .snapshot()
        .counters
        .get("live.driver.reincarnations")
        .copied()
        .unwrap_or(0);
    cluster.shutdown().expect("shutdown");
    ChaosRun {
        runtime: report.runtime_secs,
        events,
        reincarnations,
    }
}

/// Seconds from a fault landing to the driver's `ExecutorFailed` verdict.
fn detection_latency(events: &[LiveEvent], executor: usize, injected_at: f64) -> Option<f64> {
    events.iter().find_map(|ev| match ev {
        LiveEvent::Trace(TraceEvent::ExecutorFailed { executor: e, at })
            if *e == executor && *at >= injected_at =>
        {
            Some(at - injected_at)
        }
        _ => None,
    })
}

/// When the chaos agent actually flipped the kill switch (wall clock on
/// the recorder's epoch; the schedule says 0.8 s, the agent polls).
fn injection_at(events: &[LiveEvent], executor: usize, kind: &str) -> Option<f64> {
    events.iter().find_map(|ev| match ev {
        LiveEvent::FaultInjected {
            executor: e,
            kind: k,
            at,
        } if *e == executor && *k == kind => Some(*at),
        _ => None,
    })
}

/// Failure path: a one-executor fleet that dies with no rebirth must park
/// degraded, fail, and leave a parseable post-mortem trace behind.
fn postmortem_is_wellformed() -> bool {
    let mut cfg = cluster_config(FaultPlan::default());
    cfg.executors = 1;
    cfg.kill_after_tasks = vec![(0, 1)];
    cfg.degraded_wait = Duration::from_millis(500);
    cfg.deadline = Duration::from_secs(30);
    let mut cluster = LiveCluster::launch(cfg).expect("launch failure-path cluster");
    if cluster.run(&terasort(12, 10_000, 3)).is_ok() {
        return false; // the job was supposed to fail
    }
    let Some(path) = cluster.last_trace_path().map(|p| p.to_path_buf()) else {
        return false;
    };
    let Ok(body) = std::fs::read_to_string(&path) else {
        return false;
    };
    let _ = std::fs::remove_file(&path);
    let _ = cluster.shutdown();
    // Chrome trace shape: a JSON array of event objects, each carrying a
    // name and a timestamp, with the driver's degraded marker among them.
    let trimmed = body.trim();
    trimmed.starts_with('[')
        && trimmed.ends_with(']')
        && trimmed.matches("\"name\"").count() > 10
        && trimmed.contains("\"degraded\"")
}

fn main() {
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(args.next().expect("--out requires a path"));
            }
            other => panic!("unknown argument {other:?} (supported: --out <path>)"),
        }
    }
    chaos_plan().validate(EXECUTORS);

    println!(
        "== fault-free: live Terasort, {TASKS} tasks x {RECORDS} records, {EXECUTORS} executors =="
    );
    let clean = run_once(FaultPlan::default());
    println!("   runtime {:.3}s", clean.runtime);

    println!("== chaos: crash+reincarnate exec {CRASH_EXECUTOR}, partition exec {PARTITION_EXECUTOR}, throttle exec 0 ==");
    let chaos = run_once(chaos_plan());
    println!(
        "   runtime {:.3}s, {} reincarnation(s)",
        chaos.runtime, chaos.reincarnations
    );
    assert!(
        chaos.reincarnations >= 1,
        "the chaos run must exercise at least one reincarnation"
    );

    let crash_at = injection_at(&chaos.events, CRASH_EXECUTOR, "crash").expect("crash injected");
    let crash_latency =
        detection_latency(&chaos.events, CRASH_EXECUTOR, crash_at).expect("crash detected");
    let partition_at =
        injection_at(&chaos.events, PARTITION_EXECUTOR, "partition").expect("partition opened");
    let partition_latency = detection_latency(&chaos.events, PARTITION_EXECUTOR, partition_at)
        .expect("partition detected");
    println!("   crash detection latency     {crash_latency:.3}s");
    println!("   partition detection latency {partition_latency:.3}s");

    let overhead = chaos.runtime / clean.runtime;
    println!("   completion overhead {overhead:.2}x (budget {OVERHEAD_BUDGET}x)");
    assert!(
        overhead < OVERHEAD_BUDGET,
        "chaos overhead {overhead:.2}x blew the {OVERHEAD_BUDGET}x budget"
    );

    println!("== failure path: post-mortem dump well-formedness ==");
    let postmortem_ok = postmortem_is_wellformed();
    println!("   post-mortem well-formed: {postmortem_ok}");
    assert!(
        postmortem_ok,
        "failure-path post-mortem was missing or malformed"
    );

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"benchmark\": \"adaptation_under_chaos\",\n  \"workload\": \"live loopback Terasort, {TASKS} tasks x {RECORDS} records, {EXECUTORS} executors\",\n  \"plan\": \"crash(exec {CRASH_EXECUTOR} @{CRASH_AT}s, downtime {CRASH_DOWNTIME}s) + partition(exec {PARTITION_EXECUTOR} @{PARTITION_AT}s, {PARTITION_LEN}s, both ways) + throttle(exec 0 @0.2s, 2.0s, 4 kB/s)\",\n  \"fault_free_seconds\": {:.6},\n  \"chaos_seconds\": {:.6},\n  \"completion_overhead_x\": {overhead:.3},\n  \"overhead_budget_x\": {OVERHEAD_BUDGET},\n  \"crash_detection_latency_seconds\": {crash_latency:.6},\n  \"partition_detection_latency_seconds\": {partition_latency:.6},\n  \"reincarnations\": {},\n  \"postmortem_wellformed\": {postmortem_ok}\n}}\n",
            clean.runtime, chaos.runtime, chaos.reincarnations,
        );
        std::fs::write(&path, json).expect("write benchmark json");
        println!("wrote {path}");
    }
}
