//! Regenerates the paper's fig10.
fn main() {
    println!("{}", sae_bench::experiments::fig10::run());
}
