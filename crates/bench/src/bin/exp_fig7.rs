//! Regenerates the paper's fig7.
fn main() {
    println!("{}", sae_bench::experiments::fig7::run());
}
