//! Regenerates the paper's fig3.
fn main() {
    println!("{}", sae_bench::experiments::fig3::run());
}
