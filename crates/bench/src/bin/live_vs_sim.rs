//! Side-by-side pool-size decision traces: simulated engine vs the live
//! TCP runtime.
//!
//! Both runtimes drive the same MAPE-K controller (`c_min=2`, `c_max=8`)
//! over the same protocol messages; what differs is everything around it —
//! virtual time vs wall clock, modelled I/O vs real spill files, in-memory
//! mailboxes vs loopback sockets. If the reproduction is faithful, the
//! *shape* of the decision traces should match: every stage resets to
//! `c_min`, every decision stays within bounds, and the driver's slot
//! registry ends consistent with the last `PoolSizeChanged` it saw.
//!
//! ```sh
//! cargo run --release -p sae-bench --bin live_vs_sim
//! ```

use sae_core::{MapeConfig, ThreadPolicy};
use sae_dag::EngineConfig;
use sae_live::{terasort, ClusterConfig, LiveCluster, LiveReport};
use sae_workloads::WorkloadKind;

const EXECUTORS: usize = 3;
const C_MIN: usize = 2;
const C_MAX: usize = 8;

fn sim_traces() -> Vec<(String, Vec<Vec<usize>>)> {
    let cfg = EngineConfig::four_node_hdd().with_nodes(EXECUTORS);
    let workload = WorkloadKind::Terasort.build();
    let report = sae_bench::run_workload(
        &cfg,
        &workload,
        ThreadPolicy::Adaptive(MapeConfig::new(C_MIN, C_MAX)),
    );
    report
        .stages
        .iter()
        .map(|s| {
            let mut traces = vec![Vec::new(); EXECUTORS];
            for e in &s.executors {
                traces[e.executor] = e.decisions.clone();
            }
            (s.name.clone(), traces)
        })
        .collect()
}

fn live_report() -> LiveReport {
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: EXECUTORS,
        mape: MapeConfig::new(C_MIN, C_MAX),
        ..ClusterConfig::default()
    })
    .expect("launch live cluster");
    let report = cluster
        .run(&terasort(24, 20_000, 2026))
        .expect("live terasort");
    cluster.shutdown().expect("executor threads exit cleanly");
    report
}

fn trace_shape(trace: &[usize]) -> String {
    if trace.is_empty() {
        return "(no adaptation)".into();
    }
    let mut s = format!("{:?}", trace);
    if trace.first() == Some(&C_MIN) {
        s.push_str("  [starts at c_min]");
    }
    s
}

fn main() {
    println!("== simulated engine: adaptive Terasort, {EXECUTORS} nodes, MAPE {C_MIN}..{C_MAX} ==");
    let sim = sim_traces();
    for (name, traces) in &sim {
        println!("stage {name}:");
        for (e, trace) in traces.iter().enumerate() {
            println!("  executor {e}: {}", trace_shape(trace));
        }
    }

    println!();
    println!(
        "== live runtime: loopback Terasort (24 tasks x 20k records), {EXECUTORS} executors =="
    );
    let live = live_report();
    for e in 0..EXECUTORS {
        let trace: Vec<usize> = live
            .decisions
            .iter()
            .filter(|d| d.executor == e)
            .map(|d| d.size)
            .collect();
        println!("  executor {e}: {}", trace_shape(&trace));
    }
    println!(
        "  {} PoolSizeChanged round-trips over {:.2}s; final registry: {:?}",
        live.decisions.len(),
        live.runtime_secs,
        live.registry.iter().map(|s| s.slots).collect::<Vec<_>>()
    );

    // The faithfulness checks the traces must share.
    let sim_in_bounds = sim
        .iter()
        .flat_map(|(_, ts)| ts.iter().flatten())
        .all(|&d| (C_MIN..=C_MAX).contains(&d));
    let live_in_bounds = live
        .decisions
        .iter()
        .all(|d| (C_MIN..=C_MAX).contains(&d.size));
    let sim_resets = sim
        .iter()
        .flat_map(|(_, ts)| ts.iter())
        .filter(|t| !t.is_empty())
        .all(|t| t[0] == C_MIN);
    let live_resets = live.decisions.iter().any(|d| d.size == C_MIN);
    let registry_consistent = (0..EXECUTORS).all(|e| {
        live.decisions
            .iter()
            .rev()
            .find(|d| d.executor == e)
            .is_none_or(|d| live.registry[e].slots == d.size)
    });

    println!();
    println!("== agreement ==");
    println!("decisions within [c_min, c_max]:  sim={sim_in_bounds}  live={live_in_bounds}");
    println!("stage starts reset to c_min:      sim={sim_resets}  live={live_resets}");
    println!("live registry == last decision per executor: {registry_consistent}");
    assert!(
        sim_in_bounds && live_in_bounds && sim_resets && live_resets && registry_consistent,
        "decision traces diverged structurally"
    );
    println!("OK: both runtimes show the same adaptation shape");
}
