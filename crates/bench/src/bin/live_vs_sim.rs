//! Side-by-side pool-size decision traces: simulated engine vs the live
//! TCP runtime.
//!
//! Both runtimes drive the same MAPE-K controller (`c_min=2`, `c_max=8`)
//! over the same protocol messages; what differs is everything around it —
//! virtual time vs wall clock, modelled I/O vs real spill files, in-memory
//! mailboxes vs loopback sockets. If the reproduction is faithful, the
//! *shape* of the decision traces should match: every stage resets to
//! `c_min`, every climb is a doubling ascent from `c_min` (with at most a
//! trailing rollback), every decision stays within bounds, and the
//! driver's slot registry ends consistent with the last `PoolSizeChanged`
//! it saw.
//!
//! ```sh
//! cargo run --release -p sae-bench --bin live_vs_sim -- --out traces.json
//! ```
//!
//! `--out <path>` persists both decision traces and the agreement verdicts
//! as a JSON document for offline comparison and plotting.

use sae_core::{MapeConfig, ThreadPolicy};
use sae_dag::EngineConfig;
use sae_live::{terasort, ClusterConfig, DriverTransport, LiveCluster, LiveReport};
use sae_workloads::WorkloadKind;

const EXECUTORS: usize = 3;
const C_MIN: usize = 2;
const C_MAX: usize = 8;

fn sim_traces() -> Vec<(String, Vec<Vec<usize>>)> {
    let cfg = EngineConfig::four_node_hdd().with_nodes(EXECUTORS);
    let workload = WorkloadKind::Terasort.build();
    let report = sae_bench::run_workload(
        &cfg,
        &workload,
        ThreadPolicy::Adaptive(MapeConfig::new(C_MIN, C_MAX)),
    );
    report
        .stages
        .iter()
        .map(|s| {
            let mut traces = vec![Vec::new(); EXECUTORS];
            for e in &s.executors {
                traces[e.executor] = e.decisions.clone();
            }
            (s.name.clone(), traces)
        })
        .collect()
}

/// Runs the same-seed loopback Terasort under the given wire transport
/// (the epoll reactor or the pinned thread-per-connection reference).
fn live_report(transport: DriverTransport) -> LiveReport {
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: EXECUTORS,
        mape: MapeConfig::new(C_MIN, C_MAX),
        transport,
        ..ClusterConfig::default()
    })
    .expect("launch live cluster");
    let report = cluster
        .run(&terasort(24, 20_000, 2026))
        .expect("live terasort");
    cluster.shutdown().expect("executor threads exit cleanly");
    report
}

fn decision_traces(report: &LiveReport) -> Vec<Vec<usize>> {
    (0..EXECUTORS)
        .map(|e| {
            report
                .decisions
                .iter()
                .filter(|d| d.executor == e)
                .map(|d| d.size)
                .collect()
        })
        .collect()
}

fn trace_shape(trace: &[usize]) -> String {
    if trace.is_empty() {
        return "(no adaptation)".into();
    }
    let mut s = format!("{:?}", trace);
    if trace.first() == Some(&C_MIN) {
        s.push_str("  [starts at c_min]");
    }
    s
}

/// Split a pool-size decision trace into climb segments: a new segment
/// begins at every reset to `c_min` (each stage start resets the pool, so
/// a two-stage job yields at least two segments per executor).
fn climb_segments(trace: &[usize]) -> Vec<Vec<usize>> {
    let mut segments: Vec<Vec<usize>> = Vec::new();
    for &size in trace {
        if size == C_MIN || segments.is_empty() {
            segments.push(vec![size]);
        } else {
            segments.last_mut().unwrap().push(size);
        }
    }
    segments
}

/// The §5.2 hill-climbing signature: a segment is valid iff it starts at
/// `c_min` and ascends by doubling (capped at `c_max`) — or takes the
/// §5.3 low-I/O shortcut straight to `c_max` — with at most one trailing
/// rollback below the peak. `PoolSizeChanged` is only sent when the size
/// *changes*, so Hold decisions never appear — which is exactly why this
/// shape is checkable on the wire trace.
fn is_doubling_climb(segment: &[usize]) -> bool {
    if segment.first() != Some(&C_MIN) {
        return false;
    }
    let mut i = 1;
    while i < segment.len()
        && (segment[i] == (segment[i - 1] * 2).min(C_MAX)
            || (segment[i] == C_MAX && segment[i] > segment[i - 1]))
    {
        i += 1;
    }
    match segment.len() - i {
        0 => true,
        // One trailing rollback: back down below the peak, never past c_min.
        1 => i >= 2 && segment[i] < segment[i - 1] && segment[i] >= C_MIN,
        _ => false,
    }
}

fn peak(traces: &[Vec<usize>]) -> usize {
    traces.iter().flatten().copied().max().unwrap_or(C_MIN)
}

fn json_trace_array(traces: &[Vec<usize>]) -> String {
    let inner: Vec<String> = traces
        .iter()
        .map(|t| {
            let vals: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    format!("[{}]", inner.join(","))
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    sim: &[(String, Vec<Vec<usize>>)],
    live: &[(&'static str, &LiveReport, &Vec<Vec<usize>>)],
    sim_peak: usize,
    live_peaks: &[(&'static str, usize)],
    climbs_valid: bool,
    in_bounds: bool,
    registry_consistent: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"config\": {{\"executors\": {EXECUTORS}, \"c_min\": {C_MIN}, \"c_max\": {C_MAX}}},\n"
    ));
    out.push_str("  \"sim\": [\n");
    for (i, (name, traces)) in sim.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{name}\", \"decisions\": {}}}{}\n",
            json_trace_array(traces),
            if i + 1 < sim.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"live\": {\n");
    for (i, (label, report, traces)) in live.iter().enumerate() {
        out.push_str(&format!(
            "    \"{label}\": {{\"runtime_secs\": {:?}, \"decisions\": {}, \"registry\": [{}]}}{}\n",
            report.runtime_secs,
            json_trace_array(traces),
            report
                .registry
                .iter()
                .map(|s| s.slots.to_string())
                .collect::<Vec<_>>()
                .join(","),
            if i + 1 < live.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    let peaks = live_peaks
        .iter()
        .map(|(label, peak)| format!("\"{label}_peak\": {peak}"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "  \"agreement\": {{\"sim_peak\": {sim_peak}, {peaks}, \
         \"climbs_valid\": {climbs_valid}, \"in_bounds\": {in_bounds}, \
         \"registry_consistent\": {registry_consistent}}}\n"
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = Some(args.next().expect("--out requires a path"));
            }
            other => panic!("unknown argument {other:?} (supported: --out <path>)"),
        }
    }

    println!("== simulated engine: adaptive Terasort, {EXECUTORS} nodes, MAPE {C_MIN}..{C_MAX} ==");
    let sim = sim_traces();
    for (name, traces) in &sim {
        println!("stage {name}:");
        for (e, trace) in traces.iter().enumerate() {
            println!("  executor {e}: {}", trace_shape(trace));
        }
    }

    // The live side runs twice over the same-seed job: once under the
    // epoll reactor (the default wire layer) and once under the pinned
    // thread-per-connection reference. The transport moves bytes; the
    // controller climbs. Both traces must carry the same doubling
    // signature as each other and as the simulator.
    let mut live_runs: Vec<(&'static str, LiveReport, Vec<Vec<usize>>)> = Vec::new();
    for (label, transport) in [
        ("reactor", DriverTransport::Reactor),
        ("blocking", DriverTransport::Blocking),
    ] {
        println!();
        println!(
            "== live runtime [{label}]: loopback Terasort (24 tasks x 20k records), {EXECUTORS} executors =="
        );
        let live = live_report(transport);
        let traces = decision_traces(&live);
        for (e, trace) in traces.iter().enumerate() {
            println!("  executor {e}: {}", trace_shape(trace));
        }
        println!(
            "  {} PoolSizeChanged round-trips over {:.2}s; final registry: {:?}",
            live.decisions.len(),
            live.runtime_secs,
            live.registry.iter().map(|s| s.slots).collect::<Vec<_>>()
        );
        live_runs.push((label, live, traces));
    }

    // The faithfulness checks the traces must share.
    let sim_flat: Vec<Vec<usize>> = sim.iter().flat_map(|(_, ts)| ts.iter().cloned()).collect();
    let in_bounds = sim_flat
        .iter()
        .chain(live_runs.iter().flat_map(|(_, _, ts)| ts.iter()))
        .flatten()
        .all(|&d| (C_MIN..=C_MAX).contains(&d));
    let live_resets = live_runs
        .iter()
        .all(|(_, live, _)| live.decisions.iter().any(|d| d.size == C_MIN));
    let registry_consistent = live_runs.iter().all(|(_, live, _)| {
        (0..EXECUTORS).all(|e| {
            live.decisions
                .iter()
                .rev()
                .find(|d| d.executor == e)
                .is_none_or(|d| live.registry[e].slots == d.size)
        })
    });

    // Climb-sequence agreement: decompose every non-empty trace from all
    // three runtimes into segments and demand each one carries the
    // controller's doubling signature.
    let mut climbs_valid = true;
    let mut origins: Vec<(&str, &Vec<Vec<usize>>)> = vec![("sim", &sim_flat)];
    origins.extend(live_runs.iter().map(|(label, _, ts)| (*label, ts)));
    for (origin, traces) in origins {
        for (e, trace) in traces.iter().enumerate() {
            for segment in climb_segments(trace) {
                if !is_doubling_climb(&segment) {
                    climbs_valid = false;
                    println!(
                        "  !! {origin} trace {e}: segment {segment:?} is not a doubling climb"
                    );
                }
            }
        }
    }
    let sim_peak = peak(&sim_flat);
    let live_peaks: Vec<(&'static str, usize)> = live_runs
        .iter()
        .map(|(label, _, ts)| (*label, peak(ts)))
        .collect();

    println!();
    println!("== agreement ==");
    println!("decisions within [c_min, c_max]:  {in_bounds}");
    println!("every climb segment doubles from c_min (± one rollback): {climbs_valid}");
    let peaks_line = live_peaks
        .iter()
        .map(|(label, p)| format!("{label}={p}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("peak pool size reached:           sim={sim_peak}  {peaks_line}");
    println!("live registry == last decision per executor: {registry_consistent}");

    if let Some(path) = &out_path {
        let live_refs: Vec<(&'static str, &LiveReport, &Vec<Vec<usize>>)> = live_runs
            .iter()
            .map(|(label, live, ts)| (*label, live, ts))
            .collect();
        let json = render_json(
            &sim,
            &live_refs,
            sim_peak,
            &live_peaks,
            climbs_valid,
            in_bounds,
            registry_consistent,
        );
        std::fs::write(path, json).expect("write --out JSON");
        println!("wrote decision traces to {path}");
    }

    assert!(
        in_bounds && live_resets && registry_consistent,
        "decision traces diverged structurally"
    );
    assert!(
        climbs_valid,
        "a decision trace violated the doubling-climb signature"
    );
    assert!(
        sim_peak > C_MIN,
        "the simulated runtime never climbed above c_min"
    );
    for (label, live_peak) in &live_peaks {
        assert!(
            *live_peak > C_MIN,
            "the live runtime [{label}] never climbed above c_min"
        );
    }
    println!("OK: all three runtimes show the same adaptation shape");
}
