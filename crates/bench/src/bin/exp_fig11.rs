//! Regenerates the paper's fig11.
fn main() {
    println!("{}", sae_bench::experiments::fig11::run());
}
