//! Calibration probe binary.
use sae_workloads::WorkloadKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let kind = match args.get(1).map(String::as_str) {
        Some("pagerank") => WorkloadKind::PageRank,
        Some("aggregation") => WorkloadKind::Aggregation,
        Some("join") => WorkloadKind::Join,
        _ => WorkloadKind::Terasort,
    };
    println!("{}", sae_bench::experiments::probe::run(kind, scale));
}
