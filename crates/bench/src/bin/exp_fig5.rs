//! Regenerates the paper's fig5.
fn main() {
    println!("{}", sae_bench::experiments::fig5::run());
}
