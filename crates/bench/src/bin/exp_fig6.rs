//! Regenerates the paper's fig6.
fn main() {
    println!("{}", sae_bench::experiments::fig6::run());
}
