//! Regenerates the paper's fig1.
fn main() {
    println!("{}", sae_bench::experiments::fig1::run());
}
