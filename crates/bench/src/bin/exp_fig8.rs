//! Regenerates the paper's fig8.
fn main() {
    println!("{}", sae_bench::experiments::fig8::run());
}
