//! Regenerates the paper's fig4.
fn main() {
    println!("{}", sae_bench::experiments::fig4::run());
}
