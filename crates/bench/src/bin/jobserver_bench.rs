//! Multi-tenant load generator for `sae-server`: throughput and job
//! latency vs. offered load, weighted fairness under saturation, and the
//! determinism contracts — the "many users, one fleet" story measured.
//!
//! The generator is **closed-loop**: each tenant keeps one job in flight
//! and discovers completion by polling `GET /jobs/:id` on a fixed period.
//! That poll period is the single-tenant pacing floor, so a server that
//! truly serves tenants concurrently scales aggregate throughput near
//! linearly with tenant count until its fleet saturates — which is the
//! property the scaling assertion checks. Four phases:
//!
//! 1. **sequential baseline** — one tenant, back-to-back jobs;
//! 2. **scaling sweep** — 1/4/16 concurrent tenants, aggregate
//!    throughput + p50/p99 job latency, asserting the 16-tenant
//!    aggregate lands within 20% of 16x the sequential rate;
//! 3. **weighted fairness** — a weight-4 and a weight-1 tenant hammer a
//!    deliberately starved one-executor fleet; the weight-4 tenant must
//!    complete >= 3x the weight-1 tenant's share;
//! 4. **determinism** — same-seed reruns of the same submission schedule
//!    produce bit-identical job journals, and the stride scheduler's
//!    replay transcript is bit-identical across runs.
//!
//! ```sh
//! cargo run --release -p sae-bench --bin jobserver_bench -- --out BENCH_jobserver.json
//! SAE_JOBSERVER_BENCH_QUICK=1 cargo run --release -p sae-bench --bin jobserver_bench
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sae_core::MapeConfig;
use sae_live::executor::LiveExecutorConfig;
use sae_live::server::sched::{replay, Step};
use sae_live::server::{JobServer, ServerConfig};
use sae_live::{LiveExecutor, TempDir};
use sae_net::http::parse_response;

/// Status-poll period: the closed-loop pacing floor for every tenant.
/// Generous on purpose — the single-tenant rate must be pacing-bound,
/// not capacity-bound, and at 16 tenants the aggregate demand
/// (16/POLL jobs/s plus the matching poll traffic) must still fit the
/// host so the sweep measures the server's concurrency, not the box's.
const POLL: Duration = Duration::from_millis(60);
/// Scaling-sweep job: narrow and tiny, so per-job latency is dominated
/// by the poll pacing rather than fleet capacity.
const SCALE_TASKS: usize = 1;
const SCALE_RECORDS: usize = 500;
/// Fairness job: heavy enough that per-job service time on the starved
/// fleet dwarfs the poll pacing — otherwise the favored tenant's streams
/// spend proportionally more of their cycle idle between jobs and the
/// measured share ratio sags below the scheduler's actual split.
const FAIR_TASKS: usize = 4;
const FAIR_RECORDS: usize = 25_000;
const FAIR_STREAMS_PER_TENANT: usize = 4;
/// Jobs each fairness stream keeps in flight. Stride scheduling holds
/// same-weight jobs at equal pass, so their stage barriers synchronize;
/// with only one job per stream the whole gold tenant goes unrunnable at
/// every barrier and the bronze tenant sweeps up the slack. A second
/// in-flight job per stream keeps the tenant contending through its own
/// barriers, so the measured split reflects the scheduler, not the
/// workload's barrier phasing.
const FAIR_DEPTH: usize = 2;
const FAIR_POLL: Duration = Duration::from_millis(20);
const SCALING_TOLERANCE: f64 = 0.20;
const FAIRNESS_FLOOR: f64 = 3.0;

fn quick() -> bool {
    std::env::var("SAE_JOBSERVER_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn warmup() -> Duration {
    if quick() {
        Duration::from_millis(500)
    } else {
        Duration::from_secs(1)
    }
}

fn window() -> Duration {
    if quick() {
        Duration::from_millis(1500)
    } else {
        Duration::from_secs(6)
    }
}

// ---------------------------------------------------------------- client

/// One HTTP request over a fresh loopback connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control port");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: sae\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let (resp, _) = parse_response(&buf)
        .expect("well-formed response")
        .expect("complete response");
    (resp.status, resp.body_str())
}

fn field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no field {key} in {body}"))
        + pat.len();
    let rest = &body[start..];
    let quoted = rest.starts_with('"');
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if quoted {
                *i > 0 && *c == '"'
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, _)| if quoted { i + 1 } else { i })
        .unwrap_or(rest.len());
    rest[..end].trim_matches('"').to_string()
}

fn job_body(tenant: &str, weight: u64, tasks: usize, records: usize, seed: u64) -> String {
    format!(
        "{{\"tenant\":\"{tenant}\",\"weight\":{weight},\"tasks\":{tasks},\
         \"records_per_task\":{records},\"seed\":{seed}}}"
    )
}

/// Submits one job and poll-waits it to a terminal state; returns the
/// observed latency. `None` if the submission was bounced (429/503).
fn run_one_job(addr: SocketAddr, body: &str, poll: Duration) -> Option<(Duration, String)> {
    let started = Instant::now();
    let (status, resp) = http(addr, "POST", "/jobs", body);
    if status != 201 {
        return None;
    }
    let id = field(&resp, "job");
    loop {
        thread::sleep(poll);
        let (status, resp) = http(addr, "GET", &format!("/jobs/{id}"), "");
        assert_eq!(status, 200, "status poll failed: {resp}");
        let state = field(&resp, "status");
        if state != "queued" && state != "running" {
            return Some((started.elapsed(), state));
        }
    }
}

// ---------------------------------------------------------------- server

struct Bed {
    http_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    serve: thread::JoinHandle<std::io::Result<sae_live::ServerReport>>,
    fleet: Vec<LiveExecutor>,
    _spill: TempDir,
}

impl Bed {
    /// Binds a server and launches `executors` in-process executors,
    /// each with `slots` fixed pool slots (adaptive range pinned).
    fn launch(executors: usize, slots: usize, max_active: usize) -> Self {
        let cfg = ServerConfig {
            executors,
            max_active,
            max_queued: max_active * 2,
            ..ServerConfig::default()
        };
        let stop = Arc::clone(&cfg.stop);
        let server = JobServer::bind(cfg).expect("bind server");
        let wire_addr = server.wire_addr().unwrap();
        let http_addr = server.http_addr().unwrap();
        let spill = TempDir::new("jobserver-bench").unwrap();
        let fleet = (0..executors)
            .map(|id| {
                let dir = spill.path().join(format!("exec-{id}"));
                std::fs::create_dir_all(&dir).unwrap();
                let mut ecfg = LiveExecutorConfig::new(id, dir);
                ecfg.mape = MapeConfig::new(slots, slots);
                LiveExecutor::launch(wire_addr, ecfg)
            })
            .collect();
        let serve = thread::spawn(move || server.serve());
        Self {
            http_addr,
            stop,
            serve,
            fleet,
            _spill: spill,
        }
    }

    fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        self.serve.join().expect("serve thread").expect("serve ok");
        for exec in self.fleet {
            let _ = exec.join();
        }
    }
}

// ---------------------------------------------------------------- phases

struct Level {
    tenants: usize,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    completed: u64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted_ms[idx]
}

/// Closed-loop sweep at one tenant count: a warmup, then a timed window
/// counting completions and collecting per-job latencies.
fn run_level(tenants: usize) -> Level {
    // A small fleet on purpose: the scale jobs are tiny, so slot count is
    // not the bottleneck, and fewer pool threads means less scheduler
    // thrash when the whole bench shares a box with its own clients.
    let bed = Bed::launch(2, 4, 32);
    let go = Arc::new(AtomicBool::new(false));
    let halt = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let addr = bed.http_addr;
    let workers: Vec<_> = (0..tenants)
        .map(|t| {
            let (go, halt, completed) =
                (Arc::clone(&go), Arc::clone(&halt), Arc::clone(&completed));
            thread::spawn(move || {
                let body = job_body(
                    &format!("tenant-{t}"),
                    1,
                    SCALE_TASKS,
                    SCALE_RECORDS,
                    t as u64,
                );
                let mut lat = Vec::new();
                while !halt.load(Ordering::Relaxed) {
                    let Some((took, state)) = run_one_job(addr, &body, POLL) else {
                        thread::sleep(POLL);
                        continue;
                    };
                    assert_eq!(state, "completed", "tenant-{t} job failed");
                    if go.load(Ordering::Relaxed) {
                        completed.fetch_add(1, Ordering::Relaxed);
                        lat.push(took.as_secs_f64() * 1e3);
                    }
                }
                lat
            })
        })
        .collect();

    thread::sleep(warmup());
    go.store(true, Ordering::Relaxed);
    let opened = Instant::now();
    thread::sleep(window());
    let measured = opened.elapsed();
    halt.store(true, Ordering::Relaxed);
    let mut lat: Vec<f64> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let done = completed.load(Ordering::Relaxed);
    bed.shutdown();
    Level {
        tenants,
        throughput: done as f64 / measured.as_secs_f64(),
        p50_ms: percentile(&lat, 50.0),
        p99_ms: percentile(&lat, 99.0),
        completed: done,
    }
}

/// Weighted fairness under saturation: gold (weight 4) vs bronze
/// (weight 1), several streams each, on a starved one-executor fleet.
fn run_fairness() -> (u64, u64) {
    let bed = Bed::launch(1, 2, 24);
    let go = Arc::new(AtomicBool::new(false));
    let halt = Arc::new(AtomicBool::new(false));
    let gold = Arc::new(AtomicU64::new(0));
    let bronze = Arc::new(AtomicU64::new(0));
    let addr = bed.http_addr;
    let mut workers = Vec::new();
    for (tenant, weight, counter) in [("gold", 4u64, &gold), ("bronze", 1u64, &bronze)] {
        for s in 0..FAIR_STREAMS_PER_TENANT {
            let (go, halt, counter) = (Arc::clone(&go), Arc::clone(&halt), Arc::clone(counter));
            let tenant = tenant.to_string();
            workers.push(thread::spawn(move || {
                let body = job_body(&tenant, weight, FAIR_TASKS, FAIR_RECORDS, s as u64);
                let mut inflight: Vec<String> = Vec::new();
                while !halt.load(Ordering::Relaxed) {
                    while inflight.len() < FAIR_DEPTH {
                        let (status, resp) = http(addr, "POST", "/jobs", &body);
                        if status != 201 {
                            break; // bounced: retry after the poll sleep
                        }
                        inflight.push(field(&resp, "job"));
                    }
                    thread::sleep(FAIR_POLL);
                    inflight.retain(|id| {
                        let (_, resp) = http(addr, "GET", &format!("/jobs/{id}"), "");
                        let state = field(&resp, "status");
                        if state == "queued" || state == "running" {
                            return true;
                        }
                        assert_eq!(state, "completed", "{tenant} job failed");
                        if go.load(Ordering::Relaxed) {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        false
                    });
                }
            }));
        }
    }
    thread::sleep(warmup());
    go.store(true, Ordering::Relaxed);
    thread::sleep(window());
    halt.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("client thread");
    }
    let (_, metrics) = http(bed.http_addr, "GET", "/metrics", "");
    for line in metrics.lines() {
        if line.contains("tasks") && line.contains("tenant=") {
            eprintln!("jobserver_bench:   {line}");
        }
    }
    let shares = (gold.load(Ordering::Relaxed), bronze.load(Ordering::Relaxed));
    bed.shutdown();
    shares
}

/// Same-seed, same-schedule reruns must produce bit-identical journals;
/// the stride scheduler's replay transcript must be bit-identical too.
fn run_determinism() -> (bool, bool) {
    let bed = Bed::launch(2, 4, 8);
    let body = job_body("rerun", 1, FAIR_TASKS, FAIR_RECORDS, 42);
    let journal = |_: usize| -> String {
        let (status, resp) = http(bed.http_addr, "POST", "/jobs", &body);
        assert_eq!(status, 201, "{resp}");
        let id = field(&resp, "job");
        loop {
            thread::sleep(POLL);
            let (_, resp) = http(bed.http_addr, "GET", &format!("/jobs/{id}"), "");
            if field(&resp, "status") == "completed" {
                break;
            }
        }
        http(bed.http_addr, "GET", &format!("/jobs/{id}/journal"), "").1
    };
    let journals_identical = journal(0) == journal(1);
    bed.shutdown();

    let mut steps = vec![Step::Admit(1, 1), Step::Admit(2, 4), Step::Admit(3, 1)];
    steps.extend(std::iter::repeat_n(Step::Pick, 200));
    steps.push(Step::Retire(2));
    steps.extend(std::iter::repeat_n(Step::Pick, 100));
    let replay_identical = replay(&steps) == replay(&steps);
    (journals_identical, replay_identical)
}

// ---------------------------------------------------------------- output

fn main() {
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--out" => out = Some(argv.next().expect("--out needs a path")),
            other => {
                eprintln!("usage: jobserver_bench [--out FILE]  (unknown flag {other})");
                std::process::exit(2);
            }
        }
    }

    eprintln!("jobserver_bench: sequential baseline...");
    let seq = run_level(1); // tenants=1 closed loop IS the sequential baseline
    let seq_rate = seq.throughput;
    let mut levels = vec![seq];
    for tenants in [4, 16] {
        eprintln!("jobserver_bench: {tenants} tenants...");
        levels.push(run_level(tenants));
    }
    let agg16 = levels.last().unwrap().throughput;
    let scaling_ratio = agg16 / (16.0 * seq_rate);
    let scaling_ok = (scaling_ratio - 1.0).abs() <= SCALING_TOLERANCE;

    eprintln!("jobserver_bench: weighted fairness under saturation...");
    let (gold, bronze) = run_fairness();
    let share_ratio = gold as f64 / (bronze.max(1)) as f64;
    let fairness_ok = share_ratio >= FAIRNESS_FLOOR;

    eprintln!("jobserver_bench: determinism contracts...");
    let (journals_ok, replay_ok) = run_determinism();

    let mut level_json = String::new();
    for (i, l) in levels.iter().enumerate() {
        if i > 0 {
            level_json.push_str(",\n");
        }
        level_json.push_str(&format!(
            "    {{\"tenants\": {}, \"throughput_jobs_per_sec\": {:.2}, \
             \"p50_latency_ms\": {:.2}, \"p99_latency_ms\": {:.2}, \"completed\": {}}}",
            l.tenants, l.throughput, l.p50_ms, l.p99_ms, l.completed
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"jobserver_load\",\n  \
         \"generator\": \"closed loop, 1 job in flight per tenant, {} ms status-poll pacing\",\n  \
         \"scale_job\": \"terasort {} tasks x {} records, fleet 2 executors x 4 slots\",\n  \
         \"quick_mode\": {},\n  \
         \"sequential_rate_jobs_per_sec\": {:.2},\n  \
         \"levels\": [\n{}\n  ],\n  \
         \"aggregate_16_tenant_vs_16x_sequential\": {:.3},\n  \
         \"scaling_within_20pct\": {},\n  \
         \"fairness\": {{\"fleet\": \"1 executor x 2 slots\", \"streams_per_tenant\": {}, \
         \"gold_weight\": 4, \"bronze_weight\": 1, \"gold_completed\": {}, \
         \"bronze_completed\": {}, \"share_ratio\": {:.2}, \"meets_3x_floor\": {}}},\n  \
         \"determinism\": {{\"journals_bit_identical\": {}, \
         \"stride_replay_bit_identical\": {}}}\n}}\n",
        POLL.as_millis(),
        SCALE_TASKS,
        SCALE_RECORDS,
        quick(),
        seq_rate,
        level_json,
        scaling_ratio,
        scaling_ok,
        FAIR_STREAMS_PER_TENANT,
        gold,
        bronze,
        share_ratio,
        fairness_ok,
        journals_ok,
        replay_ok,
    );
    match &out {
        Some(path) => std::fs::write(path, &json).expect("write bench artifact"),
        None => print!("{json}"),
    }
    eprintln!(
        "jobserver_bench: seq {seq_rate:.1}/s, 16-tenant {agg16:.1}/s \
         (ratio {scaling_ratio:.3}), fairness {gold}:{bronze} ({share_ratio:.2}x)"
    );

    // The determinism contracts hold at any machine speed; the scaling
    // and fairness contracts need the full-length windows for stable
    // counts, so quick mode reports them without enforcing them.
    assert!(journals_ok, "same-seed rerun journals diverged");
    assert!(replay_ok, "stride replay transcript diverged");
    if !quick() {
        assert!(
            fairness_ok,
            "weight-4 tenant got only {share_ratio:.2}x the weight-1 share (floor {FAIRNESS_FLOOR}x)"
        );
        assert!(
            scaling_ok,
            "16-tenant aggregate is {scaling_ratio:.3} of 16x sequential \
             (want within {SCALING_TOLERANCE})"
        );
    }
}
