//! Regenerates the paper's fig12.
fn main() {
    println!("{}", sae_bench::experiments::fig12::run());
}
