//! Regenerates the paper's fig9.
fn main() {
    println!("{}", sae_bench::experiments::fig9::run());
}
