//! Regenerates the paper's fig2.
fn main() {
    println!("{}", sae_bench::experiments::fig2::run());
}
