//! Regenerates the paper's table1.
fn main() {
    println!("{}", sae_bench::experiments::table1::run());
}
