//! Figure 1: I/O wait and CPU usage of different stages of applications.

use sae_core::ThreadPolicy;
use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{run_workload, TextTable};

/// The applications shown in Figure 1.
pub const APPS: [WorkloadKind; 4] = [
    WorkloadKind::Aggregation,
    WorkloadKind::Join,
    WorkloadKind::PageRank,
    WorkloadKind::Terasort,
];

/// Per-stage CPU% and disk-iowait% under the default configuration.
pub fn stage_utilisation(kind: WorkloadKind) -> Vec<(String, f64, f64, f64)> {
    let cfg = EngineConfig::four_node_hdd();
    let w = kind.build();
    let report = run_workload(&cfg, &w, ThreadPolicy::Default);
    report
        .stages
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.avg_cpu_busy * 100.0,
                s.avg_cpu_iowait * 100.0,
                s.duration,
            )
        })
        .collect()
}

/// Renders Figure 1, plus mpstat/iostat-style views for Terasort (the
/// tools the paper collected this data with).
pub fn run() -> ExperimentOutput {
    let mut t = TextTable::new(vec![
        "app",
        "stage",
        "cpu %",
        "disk iowait %",
        "duration (s)",
    ]);
    for kind in APPS {
        for (name, cpu, iowait, dur) in stage_utilisation(kind) {
            t.row(vec![
                kind.name().to_owned(),
                name,
                format!("{cpu:.0}"),
                format!("{iowait:.0}"),
                format!("{dur:.1}"),
            ]);
        }
    }
    let mut body = t.render();
    // The raw tool views, as the paper's cluster operators would see them.
    let cfg = EngineConfig::four_node_hdd();
    let w = WorkloadKind::Terasort.build();
    let report = run_workload(&cfg, &w, ThreadPolicy::Default);
    let summaries: Vec<sae_metrics::StageSummary> = report
        .stages
        .iter()
        .map(|s| {
            let mut b = sae_metrics::StageSummaryBuilder::new(s.stage_id);
            b.observe(sae_metrics::UtilizationSample {
                cpu_busy: s.avg_cpu_busy,
                cpu_iowait: s.avg_cpu_iowait,
                disk_util: s.avg_disk_util,
            });
            b.add_read_bytes(s.disk_read_mb as u64);
            b.add_written_bytes(s.disk_write_mb as u64);
            b.finish(s.duration)
        })
        .collect();
    body.push_str(
        "
terasort, mpstat view:
",
    );
    body.push_str(&sae_metrics::mpstat_report(&summaries));
    body.push_str(
        "
terasort, iostat view (MB columns):
",
    );
    body.push_str(&sae_metrics::iostat_report(&summaries));
    ExperimentOutput {
        id: "fig1",
        artefact: "Figure 1",
        title: "Per-stage CPU usage and disk I/O wait (default configuration)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terasort_is_io_bound_everywhere() {
        // Paper: Terasort stage CPU usage is 6/15/9 % — never above ~20 %.
        for (name, cpu, iowait, _) in stage_utilisation(WorkloadKind::Terasort) {
            assert!(cpu < 25.0, "stage {name}: cpu {cpu}");
            assert!(iowait > 50.0, "stage {name}: iowait {iowait}");
        }
    }

    #[test]
    fn sql_scan_stages_are_cpu_heavy() {
        // Paper: Join stage 0 at 68 %, Aggregation stage 0 at 46 %.
        let join = stage_utilisation(WorkloadKind::Join);
        assert!(join[0].1 > 40.0, "join scan cpu {}", join[0].1);
        let agg = stage_utilisation(WorkloadKind::Aggregation);
        assert!(agg[0].1 > 30.0, "agg scan cpu {}", agg[0].1);
    }
}
