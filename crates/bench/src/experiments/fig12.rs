//! Figure 12: I/O throughput over time for Terasort with HDDs and SSDs.

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{fixed_thread_run, TextTable};

/// One throughput series: cluster-aggregate disk MB/s samples of a stage.
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    /// Threads per executor.
    pub threads: usize,
    /// `(t, MB/s)` samples relative to stage start.
    pub samples: Vec<(f64, f64)>,
}

impl ThroughputSeries {
    /// Mean throughput over the stage.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.1).sum::<f64>() / self.samples.len() as f64
    }
}

/// Collects the throughput series of `stage` for each thread count.
pub fn series(cfg: &EngineConfig, stage: usize) -> Vec<ThroughputSeries> {
    let w = WorkloadKind::Terasort.build();
    [32usize, 16, 8, 4, 2]
        .iter()
        .map(|&threads| {
            let report = fixed_thread_run(cfg, &w, threads);
            ThroughputSeries {
                threads,
                samples: report.stages[stage].disk_throughput_series.clone(),
            }
        })
        .collect()
}

fn render(label: &str, cfg: &EngineConfig, stage: usize, body: &mut String) {
    let all = series(cfg, stage);
    let mut t = TextTable::new(vec![
        "threads".to_owned(),
        "mean (MB/s)".to_owned(),
        "duration (s)".to_owned(),
        "first samples (MB/s)".to_owned(),
    ]);
    for s in &all {
        let preview: Vec<String> = s
            .samples
            .iter()
            .take(6)
            .map(|(_, v)| format!("{v:.0}"))
            .collect();
        let duration = s.samples.last().map_or(0.0, |p| p.0);
        t.row(vec![
            s.threads.to_string(),
            format!("{:.1}", s.mean()),
            format!("{duration:.0}"),
            preview.join(" "),
        ]);
    }
    body.push_str(&format!("Stage {stage}, {label}:\n{}\n", t.render()));
}

/// Renders Figure 12.
pub fn run() -> ExperimentOutput {
    let hdd = EngineConfig::four_node_hdd();
    let ssd = EngineConfig::four_node_ssd();
    let mut body = String::new();
    render("HDD", &hdd, 0, &mut body);
    render("SSD", &ssd, 0, &mut body);
    render("HDD", &hdd, 1, &mut body);
    render("SSD", &ssd, 1, &mut body);
    ExperimentOutput {
        id: "fig12",
        artefact: "Figure 12",
        title: "I/O throughput over time per thread count (Terasort, HDD vs SSD)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_stage0_mean_varies_strongly_with_threads() {
        // Paper: "with HDD the mean throughput varies quite significantly
        // between different settings".
        let all = series(&EngineConfig::four_node_hdd(), 0);
        let means: Vec<f64> = all.iter().map(ThroughputSeries::mean).collect();
        let max = means.iter().cloned().fold(0.0, f64::max);
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.5, "HDD spread {min:.0}..{max:.0}");
    }

    #[test]
    fn ssd_throughput_higher_than_hdd() {
        let hdd = series(&EngineConfig::four_node_hdd(), 1);
        let ssd = series(&EngineConfig::four_node_ssd(), 1);
        // Compare at the default setting (index 0 = 32 threads).
        assert!(ssd[0].mean() > hdd[0].mean());
    }

    #[test]
    fn series_are_nonempty_for_long_stages() {
        let all = series(&EngineConfig::four_node_hdd(), 0);
        for s in &all {
            assert!(
                s.samples.len() > 10,
                "{} threads: only {} samples",
                s.threads,
                s.samples.len()
            );
        }
    }
}
