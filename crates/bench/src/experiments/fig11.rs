//! Figure 11: the dynamic solution on SSDs (Terasort).

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{run_policy, PolicyRun, TextTable};

/// Default / static-bestfit / dynamic on the SSD configuration.
pub fn compare_ssd() -> Vec<PolicyRun> {
    let cfg = EngineConfig::four_node_ssd();
    let w = WorkloadKind::Terasort.build();
    run_policy(&cfg, &w)
}

/// Renders Figure 11.
pub fn run() -> ExperimentOutput {
    let runs = compare_ssd();
    let default = runs[0].report.total_runtime;
    let mut t = TextTable::new(vec![
        "policy".to_owned(),
        "runtime (s)".to_owned(),
        "vs default".to_owned(),
        "s0 threads".to_owned(),
        "s1 threads".to_owned(),
        "s2 threads".to_owned(),
    ]);
    for run in &runs {
        let mut row = vec![
            run.policy.clone(),
            format!("{:.1}", run.report.total_runtime),
            format!(
                "{:+.1}%",
                (run.report.total_runtime / default - 1.0) * 100.0
            ),
        ];
        for stage in &run.report.stages {
            row.push(format!("{}/{}", stage.threads_used, run.report.total_cores));
        }
        t.row(row);
    }
    ExperimentOutput {
        id: "fig11",
        artefact: "Figure 11",
        title: "Dynamic solution on SSDs (Terasort)",
        body: t.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_keeps_high_parallelism_in_the_read_stage() {
        // Paper Figure 11: stage 0 runs at 128/128 under the dynamic
        // solution on SSDs — no read contention to avoid. Our reproduction
        // settles at or just below the default (the ζ signal is
        // latency-weighted), but never throttles reads the way it does on
        // HDDs (32/128).
        let runs = compare_ssd();
        let dynamic = &runs[2].report;
        assert!(
            dynamic.stages[0].threads_used * 2 >= dynamic.total_cores,
            "SSD read stage should stay at high parallelism, got {}/{}",
            dynamic.stages[0].threads_used,
            dynamic.total_cores
        );
    }

    #[test]
    fn ssd_gains_smaller_than_hdd_gains() {
        // Paper: dynamic gains 16.73 % on SSD vs 34.4 % on HDD.
        let ssd = compare_ssd();
        let ssd_gain = 1.0 - ssd[2].report.total_runtime / ssd[0].report.total_runtime;
        let hdd = crate::experiments::fig8::compare(WorkloadKind::Terasort);
        let hdd_gain = 1.0 - hdd[2].report.total_runtime / hdd[0].report.total_runtime;
        assert!(
            ssd_gain < hdd_gain,
            "SSD gain {ssd_gain:.2} must be below HDD gain {hdd_gain:.2}"
        );
    }
}
