//! Table 2: I/O activity of Spark applications relative to their input
//! size.

use sae_core::ThreadPolicy;
use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{run_workload, TextTable};

/// Measured I/O activity for one workload, in GiB.
#[derive(Debug, Clone, Copy)]
pub struct IoActivity {
    /// Input size in GiB.
    pub input_gib: f64,
    /// Measured disk activity in GiB (reads + writes, incl. replication).
    pub measured_gib: f64,
    /// Table 2's reference value in GiB.
    pub paper_gib: f64,
}

impl IoActivity {
    /// Measured amplification (+x %).
    pub fn measured_diff_percent(&self) -> f64 {
        (self.measured_gib / self.input_gib - 1.0) * 100.0
    }
}

/// Runs one workload under the default configuration and measures its
/// total disk activity.
pub fn measure(kind: WorkloadKind) -> IoActivity {
    let cfg = EngineConfig::four_node_hdd();
    let w = kind.build();
    let report = run_workload(&cfg, &w, ThreadPolicy::Default);
    IoActivity {
        input_gib: kind.input_gib(),
        measured_gib: report.total_disk_io_mb() / 1024.0,
        paper_gib: kind.paper_io_activity_gib(),
    }
}

/// Renders Table 2 with paper-vs-measured columns.
pub fn run() -> ExperimentOutput {
    let mut t = TextTable::new(vec![
        "Application",
        "Input Size",
        "I/O Activity (measured)",
        "Diff.",
        "I/O Activity (paper)",
        "Diff. (paper)",
    ]);
    for kind in WorkloadKind::ALL {
        let a = measure(kind);
        t.row(vec![
            kind.name().to_owned(),
            format!("{:.2} GiB", a.input_gib),
            format!("{:.2} GiB", a.measured_gib),
            format!("+{:.0}%", a.measured_diff_percent()),
            format!("{:.2} GiB", a.paper_gib),
            format!("+{:.0}%", (a.paper_gib / a.input_gib - 1.0) * 100.0),
        ]);
    }
    ExperimentOutput {
        id: "table2",
        artefact: "Table 2",
        title: "I/O activity of applications relative to their input size",
        body: t.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_amplifies_io() {
        for kind in [
            WorkloadKind::Terasort,
            WorkloadKind::PageRank,
            WorkloadKind::NWeight,
        ] {
            let a = measure(kind);
            assert!(
                a.measured_gib > a.input_gib,
                "{}: measured {} <= input {}",
                kind.name(),
                a.measured_gib,
                a.input_gib
            );
        }
    }

    #[test]
    fn nweight_is_most_extreme() {
        // Paper: NWeight amplifies +3553 %, by far the highest ratio.
        let ratios: Vec<(WorkloadKind, f64)> = WorkloadKind::ALL
            .iter()
            .map(|&k| {
                let a = measure(k);
                (k, a.measured_gib / a.input_gib)
            })
            .collect();
        let max = ratios
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(max.0, WorkloadKind::NWeight);
    }
}
