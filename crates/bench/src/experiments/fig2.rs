//! Figure 2: the runtime effect of the static solution on Terasort and
//! PageRank.

use sae_core::ThreadPolicy;
use sae_dag::{EngineConfig, JobReport};
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{derive_bestfit, run_workload, static_sweep, TextTable};

/// The full sweep for one workload, plus the BestFit combination run.
pub fn sweep_with_bestfit(kind: WorkloadKind) -> (Vec<(usize, JobReport)>, JobReport) {
    let cfg = EngineConfig::four_node_hdd();
    let w = kind.build();
    let sweep = static_sweep(&cfg, &w)
        .into_iter()
        .map(|p| (p.io_threads.unwrap_or(32), p.report))
        .collect();
    let table = derive_bestfit(&cfg, &w);
    let bestfit = run_workload(&cfg, &w, ThreadPolicy::BestFit(table));
    (sweep, bestfit)
}

fn render(kind: WorkloadKind, body: &mut String) {
    let (sweep, bestfit) = sweep_with_bestfit(kind);
    let stages = sweep[0].1.stages.len();
    let mut header = vec!["io_threads".to_owned(), "runtime (s)".to_owned()];
    for s in 0..stages {
        header.push(format!("stage {s} (s)"));
    }
    let mut t = TextTable::new(header);
    for (threads, report) in &sweep {
        let mut row = vec![threads.to_string(), format!("{:.1}", report.total_runtime)];
        for stage in &report.stages {
            row.push(format!("{:.1}", stage.duration));
        }
        t.row(row);
    }
    let mut row = vec![
        "bestfit".to_owned(),
        format!("{:.1}", bestfit.total_runtime),
    ];
    for stage in &bestfit.stages {
        row.push(format!("{:.1}", stage.duration));
    }
    t.row(row);
    body.push_str(&format!("{}:\n", kind.name()));
    body.push_str(&t.render());
    let default = sweep[0].1.total_runtime;
    let best = sweep
        .iter()
        .map(|(_, r)| r.total_runtime)
        .fold(f64::INFINITY, f64::min);
    body.push_str(&format!(
        "best static vs default: -{:.1}%   bestfit vs default: -{:.1}%\n\n",
        (1.0 - best / default) * 100.0,
        (1.0 - bestfit.total_runtime / default) * 100.0,
    ));
}

/// Renders Figure 2.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    render(WorkloadKind::Terasort, &mut body);
    render(WorkloadKind::PageRank, &mut body);
    ExperimentOutput {
        id: "fig2",
        artefact: "Figure 2",
        title: "Runtime effect of the static solution on Terasort and PageRank",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terasort_has_interior_optimum() {
        let (sweep, bestfit) = sweep_with_bestfit(WorkloadKind::Terasort);
        let default = sweep[0].1.total_runtime;
        let best = sweep
            .iter()
            .map(|(_, r)| r.total_runtime)
            .fold(f64::INFINITY, f64::min);
        // Paper: 39.35 % reduction at the best static setting.
        let gain = 1.0 - best / default;
        assert!(
            (0.25..0.70).contains(&gain),
            "terasort static gain {gain:.2} out of band"
        );
        // BestFit is at least as good as any single setting.
        assert!(bestfit.total_runtime <= best * 1.05);
        // 2 threads is NOT the optimum (interior peak).
        let two = sweep.last().unwrap();
        assert_eq!(two.0, 2);
        assert!(two.1.total_runtime > best * 1.2);
    }

    #[test]
    fn pagerank_static_gain_is_modest() {
        // Paper: 19.02 % at the best static setting — far below Terasort,
        // because static tuning cannot reach the shuffle stages (L2).
        let (sweep, _) = sweep_with_bestfit(WorkloadKind::PageRank);
        let default = sweep[0].1.total_runtime;
        let best = sweep
            .iter()
            .map(|(_, r)| r.total_runtime)
            .fold(f64::INFINITY, f64::min);
        let gain = 1.0 - best / default;
        assert!((0.05..0.35).contains(&gain), "pagerank gain {gain:.2}");
    }

    #[test]
    fn pagerank_shuffle_stages_unaffected_by_static_sweep() {
        let (sweep, _) = sweep_with_bestfit(WorkloadKind::PageRank);
        // Middle stages (1..=4) keep the same duration across the sweep.
        let reference: Vec<f64> = sweep[0].1.stages[1..5].iter().map(|s| s.duration).collect();
        for (_, report) in &sweep[1..] {
            for (i, stage) in report.stages[1..5].iter().enumerate() {
                assert!(
                    (stage.duration - reference[i]).abs() < 1e-6,
                    "static sweep must not touch generic stages"
                );
            }
        }
    }
}
