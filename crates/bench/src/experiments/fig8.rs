//! Figure 8: performance of the dynamic solution compared to the default
//! and the static BestFit.

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{run_policy, PolicyRun, TextTable};

/// The four panels of Figure 8.
pub const APPS: [WorkloadKind; 4] = [
    WorkloadKind::Terasort,
    WorkloadKind::PageRank,
    WorkloadKind::Aggregation,
    WorkloadKind::Join,
];

/// Runs the three-policy comparison for one workload.
pub fn compare(kind: WorkloadKind) -> Vec<PolicyRun> {
    let cfg = EngineConfig::four_node_hdd();
    let w = kind.build();
    run_policy(&cfg, &w)
}

/// Percentage runtime reduction of `candidate` vs `reference`.
pub fn reduction(reference: f64, candidate: f64) -> f64 {
    (1.0 - candidate / reference) * 100.0
}

fn render(kind: WorkloadKind, body: &mut String) {
    let runs = compare(kind);
    let stages = runs[0].report.stages.len();
    let mut header = vec![
        "policy".to_owned(),
        "runtime (s)".to_owned(),
        "vs default".to_owned(),
    ];
    for s in 0..stages {
        header.push(format!("s{s} threads"));
    }
    let default = runs[0].report.total_runtime;
    let mut t = TextTable::new(header);
    for run in &runs {
        let mut row = vec![
            run.policy.clone(),
            format!("{:.1}", run.report.total_runtime),
            format!("{:+.1}%", -reduction(default, run.report.total_runtime)),
        ];
        for stage in &run.report.stages {
            row.push(format!("{}/{}", stage.threads_used, run.report.total_cores));
        }
        t.row(row);
    }
    body.push_str(&format!("{}:\n{}\n", kind.name(), t.render()));
}

/// Renders Figure 8.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    for kind in APPS {
        render(kind, &mut body);
    }
    ExperimentOutput {
        id: "fig8",
        artefact: "Figure 8",
        title: "Default vs static BestFit vs dynamic (runtime and per-stage threads)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtimes(kind: WorkloadKind) -> (f64, f64, f64) {
        let runs = compare(kind);
        (
            runs[0].report.total_runtime,
            runs[1].report.total_runtime,
            runs[2].report.total_runtime,
        )
    }

    #[test]
    fn terasort_bestfit_beats_dynamic_beats_default() {
        // Paper: -47.5 % (bestfit) and -34.4 % (dynamic): the dynamic
        // approach pays for exploration in all-I/O jobs.
        let (default, bestfit, dynamic) = runtimes(WorkloadKind::Terasort);
        let bf = reduction(default, bestfit);
        let dy = reduction(default, dynamic);
        assert!((30.0..70.0).contains(&bf), "bestfit {bf:.1}%");
        assert!((20.0..60.0).contains(&dy), "dynamic {dy:.1}%");
        assert!(bestfit < dynamic, "bestfit must win on Terasort");
    }

    #[test]
    fn pagerank_dynamic_beats_bestfit() {
        // Paper: dynamic -54.1 % vs default and -45.2 % vs bestfit, because
        // only the dynamic solution reaches the shuffle stages.
        let (default, bestfit, dynamic) = runtimes(WorkloadKind::PageRank);
        let bf = reduction(default, bestfit);
        let dy = reduction(default, dynamic);
        assert!((5.0..30.0).contains(&bf), "bestfit {bf:.1}%");
        assert!((25.0..65.0).contains(&dy), "dynamic {dy:.1}%");
        assert!(dynamic < bestfit, "dynamic must win on PageRank");
    }

    #[test]
    fn sql_gains_are_small() {
        // Paper: +6.83 % (Aggregation) and +2.54 % (Join) for the dynamic
        // solution; static shows no benefit.
        let (default, bestfit, dynamic) = runtimes(WorkloadKind::Aggregation);
        assert!(reduction(default, bestfit).abs() < 10.0);
        let dy = reduction(default, dynamic);
        assert!((-10.0..35.0).contains(&dy), "aggregation dynamic {dy:.1}%");

        let (default, bestfit, dynamic) = runtimes(WorkloadKind::Join);
        assert!(reduction(default, bestfit).abs() < 10.0);
        let dy = reduction(default, dynamic);
        assert!(dy.abs() < 15.0, "join dynamic {dy:.1}%");
    }

    #[test]
    fn dynamic_reports_tuned_thread_counts() {
        let runs = compare(WorkloadKind::PageRank);
        let dynamic = &runs[2].report;
        // At least the heavy shuffle stages end below the default.
        let tuned_stages = dynamic
            .stages
            .iter()
            .filter(|s| s.threads_used < dynamic.total_cores)
            .count();
        assert!(tuned_stages >= 3, "only {tuned_stages} stages tuned");
    }
}
