//! Figure 10: effect of HDDs vs SSDs on the static solution (Terasort).

use sae_dag::{EngineConfig, JobReport};
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{static_sweep, TextTable};

/// Static sweep on the given device config.
pub fn device_sweep(cfg: &EngineConfig) -> Vec<(usize, JobReport)> {
    let w = WorkloadKind::Terasort.build();
    static_sweep(cfg, &w)
        .into_iter()
        .map(|p| (p.io_threads.unwrap_or(32), p.report))
        .collect()
}

/// Per-stage best thread count from a sweep.
pub fn per_stage_best(sweep: &[(usize, JobReport)]) -> Vec<usize> {
    let stages = sweep[0].1.stages.len();
    (0..stages)
        .map(|s| {
            sweep
                .iter()
                .min_by(|a, b| {
                    a.1.stages[s]
                        .duration
                        .partial_cmp(&b.1.stages[s].duration)
                        .unwrap()
                })
                .unwrap()
                .0
        })
        .collect()
}

fn render(label: &str, cfg: &EngineConfig, body: &mut String) {
    let sweep = device_sweep(cfg);
    let mut t = TextTable::new(vec![
        "io_threads".to_owned(),
        "runtime (s)".to_owned(),
        "s0 (s)".to_owned(),
        "s1 (s)".to_owned(),
        "s2 (s)".to_owned(),
    ]);
    for (threads, report) in &sweep {
        t.row(vec![
            threads.to_string(),
            format!("{:.1}", report.total_runtime),
            format!("{:.1}", report.stages[0].duration),
            format!("{:.1}", report.stages[1].duration),
            format!("{:.1}", report.stages[2].duration),
        ]);
    }
    body.push_str(&format!(
        "{label}:\n{}per-stage best: {:?}\n\n",
        t.render(),
        per_stage_best(&sweep)
    ));
}

/// Renders Figure 10.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    render("HDD", &EngineConfig::four_node_hdd(), &mut body);
    render("SSD", &EngineConfig::four_node_ssd(), &mut body);
    ExperimentOutput {
        id: "fig10",
        artefact: "Figure 10",
        title: "Static solution on HDD vs SSD (Terasort)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_read_stage_prefers_the_default() {
        // Paper §6.3: "the first stage ... the default number of threads
        // (32) performs best for SSD unlike the HDD version".
        let sweep = device_sweep(&EngineConfig::four_node_ssd());
        let best = per_stage_best(&sweep);
        assert_eq!(best[0], 32, "SSD stage 0 best: {best:?}");
    }

    #[test]
    fn hdd_read_stage_prefers_few_threads() {
        let sweep = device_sweep(&EngineConfig::four_node_hdd());
        let best = per_stage_best(&sweep);
        assert!(best[0] <= 16, "HDD stage 0 best: {best:?}");
    }

    #[test]
    fn ssd_write_stage_prefers_fewer_than_default() {
        // Erase-block overhead: the mixed/write stages peak below 32.
        let sweep = device_sweep(&EngineConfig::four_node_ssd());
        let best = per_stage_best(&sweep);
        assert!(best[2] < 32, "SSD stage 2 best: {best:?}");
    }

    #[test]
    fn static_gain_smaller_on_ssd() {
        // Paper: 20.23 % (SSD) vs 47.48 % (HDD).
        let gain = |cfg: &EngineConfig| {
            let sweep = device_sweep(cfg);
            let default = sweep[0].1.total_runtime;
            let best = sweep
                .iter()
                .map(|(_, r)| r.total_runtime)
                .fold(f64::INFINITY, f64::min);
            1.0 - best / default
        };
        let hdd = gain(&EngineConfig::four_node_hdd());
        let ssd = gain(&EngineConfig::four_node_ssd());
        assert!(
            ssd < hdd,
            "SSD gain {ssd:.2} must be below HDD gain {hdd:.2}"
        );
    }
}
