//! Figure 5: average disk utilisation across thread counts in the I/O
//! stages of different applications.

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{fixed_thread_run, TextTable, SWEEP_THREADS};

/// The panels of Figure 5: `(workload, stage index)`.
pub const PANELS: [(WorkloadKind, usize); 6] = [
    (WorkloadKind::Terasort, 0),
    (WorkloadKind::Terasort, 1),
    (WorkloadKind::Terasort, 2),
    (WorkloadKind::PageRank, 0),
    (WorkloadKind::Aggregation, 0),
    (WorkloadKind::Join, 0),
];

/// Average disk utilisation (%) of `stage` for each sweep thread count.
pub fn utilisation_sweep(kind: WorkloadKind, stage: usize) -> Vec<(usize, f64)> {
    let cfg = EngineConfig::four_node_hdd();
    let w = kind.build();
    SWEEP_THREADS
        .iter()
        .map(|&threads| {
            let report = fixed_thread_run(&cfg, &w, threads);
            (threads, report.stages[stage].avg_disk_util * 100.0)
        })
        .collect()
}

/// Renders Figure 5.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    for (kind, stage) in PANELS {
        let sweep = utilisation_sweep(kind, stage);
        let peak = sweep
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        let mut t = TextTable::new(vec!["threads", "avg disk util %"]);
        for (threads, util) in &sweep {
            let marker = if *threads == peak { " <- highest" } else { "" };
            t.row(vec![threads.to_string(), format!("{util:.1}{marker}")]);
        }
        body.push_str(&format!(
            "{}, stage {stage}:\n{}\n",
            kind.name(),
            t.render()
        ));
    }
    ExperimentOutput {
        id: "fig5",
        artefact: "Figure 5",
        title: "Average disk utilisation per thread count (I/O stages)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terasort_io_stage_utilisation_peaks_at_interior_count() {
        let sweep = utilisation_sweep(WorkloadKind::Terasort, 2);
        let peak = sweep
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (4..=16).contains(&peak),
            "expected interior utilisation peak, got {peak}"
        );
    }

    #[test]
    fn sql_scan_utilisation_drops_with_fewer_threads() {
        // Paper: "disk utilization in the read stage is significantly lower
        // when fewer threads are used" for Aggregation and Join.
        for kind in [WorkloadKind::Aggregation, WorkloadKind::Join] {
            let sweep = utilisation_sweep(kind, 0);
            let at_32 = sweep[0].1;
            let at_2 = sweep.last().unwrap().1;
            assert!(
                at_2 < at_32 * 0.8,
                "{}: util at 2 threads ({at_2:.1}) not much below 32 ({at_32:.1})",
                kind.name()
            );
        }
    }
}
