//! Figure 6: thread counts selected by the dynamic solution, per stage and
//! per executor (Terasort).

use sae_dag::{EngineConfig, JobReport};
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{run_workload, TextTable};

/// Runs Terasort adaptively on a cluster with realistic per-node disk
/// variability (the effect Figure 3 measures) and returns the report.
pub fn adaptive_terasort() -> JobReport {
    let cfg = EngineConfig::four_node_hdd()
        .with_variability(sae_storage::VariabilityConfig::das5())
        .with_seed(2); // includes one slow-disk node
    let w = WorkloadKind::Terasort.build();
    run_workload(&cfg, &w, cfg.adaptive_policy())
}

/// Renders Figure 6.
pub fn run() -> ExperimentOutput {
    let report = adaptive_terasort();
    let mut header = vec!["stage".to_owned()];
    for e in 0..report.nodes {
        header.push(format!("executor {e}"));
    }
    let mut t = TextTable::new(header);
    for stage in &report.stages {
        let mut row = vec![stage.stage_id.to_string()];
        for e in &stage.executors {
            row.push(format!("{} {:?}", e.final_threads, e.decisions));
        }
        t.row(row);
    }
    let mut body = t.render();
    body.push_str("(cell: final thread count, followed by the decision trace)\n");
    ExperimentOutput {
        id: "fig6",
        artefact: "Figure 6",
        title: "Thread counts selected by the dynamic solution per stage/executor",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_executor_starts_at_c_min_and_stays_in_bounds() {
        let report = adaptive_terasort();
        for stage in &report.stages {
            for e in &stage.executors {
                assert_eq!(e.decisions[0], 2, "climb starts at c_min");
                for &d in &e.decisions {
                    assert!((2..=32).contains(&d));
                }
            }
        }
    }

    #[test]
    fn selected_counts_differ_from_default() {
        let report = adaptive_terasort();
        let any_tuned = report
            .stages
            .iter()
            .flat_map(|s| &s.executors)
            .any(|e| e.final_threads < 32);
        assert!(any_tuned, "dynamic solution never moved off the default");
    }
}
