//! One module per paper artefact (tables and figures).
//!
//! Every module exposes `run() -> ExperimentOutput` producing the
//! rows/series the paper reports, plus structured helpers used by the
//! integration tests. `exp_all` (see `src/bin/exp_all.rs`) stitches the
//! outputs into `EXPERIMENTS.md`.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod probe;
pub mod table1;
pub mod table2;

/// An experiment's rendered output plus its identity.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Stable id, e.g. `"fig8"`.
    pub id: &'static str,
    /// Paper artefact, e.g. `"Figure 8"`.
    pub artefact: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Rendered body (tables/series).
    pub body: String,
}

impl std::fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {} — {}", self.artefact, self.title)?;
        writeln!(f)?;
        writeln!(f, "```text\n{}```", self.body)
    }
}

/// Every experiment, in paper order.
pub const ALL: [fn() -> ExperimentOutput; 14] = [
    table1::run,
    fig1::run,
    table2::run,
    fig2::run,
    fig3::run,
    fig4::run,
    fig5::run,
    fig6::run,
    fig7::run,
    fig8::run,
    fig9::run,
    fig10::run,
    fig11::run,
    fig12::run,
];

/// Runs every experiment, fanned out across threads, results in paper
/// order. Each experiment is deterministic, so the output is identical to
/// running them serially.
pub fn run_all() -> Vec<ExperimentOutput> {
    crate::parallel::par_map_indexed(ALL.len(), |i| ALL[i]())
}
