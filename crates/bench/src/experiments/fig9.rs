//! Figure 9: scalability of the dynamic solution (Terasort, 4 vs 16
//! nodes with proportionally scaled input).

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{run_policy, TextTable};

/// Runtimes per policy for a cluster of `nodes` nodes.
pub fn scaled_runtimes(nodes: usize) -> Vec<(String, f64)> {
    let cfg = EngineConfig::four_node_hdd().with_nodes(nodes);
    let w = WorkloadKind::Terasort.build_scaled(nodes as f64 / 4.0);
    run_policy(&cfg, &w)
        .into_iter()
        .map(|r| (r.policy, r.report.total_runtime))
        .collect()
}

/// Renders Figure 9.
pub fn run() -> ExperimentOutput {
    let mut t = TextTable::new(vec!["nodes", "policy", "runtime (s)"]);
    for nodes in [4usize, 16] {
        for (policy, runtime) in scaled_runtimes(nodes) {
            t.row(vec![nodes.to_string(), policy, format!("{runtime:.1}")]);
        }
    }
    let mut body = t.render();
    body.push_str(
        "\nKnown deviation: the paper's default configuration degrades\n\
         super-linearly at 16 nodes (~2.9x); in this substrate the tuned\n\
         policies reproduce their flat scaling, but the default stays\n\
         roughly flat too — per-node disk pressure, the dominant cost in\n\
         the fluid model, is scale-invariant. See EXPERIMENTS.md.\n",
    );
    ExperimentOutput {
        id: "fig9",
        artefact: "Figure 9",
        title: "Scalability: Terasort on 4 vs 16 nodes (input scaled 4x)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_policies_scale_flat() {
        let four = scaled_runtimes(4);
        let sixteen = scaled_runtimes(16);
        for (a, b) in four.iter().zip(&sixteen) {
            assert_eq!(a.0, b.0);
            if a.0 != "default" {
                let ratio = b.1 / a.1;
                assert!(
                    (0.8..1.25).contains(&ratio),
                    "{} does not scale flat: {ratio:.2}",
                    a.0
                );
            }
        }
    }

    #[test]
    fn tuned_policies_beat_default_at_scale() {
        let sixteen = scaled_runtimes(16);
        let default = sixteen[0].1;
        for (policy, runtime) in &sixteen[1..] {
            assert!(
                *runtime < default * 0.7,
                "{policy} not clearly better at 16 nodes"
            );
        }
    }
}
