//! Calibration probe (not a paper artefact): prints the static sweep for a
//! workload so model constants can be tuned.

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::{static_sweep, TextTable};

/// Runs the probe and returns the rendered table.
pub fn run(kind: WorkloadKind, scale: f64) -> String {
    let cfg = EngineConfig::four_node_hdd();
    let workload = kind.build_scaled(scale);
    let points = static_sweep(&cfg, &workload);
    let stages = workload.job.stages.len();
    let mut header = vec!["io_threads".to_owned(), "total(s)".to_owned()];
    for s in 0..stages {
        header.push(format!("s{s}(s)"));
        header.push(format!("s{s} cpu%"));
        header.push(format!("s{s} iow%"));
        header.push(format!("s{s} dutil%"));
    }
    let mut t = TextTable::new(header);
    for p in &points {
        let mut row = vec![
            format!("{:?}", p.io_threads),
            format!("{:.1}", p.report.total_runtime),
        ];
        for st in &p.report.stages {
            row.push(format!("{:.1}", st.duration));
            row.push(format!("{:.0}", st.avg_cpu_busy * 100.0));
            row.push(format!("{:.0}", st.avg_cpu_iowait * 100.0));
            row.push(format!("{:.0}", st.avg_disk_util * 100.0));
        }
        t.row(row);
    }
    t.render()
}

/// Policy-comparison probe: default vs static-bestfit vs dynamic.
pub fn run_policies(kind: WorkloadKind, scale: f64) -> String {
    let cfg = EngineConfig::four_node_hdd();
    let workload = kind.build_scaled(scale);
    let runs = crate::run_policy(&cfg, &workload);
    let stages = workload.job.stages.len();
    let mut header = vec!["policy".to_owned(), "total(s)".to_owned()];
    for s in 0..stages {
        header.push(format!("s{s}(s)"));
        header.push(format!("s{s} thr"));
    }
    let mut t = TextTable::new(header);
    for r in &runs {
        let mut row = vec![r.policy.clone(), format!("{:.1}", r.report.total_runtime)];
        for st in &r.report.stages {
            row.push(format!("{:.1}", st.duration));
            row.push(format!("{}/{}", st.threads_used, r.report.total_cores));
        }
        t.row(row);
    }
    t.render()
}
