//! Figure 4: the static solution does not help the SQL applications.

use sae_workloads::WorkloadKind;

use crate::experiments::fig2::sweep_with_bestfit;
use crate::experiments::ExperimentOutput;
use crate::TextTable;

fn render(kind: WorkloadKind, body: &mut String) {
    let (sweep, bestfit) = sweep_with_bestfit(kind);
    let mut t = TextTable::new(vec![
        "io_threads".to_owned(),
        "runtime (s)".to_owned(),
        "stage 0 (s)".to_owned(),
    ]);
    for (threads, report) in &sweep {
        t.row(vec![
            threads.to_string(),
            format!("{:.1}", report.total_runtime),
            format!("{:.1}", report.stages[0].duration),
        ]);
    }
    t.row(vec![
        "bestfit".to_owned(),
        format!("{:.1}", bestfit.total_runtime),
        format!("{:.1}", bestfit.stages[0].duration),
    ]);
    body.push_str(&format!("{}:\n{}\n", kind.name(), t.render()));
}

/// Renders Figure 4.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    render(WorkloadKind::Aggregation, &mut body);
    render(WorkloadKind::Join, &mut body);
    body.push_str(
        "The scan stages perform additional computation (68% / 46% CPU), so\n\
         throttling threads starves the CPU: the default is optimal.\n",
    );
    ExperimentOutput {
        id: "fig4",
        artefact: "Figure 4",
        title: "Static solution on SQL applications (no benefit, L3)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_wins_for_both_sql_workloads() {
        for kind in [WorkloadKind::Aggregation, WorkloadKind::Join] {
            let (sweep, _) = sweep_with_bestfit(kind);
            let default = sweep[0].1.total_runtime;
            for (threads, report) in &sweep[1..] {
                assert!(
                    report.total_runtime >= default * 0.97,
                    "{}: {threads} threads beat the default ({} vs {default})",
                    kind.name(),
                    report.total_runtime
                );
            }
        }
    }

    #[test]
    fn throttling_hurts_the_scan_stage_badly() {
        let (sweep, _) = sweep_with_bestfit(WorkloadKind::Join);
        let default_s0 = sweep[0].1.stages[0].duration;
        let two_s0 = sweep.last().unwrap().1.stages[0].duration;
        assert!(two_s0 > default_s0 * 2.0, "{two_s0} vs {default_s0}");
    }
}
