//! Figure 7: effect of the thread count on epoll wait time, I/O throughput
//! and the congestion index (Terasort, per stage).

use sae_dag::EngineConfig;
use sae_workloads::WorkloadKind;

use crate::experiments::ExperimentOutput;
use crate::{fixed_thread_run, TextTable};

/// One whole-stage measurement at a fixed thread count (executor 0, as in
/// the paper's "one of the executors").
#[derive(Debug, Clone, Copy)]
pub struct StagePoint {
    /// Threads per executor.
    pub threads: usize,
    /// Accumulated epoll wait `ε` in seconds.
    pub epoll_wait: f64,
    /// I/O throughput `µ` in MB/s.
    pub throughput: f64,
    /// Congestion index `ζ = ε/µ`.
    pub zeta: f64,
}

/// Sweeps the thread counts of Figure 7 for one Terasort stage.
pub fn stage_sweep(stage: usize) -> Vec<StagePoint> {
    let cfg = EngineConfig::four_node_hdd();
    let w = WorkloadKind::Terasort.build();
    [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&threads| {
            let report = fixed_thread_run(&cfg, &w, threads);
            let st = &report.stages[stage];
            let e = &st.executors[0];
            let throughput = e.io_bytes / st.duration;
            StagePoint {
                threads,
                epoll_wait: e.epoll_wait,
                throughput,
                zeta: if throughput > 0.0 {
                    e.epoll_wait / throughput
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// The thread count minimising ζ in a sweep.
pub fn selected(sweep: &[StagePoint]) -> usize {
    sweep
        .iter()
        .min_by(|a, b| a.zeta.partial_cmp(&b.zeta).unwrap())
        .expect("non-empty sweep")
        .threads
}

/// Renders Figure 7.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    for stage in 0..3 {
        let sweep = stage_sweep(stage);
        let pick = selected(&sweep);
        let mut t = TextTable::new(vec![
            "threads",
            "epoll wait (s)",
            "I/O throughput (MB/s)",
            "congestion index",
        ]);
        for p in &sweep {
            let marker = if p.threads == pick {
                " <- selected"
            } else {
                ""
            };
            t.row(vec![
                p.threads.to_string(),
                format!("{:.1}", p.epoll_wait),
                format!("{:.1}", p.throughput),
                format!("{:.4}{marker}", p.zeta),
            ]);
        }
        body.push_str(&format!(
            "Terasort stage {stage} (executor 0):\n{}\n",
            t.render()
        ));
    }
    ExperimentOutput {
        id: "fig7",
        artefact: "Figure 7",
        title: "ε, µ and ζ vs thread count (Terasort stages, one executor)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_wait_grows_with_thread_count() {
        for stage in 0..3 {
            let sweep = stage_sweep(stage);
            assert!(
                sweep.last().unwrap().epoll_wait > sweep[0].epoll_wait,
                "stage {stage}: ε must grow from 2 to 32 threads"
            );
        }
    }

    #[test]
    fn throughput_peaks_at_interior_count() {
        for stage in 0..3 {
            let sweep = stage_sweep(stage);
            let peak = sweep
                .iter()
                .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).unwrap())
                .unwrap()
                .threads;
            assert!(
                (4..=16).contains(&peak),
                "stage {stage}: µ peak at {peak} threads"
            );
        }
    }

    #[test]
    fn zeta_minimum_is_interior() {
        for stage in 0..3 {
            let sweep = stage_sweep(stage);
            let pick = selected(&sweep);
            assert!(
                (4..=16).contains(&pick),
                "stage {stage}: ζ minimum at {pick}"
            );
        }
    }

    #[test]
    fn zeta_selection_tracks_fast_stage_times() {
        // The ζ-selected count should be close in runtime to the sweep's
        // true best (within 25%).
        let cfg = sae_dag::EngineConfig::four_node_hdd();
        let w = sae_workloads::WorkloadKind::Terasort.build();
        for stage in 0..3 {
            let sweep = stage_sweep(stage);
            let pick = selected(&sweep);
            let times: Vec<(usize, f64)> = [2usize, 4, 8, 16, 32]
                .iter()
                .map(|&t| {
                    let r = crate::fixed_thread_run(&cfg, &w, t);
                    (t, r.stages[stage].duration)
                })
                .collect();
            let best = times.iter().map(|t| t.1).fold(f64::INFINITY, f64::min);
            let picked = times.iter().find(|t| t.0 == pick).unwrap().1;
            assert!(
                picked <= best * 1.25,
                "stage {stage}: picked {pick} ({picked:.1}s) vs best {best:.1}s"
            );
        }
    }
}
