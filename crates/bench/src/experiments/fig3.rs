//! Figure 3: I/O performance variability in the DAS-5 cluster.

use sae_storage::{DeviceProfile, DiskClass, NodeVariability, VariabilityConfig};

use crate::experiments::ExperimentOutput;
use crate::TextTable;

/// The number of nodes shown in the paper's Figure 3.
pub const NODES: usize = 44;
/// Volume read/written per node (30 GB, as in the paper).
pub const VOLUME_MB: f64 = 30.0 * 1024.0;

/// Per-node `(read_seconds, write_seconds)` for reading/writing 30 GB
/// with 8 sequential-ish streams (a `dd`-style benchmark).
pub fn node_times(seed: u64) -> Vec<(f64, f64)> {
    let variability = NodeVariability::new(VariabilityConfig::das5(), seed);
    let hdd = DeviceProfile::hdd_7200();
    let streams = 8;
    let read_bw = hdd
        .bandwidth(&[(DiskClass::Read, streams)])
        .min(streams as f64 * hdd.per_stream_cap());
    let write_bw = hdd
        .bandwidth(&[(DiskClass::Write, streams)])
        .min(streams as f64 * hdd.per_stream_cap());
    (0..NODES)
        .map(|node| {
            let f = variability.speed_factor(node);
            (VOLUME_MB / (read_bw * f), VOLUME_MB / (write_bw * f))
        })
        .collect()
}

/// Renders Figure 3.
pub fn run() -> ExperimentOutput {
    let times = node_times(42);
    let mean_read = times.iter().map(|t| t.0).sum::<f64>() / times.len() as f64;
    let mean_write = times.iter().map(|t| t.1).sum::<f64>() / times.len() as f64;
    let mut t = TextTable::new(vec!["node", "read 30GB (s)", "write 30GB (s)"]);
    for (i, (r, w)) in times.iter().enumerate() {
        t.row(vec![
            format!("node{:03}", 303 + i),
            format!("{r:.1}"),
            format!("{w:.1}"),
        ]);
    }
    let mut body = t.render();
    body.push_str(&format!(
        "mean read: {mean_read:.1} s   mean write: {mean_write:.1} s\n"
    ));
    ExperimentOutput {
        id: "fig3",
        artefact: "Figure 3",
        title: "I/O performance variability across 44 identically specced nodes",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_slower_than_reads() {
        for (r, w) in node_times(42) {
            assert!(w > r);
        }
    }

    #[test]
    fn significant_spread_despite_identical_specs() {
        let times = node_times(42);
        let max = times.iter().map(|t| t.0).fold(0.0, f64::max);
        let min = times.iter().map(|t| t.0).fold(f64::INFINITY, f64::min);
        // Paper: some nodes take >2x the mean.
        assert!(max / min > 1.5, "spread {max}/{min}");
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(node_times(7), node_times(7));
        assert_ne!(node_times(7), node_times(8));
    }
}
