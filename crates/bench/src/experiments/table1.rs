//! Table 1: number of functional parameters in Spark, by category.

use sae_dag::ParameterCatalog;

use crate::experiments::ExperimentOutput;
use crate::TextTable;

/// Renders Table 1 from the Spark 2.4.2 reference catalog, plus this
/// engine's own catalog for comparison.
pub fn run() -> ExperimentOutput {
    let mut body = String::new();
    for (label, catalog) in [
        (
            "Spark 2.4.2 (paper's Table 1)",
            ParameterCatalog::spark_2_4_2(),
        ),
        ("sae engine", ParameterCatalog::engine()),
    ] {
        let mut t = TextTable::new(vec!["Category", "#Parameters"]);
        for (category, count) in catalog.table() {
            t.row(vec![category, count.to_string()]);
        }
        body.push_str(label);
        body.push('\n');
        body.push_str(&t.render());
        body.push('\n');
    }
    ExperimentOutput {
        id: "table1",
        artefact: "Table 1",
        title: "Number of functional parameters by category",
        body,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_spark_total() {
        let out = super::run();
        assert!(out.body.contains("Total"));
        assert!(out.body.contains("117"));
    }
}
