//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table.
///
/// # Examples
///
/// ```
/// use sae_bench::TextTable;
///
/// let mut t = TextTable::new(vec!["app", "runtime (s)"]);
/// t.row(vec!["terasort".into(), "1234.5".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("terasort"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     bb"));
        assert!(lines[2].starts_with("xxxx  y"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["only"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
