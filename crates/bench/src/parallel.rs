//! Deterministic scoped-thread fan-out for independent simulation runs.
//!
//! Every simulation in this crate is a pure function of its inputs (seeds
//! live inside `EngineConfig`/`Workload`), so independent runs can execute
//! on any thread without changing their results. The only thing
//! parallelism could perturb is *collection order* — so [`par_map_indexed`]
//! writes each result into a slot keyed by its input index and returns them
//! in input order, making the output bit-identical to a serial loop
//! regardless of worker count or scheduling.
//!
//! Worker count comes from [`worker_count`]: the `SAE_BENCH_THREADS`
//! environment variable when set (a value of `1` forces the serial path),
//! otherwise [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a fan-out may use.
///
/// Reads `SAE_BENCH_THREADS` on every call (cheap relative to a simulation
/// run) so tests can flip between serial and parallel execution.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("SAE_BENCH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..n` on up to [`worker_count`] scoped threads and
/// returns the results **in input order**.
///
/// Work is handed out through an atomic counter (dynamic load balancing —
/// simulation runs have very uneven durations), but each result lands in
/// the slot of its index, so the returned `Vec` is identical to
/// `(0..n).map(f).collect()` bit for bit. A panicking task propagates out
/// of the scope, same as in the serial loop.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

/// Maps `f` over a slice in parallel, results in input order.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Reverse sleep durations so later indices finish first.
        let out = par_map_indexed(16, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i * i
        });
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn slice_variant_preserves_order() {
        let items = vec!["a", "bb", "ccc"];
        assert_eq!(par_map_slice(&items, |s| s.len()), vec![1, 2, 3]);
    }
}
