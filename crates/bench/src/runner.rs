//! Shared run helpers for the experiments.

use sae_core::{BestFitTable, StaticPolicy, ThreadPolicy};
use sae_dag::{Engine, EngineConfig, JobReport};
use sae_workloads::Workload;

use crate::parallel::{par_map_indexed, par_map_slice};

/// The thread counts the paper sweeps in Figures 2, 4, 5, 10.
pub const SWEEP_THREADS: [usize; 5] = [32, 16, 8, 4, 2];

/// Runs `workload` under `policy` on `config` (with the workload's engine
/// requirements applied) and returns the report.
pub fn run_workload(config: &EngineConfig, workload: &Workload, policy: ThreadPolicy) -> JobReport {
    let cfg = workload.configure(config.clone());
    Engine::new(cfg, policy).run(&workload.job)
}

/// Shorthand: run with one of the named comparison policies of Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRun {
    /// Policy name (`"default"`, `"static-bestfit"`, `"dynamic"`, ...).
    pub policy: String,
    /// The run's report.
    pub report: JobReport,
}

/// Runs default / static-bestfit / dynamic for a workload — the three bars
/// of each Figure 8 panel. The best-fit table is derived by sweeping every
/// stage (the "hypothetical best combination", §6.1).
pub fn run_policy(config: &EngineConfig, workload: &Workload) -> Vec<PolicyRun> {
    // The sweep behind the best-fit table runs first (parallel inside);
    // the three head-to-head runs are independent of each other and fan
    // out too.
    let bestfit_table = derive_bestfit(config, workload);
    let names = ["default", "static-bestfit", "dynamic"];
    let reports = par_map_indexed(names.len(), |i| {
        let policy = match i {
            0 => ThreadPolicy::Default,
            1 => ThreadPolicy::BestFit(bestfit_table.clone()),
            _ => config.adaptive_policy(),
        };
        run_workload(config, workload, policy)
    });
    names
        .iter()
        .zip(reports)
        .map(|(name, report)| PolicyRun {
            policy: (*name).into(),
            report,
        })
        .collect()
}

/// One point of a static sweep: a fixed thread count applied to the I/O
/// stages (Figures 2 and 4) and the resulting runtime plus per-stage data.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticSweepPoint {
    /// Thread count for I/O stages (`None` = default in all stages).
    pub io_threads: Option<usize>,
    /// The run's report.
    pub report: JobReport,
}

/// Sweeps the static solution over [`SWEEP_THREADS`], plus the default.
pub fn static_sweep(config: &EngineConfig, workload: &Workload) -> Vec<StaticSweepPoint> {
    par_map_slice(&SWEEP_THREADS, |&threads| {
        let policy = if threads == config.node_spec.cores {
            ThreadPolicy::Default
        } else {
            ThreadPolicy::Static(StaticPolicy::new(threads))
        };
        StaticSweepPoint {
            io_threads: Some(threads),
            report: run_workload(config, workload, policy),
        }
    })
}

/// Runs `workload` with *every* stage pinned to `threads` per executor
/// (used for the whole-stage measurements behind Figures 5, 7 and 12).
pub fn fixed_thread_run(config: &EngineConfig, workload: &Workload, threads: usize) -> JobReport {
    let table: BestFitTable = (0..workload.job.stages.len())
        .map(|s| (s, threads))
        .collect();
    run_workload(config, workload, ThreadPolicy::BestFit(table))
}

/// Derives the per-stage BestFit table of the *static* solution: for every
/// stage the static tagger marks I/O, the thread count (from the sweep
/// grid) minimising that stage's duration. Generic stages stay at the
/// default — the static solution cannot reach them (limitation L2), which
/// is exactly why the dynamic solution wins on PageRank (Figure 8b).
pub fn derive_bestfit(config: &EngineConfig, workload: &Workload) -> BestFitTable {
    let stages = workload.job.stages.len();
    // One run per candidate count with the I/O stages pinned to it (the
    // runs are independent and fan out), then pick per-stage minima in
    // sweep order — stages are barriers, so per-stage timings compose.
    let reports = par_map_slice(&SWEEP_THREADS, |&threads| {
        run_workload(
            config,
            workload,
            ThreadPolicy::Static(StaticPolicy::new(threads)),
        )
    });
    let mut best: Vec<(usize, f64)> = vec![(config.node_spec.cores, f64::INFINITY); stages];
    for (&threads, report) in SWEEP_THREADS.iter().zip(&reports) {
        for (s, stage) in report.stages.iter().enumerate() {
            if stage.duration < best[s].1 {
                best[s] = (threads, stage.duration);
            }
        }
    }
    best.iter()
        .enumerate()
        .filter(|(s, _)| workload.job.stages[*s].kind() == sae_core::StageKind::Io)
        .map(|(s, &(t, _))| (s, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_workloads::WorkloadKind;

    fn tiny_terasort() -> Workload {
        WorkloadKind::Terasort.build_scaled(0.05)
    }

    #[test]
    fn static_sweep_covers_grid() {
        let cfg = EngineConfig::four_node_hdd();
        let points = static_sweep(&cfg, &tiny_terasort());
        assert_eq!(points.len(), SWEEP_THREADS.len());
        for p in &points {
            assert!(p.report.total_runtime > 0.0);
        }
    }

    #[test]
    fn bestfit_table_has_entry_per_stage() {
        let cfg = EngineConfig::four_node_hdd();
        let table = derive_bestfit(&cfg, &tiny_terasort());
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn policy_comparison_produces_three_runs() {
        let cfg = EngineConfig::four_node_hdd();
        let runs = run_policy(&cfg, &tiny_terasort());
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].policy, "default");
        assert_eq!(runs[2].policy, "dynamic");
    }
}
