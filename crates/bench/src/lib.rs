//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment lives in [`experiments`] and is runnable through a
//! dedicated binary (`cargo run -p sae-bench --release --bin exp_fig8`) or
//! all at once (`--bin exp_all`). Binaries print the same rows/series the
//! paper reports; `EXPERIMENTS.md` is generated from their output.
//!
//! The harness intentionally reports *shapes* (who wins, by what factor,
//! where the crossovers fall) — absolute seconds differ from the paper's
//! DAS-5 testbed since the substrate is a simulator (see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;
mod runner;
mod table;

pub use parallel::{par_map_indexed, par_map_slice};
pub use runner::{
    derive_bestfit, fixed_thread_run, run_policy, run_workload, static_sweep, PolicyRun,
    StaticSweepPoint, SWEEP_THREADS,
};
pub use table::TextTable;
