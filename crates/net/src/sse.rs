//! Sans-io chunked `Transfer-Encoding` **responses** and Server-Sent
//! Events (SSE) framing — the streaming half of the control plane.
//!
//! [`crate::http`] deliberately rejects chunked *requests* (501): job
//! submissions are small and `Content-Length`-framed. Responses are a
//! different story — `sae-server`'s `/events` endpoints push telemetry for
//! the lifetime of a connection, so their length is unknowable up front.
//! This module provides the encoding side the server's reactor writes
//! ([`StreamEncoder`]), the SSE frame vocabulary layered on top
//! ([`SseFrame`]), and the matching sans-io decoders ([`ChunkedDecoder`],
//! [`SseParser`]) that test harnesses, the bench load generator, and the
//! `sae-top` dashboard consume.
//!
//! Everything here is pure byte-shuffling in the tradition of the
//! request parser: no I/O, no panics on arbitrary input, truncation is
//! "need more bytes" rather than an error, and re-chunking is invisible —
//! a stream split at any byte boundary reassembles identically.
//!
//! # Examples
//!
//! ```
//! use sae_net::sse::{ChunkedDecoder, SseFrame, SseParser, StreamEncoder};
//!
//! let mut enc = StreamEncoder::sse(200);
//! let mut wire = Vec::new();
//! enc.head(&mut wire);
//! enc.frame(
//!     &SseFrame::new("{\"job\":1}").with_id("7").with_event("journal"),
//!     &mut wire,
//! );
//! enc.finish(&mut wire);
//!
//! // The receiving side: strip the chunked framing, then parse frames.
//! let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
//! let mut chunks = ChunkedDecoder::new();
//! chunks.extend(&wire[head_end..]);
//! let mut frames = SseParser::new();
//! while let Some(payload) = chunks.next_chunk().unwrap() {
//!     frames.extend(&payload);
//! }
//! let frame = frames.next_frame().unwrap();
//! assert_eq!(frame.id.as_deref(), Some("7"));
//! assert_eq!(frame.event.as_deref(), Some("journal"));
//! assert_eq!(frame.data, "{\"job\":1}");
//! ```

use crate::http::{status_reason, HttpError};

/// Upper bound on a single chunk's declared size. Far above anything the
/// server emits (SSE frames are small JSON objects); a larger declaration
/// is a corrupt or hostile size line and is rejected before allocation.
pub const MAX_CHUNK_LEN: usize = 4 * 1024 * 1024;

/// Upper bound on one SSE frame's accumulated size in [`SseParser`].
pub const MAX_SSE_FRAME: usize = 1024 * 1024;

/// The `Content-Type` of an SSE stream.
pub const SSE_CONTENT_TYPE: &str = "text/event-stream";

/// Encoder for one streaming (chunked) HTTP/1.1 response.
///
/// Usage is `head` once, then any number of `chunk`/`frame` calls, then
/// `finish`. The encoder is sans-io: every method appends bytes to a
/// caller-owned buffer, which is what lets the server's reactor splice
/// stream output into the same per-connection write queues (and the same
/// high-water backpressure) that wire frames use.
#[derive(Debug, Clone)]
pub struct StreamEncoder {
    status: u16,
    content_type: &'static str,
    headers: Vec<(String, String)>,
}

impl StreamEncoder {
    /// An encoder for a chunked response with `content_type`.
    pub fn new(status: u16, content_type: &'static str) -> Self {
        Self {
            status,
            content_type,
            headers: Vec::new(),
        }
    }

    /// An encoder for a Server-Sent-Events response: `text/event-stream`,
    /// `Cache-Control: no-cache` (intermediaries must not buffer or replay
    /// a live feed).
    pub fn sse(status: u16) -> Self {
        let mut enc = Self::new(status, "text/event-stream");
        enc.headers
            .push(("Cache-Control".to_string(), "no-cache".to_string()));
        enc
    }

    /// Adds an extra response header (emitted by the next [`head`] call).
    ///
    /// [`head`]: StreamEncoder::head
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Appends the response head: status line, headers,
    /// `Transfer-Encoding: chunked`, and **no** `Content-Length` — the
    /// body's length is open-ended by construction.
    pub fn head(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status,
                status_reason(self.status)
            )
            .as_bytes(),
        );
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
    }

    /// Appends one data chunk: `{len:x}\r\n{data}\r\n`. Empty payloads are
    /// skipped — a zero-length chunk would terminate the stream.
    pub fn chunk(&self, data: &[u8], out: &mut Vec<u8>) {
        encode_chunk(data, out);
    }

    /// Encodes `frame` as SSE wire text and appends it as one chunk.
    pub fn frame(&self, frame: &SseFrame, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(frame.data.len() + 32);
        frame.encode(&mut payload);
        encode_chunk(&payload, out);
    }

    /// Appends the terminal zero-length chunk, ending the response.
    pub fn finish(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"0\r\n\r\n");
    }
}

/// Appends one chunk of a chunked body: `{len:x}\r\n{data}\r\n`.
/// Empty data is skipped (a zero-length chunk is the stream terminator).
pub fn encode_chunk(data: &[u8], out: &mut Vec<u8>) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// One Server-Sent-Events frame: optional `id` and `event` lines plus the
/// `data` payload. Multi-line data encodes as one `data:` line per line,
/// which the parser on the far side rejoins — the SSE wire format's way
/// of carrying newlines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SseFrame {
    /// The frame's `id:` field — what a reconnecting client echoes back
    /// in `Last-Event-ID`.
    pub id: Option<String>,
    /// The frame's `event:` field (event type).
    pub event: Option<String>,
    /// The payload (joined from `data:` lines).
    pub data: String,
}

impl SseFrame {
    /// A frame carrying `data` with no id or event type.
    pub fn new(data: impl Into<String>) -> Self {
        Self {
            id: None,
            event: None,
            data: data.into(),
        }
    }

    /// Sets the `id:` field. Carriage returns and newlines are stripped —
    /// they would break framing.
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(sanitize_field(&id.into()));
        self
    }

    /// Sets the `event:` field, sanitized like [`SseFrame::with_id`].
    pub fn with_event(mut self, event: impl Into<String>) -> Self {
        self.event = Some(sanitize_field(&event.into()));
        self
    }

    /// Appends the frame's SSE wire text: `id:`/`event:` lines, one
    /// `data:` line per payload line, and the blank-line terminator.
    pub fn encode(&self, out: &mut Vec<u8>) {
        if let Some(id) = &self.id {
            out.extend_from_slice(b"id: ");
            out.extend_from_slice(id.as_bytes());
            out.push(b'\n');
        }
        if let Some(event) = &self.event {
            out.extend_from_slice(b"event: ");
            out.extend_from_slice(event.as_bytes());
            out.push(b'\n');
        }
        // "".lines() yields nothing, but an SSE frame with no data line is
        // legal and dispatches with empty data; always emit at least one.
        let mut any = false;
        for line in self.data.split('\n') {
            out.extend_from_slice(b"data: ");
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
            any = true;
        }
        if !any {
            out.extend_from_slice(b"data: \n");
        }
        out.push(b'\n');
    }
}

/// Strips the characters that would break SSE line framing.
fn sanitize_field(s: &str) -> String {
    s.chars().filter(|&c| c != '\n' && c != '\r').collect()
}

/// Sans-io decoder for a chunked response *body* (everything after the
/// head). Feed bytes with [`extend`], pull decoded chunk payloads with
/// [`next_chunk`]; [`finished`] turns true once the terminal chunk (and
/// any trailer section) has been consumed.
///
/// [`extend`]: ChunkedDecoder::extend
/// [`next_chunk`]: ChunkedDecoder::next_chunk
/// [`finished`]: ChunkedDecoder::finished
#[derive(Debug, Default)]
pub struct ChunkedDecoder {
    buf: Vec<u8>,
    start: usize,
    finished: bool,
}

/// Consumed-prefix length beyond which the decoder compacts its buffer.
const COMPACT_AT: usize = 16 * 1024;

impl ChunkedDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received body bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the terminal chunk has been consumed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next chunk's payload, or `Ok(None)` when more bytes
    /// are needed **or** the stream already ended (check [`finished`]).
    ///
    /// [`finished`]: ChunkedDecoder::finished
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        loop {
            if self.finished {
                return Ok(None);
            }
            let avail = &self.buf[self.start..];
            let Some(line_end) = find_crlf(avail) else {
                if avail.len() > 18 {
                    // A chunk-size line is at most 16 hex digits plus an
                    // extension we do not accept; a longer prefix with no
                    // CRLF cannot become valid.
                    return Err(HttpError::BadRequest("runaway chunk size line"));
                }
                return Ok(None);
            };
            let size = parse_chunk_size(&avail[..line_end])?;
            if size > MAX_CHUNK_LEN {
                return Err(HttpError::BodyTooLarge);
            }
            if size == 0 {
                // Terminal chunk. Consume trailer lines (we emit none, but
                // accept them) up to the blank line that ends the body.
                let after = line_end + 2;
                let mut at = after;
                loop {
                    let rest = &avail[at.min(avail.len())..];
                    let Some(end) = find_crlf(rest) else {
                        return Ok(None); // need more bytes
                    };
                    if end == 0 {
                        // Blank line: body complete.
                        self.start += at + 2;
                        self.finished = true;
                        self.compact();
                        return Ok(None);
                    }
                    at += end + 2;
                }
            }
            let data_at = line_end + 2;
            // Payload plus its trailing CRLF must be fully buffered.
            if avail.len() < data_at + size + 2 {
                return Ok(None);
            }
            if &avail[data_at + size..data_at + size + 2] != b"\r\n" {
                return Err(HttpError::BadRequest("chunk data not CRLF-terminated"));
            }
            let payload = avail[data_at..data_at + size].to_vec();
            self.start += data_at + size + 2;
            self.compact();
            if payload.is_empty() {
                continue; // unreachable (size==0 handled), defensive
            }
            return Ok(Some(payload));
        }
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Index of the first CRLF in `buf`, if any.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

/// Parses a chunk-size line: hex digits, optionally followed by a `;`
/// chunk extension (ignored).
fn parse_chunk_size(line: &[u8]) -> Result<usize, HttpError> {
    let line = std::str::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("chunk size line is not UTF-8"))?;
    let digits = line.split(';').next().unwrap_or("").trim();
    if digits.is_empty() || digits.len() > 16 {
        return Err(HttpError::BadRequest("malformed chunk size"));
    }
    usize::from_str_radix(digits, 16).map_err(|_| HttpError::BadRequest("malformed chunk size"))
}

/// Sans-io SSE stream parser: feed it decoded body bytes, pull complete
/// [`SseFrame`]s. Comment lines (`:` prefix) are skipped, unknown fields
/// ignored, and multi-line `data:` values rejoined with `\n` — the
/// subset of the WHATWG dispatch rules a telemetry consumer needs.
#[derive(Debug, Default)]
pub struct SseParser {
    buf: Vec<u8>,
    start: usize,
}

impl SseParser {
    /// An empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends decoded (de-chunked) stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Parses the next complete frame (terminated by a blank line), or
    /// `None` when more bytes are needed. Frames whose fields are all
    /// empty (pure comment / keep-alive frames) are skipped.
    pub fn next_frame(&mut self) -> Option<SseFrame> {
        loop {
            let avail = &self.buf[self.start..];
            // A frame ends at the first blank line ("\n\n"); tolerate CRLF.
            let mut end = None;
            let mut prev_blank_at = None;
            for (i, &b) in avail.iter().enumerate() {
                if b != b'\n' {
                    continue;
                }
                let line_start = prev_blank_at.map(|p: usize| p + 1).unwrap_or(0);
                let line = &avail[line_start..i];
                let line = strip_cr(line);
                if line.is_empty() {
                    end = Some(i + 1);
                    break;
                }
                prev_blank_at = Some(i);
            }
            let end = match end {
                Some(e) => e,
                None => {
                    if avail.len() > MAX_SSE_FRAME {
                        // Runaway frame: drop the buffer rather than grow
                        // without bound. The stream is best-effort telemetry.
                        self.buf.clear();
                        self.start = 0;
                    }
                    return None;
                }
            };
            let text = avail[..end].to_vec();
            self.start += end;
            if self.start == self.buf.len() {
                self.buf.clear();
                self.start = 0;
            } else if self.start > COMPACT_AT {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut frame = SseFrame::default();
            let mut data_lines: Vec<String> = Vec::new();
            for raw in text.split(|&b| b == b'\n') {
                let line = strip_cr(raw);
                if line.is_empty() || line.first() == Some(&b':') {
                    continue;
                }
                let line = String::from_utf8_lossy(line);
                let (field, value) = match line.split_once(':') {
                    Some((f, v)) => (f, v.strip_prefix(' ').unwrap_or(v)),
                    None => (line.as_ref(), ""),
                };
                match field {
                    "id" => frame.id = Some(value.to_string()),
                    "event" => frame.event = Some(value.to_string()),
                    "data" => data_lines.push(value.to_string()),
                    _ => {}
                }
            }
            if frame.id.is_none() && frame.event.is_none() && data_lines.is_empty() {
                continue; // comment-only frame: nothing to dispatch
            }
            frame.data = data_lines.join("\n");
            return Some(frame);
        }
    }
}

/// Strips one trailing `\r`, if present.
fn strip_cr(line: &[u8]) -> &[u8] {
    line.strip_suffix(b"\r").unwrap_or(line)
}

/// A fully decoded streaming response, for one-shot test harnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedStream {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The de-chunked body.
    pub body: Vec<u8>,
}

/// Parses one complete chunked response (head + every chunk + terminator)
/// from the front of `buf`, returning it and the bytes consumed, or
/// `Ok(None)` when more bytes are needed — the streaming analogue of
/// [`crate::http::parse_response`].
pub fn parse_chunked_response(buf: &[u8]) -> Result<Option<(ParsedStream, usize)>, HttpError> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::BadRequest("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    if !parts.next().unwrap_or("").starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("malformed status line"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::BadRequest("malformed status code"))?;
    let mut headers = Vec::new();
    let mut chunked = false;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header without a colon"))?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        headers.push((name, value));
    }
    if !chunked {
        return Err(HttpError::BadRequest("response is not chunked"));
    }
    let mut dec = ChunkedDecoder::new();
    dec.extend(&buf[head_end..]);
    let mut body = Vec::new();
    while let Some(chunk) = dec.next_chunk()? {
        body.extend_from_slice(&chunk);
    }
    if !dec.finished() {
        return Ok(None);
    }
    let consumed = head_end + (buf.len() - head_end - dec.pending_bytes());
    Ok(Some((
        ParsedStream {
            status,
            headers,
            body,
        },
        consumed,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(wire: &[u8]) -> (Vec<Vec<u8>>, bool) {
        let mut dec = ChunkedDecoder::new();
        dec.extend(wire);
        let mut chunks = Vec::new();
        while let Some(c) = dec.next_chunk().unwrap() {
            chunks.push(c);
        }
        (chunks, dec.finished())
    }

    #[test]
    fn chunks_round_trip() {
        let mut wire = Vec::new();
        encode_chunk(b"hello", &mut wire);
        encode_chunk(b"", &mut wire); // skipped, not a terminator
        encode_chunk(&[0u8; 300], &mut wire);
        wire.extend_from_slice(b"0\r\n\r\n");
        let (chunks, finished) = decode_all(&wire);
        assert_eq!(chunks, vec![b"hello".to_vec(), vec![0u8; 300]]);
        assert!(finished);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let mut wire = Vec::new();
        encode_chunk(b"abc", &mut wire);
        encode_chunk(b"defgh", &mut wire);
        wire.extend_from_slice(b"0\r\n\r\n");
        let mut dec = ChunkedDecoder::new();
        let mut chunks = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(c) = dec.next_chunk().unwrap() {
                chunks.push(c);
            }
        }
        assert_eq!(chunks, vec![b"abc".to_vec(), b"defgh".to_vec()]);
        assert!(dec.finished());
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn trailers_are_skipped() {
        let wire = b"3\r\nabc\r\n0\r\nX-Trailer: 1\r\n\r\n";
        let (chunks, finished) = decode_all(wire);
        assert_eq!(chunks, vec![b"abc".to_vec()]);
        assert!(finished);
    }

    #[test]
    fn malformed_size_lines_rejected() {
        for bad in [&b"zz\r\nab\r\n"[..], b"\r\nab\r\n", b"3 3\r\nabc\r\n"] {
            let mut dec = ChunkedDecoder::new();
            dec.extend(bad);
            assert!(dec.next_chunk().is_err(), "{bad:?}");
        }
        // Oversized declaration rejected before buffering the payload.
        let mut dec = ChunkedDecoder::new();
        dec.extend(format!("{:x}\r\n", MAX_CHUNK_LEN + 1).as_bytes());
        assert_eq!(dec.next_chunk().unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn missing_data_crlf_rejected() {
        let mut dec = ChunkedDecoder::new();
        dec.extend(b"3\r\nabcXY");
        assert!(dec.next_chunk().is_err());
    }

    #[test]
    fn sse_frame_encodes_and_parses_multiline_data() {
        let frame = SseFrame::new("line1\nline2")
            .with_id("42")
            .with_event("log");
        let mut wire = Vec::new();
        frame.encode(&mut wire);
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("id: 42\n"));
        assert!(text.contains("event: log\n"));
        assert!(text.contains("data: line1\ndata: line2\n"));
        assert!(text.ends_with("\n\n"));
        let mut parser = SseParser::new();
        parser.extend(&wire);
        assert_eq!(parser.next_frame().unwrap(), frame);
        assert!(parser.next_frame().is_none());
    }

    #[test]
    fn sse_parser_skips_comments_and_unknown_fields() {
        let mut parser = SseParser::new();
        parser.extend(b": keep-alive\n\nretry: 100\nid: 1\ndata: x\n\n");
        let frame = parser.next_frame().unwrap();
        assert_eq!(frame.id.as_deref(), Some("1"));
        assert_eq!(frame.data, "x");
        assert!(parser.next_frame().is_none());
    }

    #[test]
    fn sse_field_sanitization_strips_newlines() {
        let frame = SseFrame::new("x").with_id("4\r\n2").with_event("a\nb");
        assert_eq!(frame.id.as_deref(), Some("42"));
        assert_eq!(frame.event.as_deref(), Some("ab"));
    }

    #[test]
    fn stream_encoder_emits_chunked_head_without_content_length() {
        let enc = StreamEncoder::sse(200).header("X-Extra", "1");
        let mut out = Vec::new();
        enc.head(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: text/event-stream\r\n"));
        assert!(text.contains("Cache-Control: no-cache\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("X-Extra: 1\r\n"));
        assert!(!text.to_ascii_lowercase().contains("content-length"));
    }

    #[test]
    fn full_stream_round_trips_through_parse_chunked_response() {
        let enc = StreamEncoder::sse(200);
        let mut wire = Vec::new();
        enc.head(&mut wire);
        for i in 0..5 {
            enc.frame(
                &SseFrame::new(format!("{{\"n\":{i}}}")).with_id(i.to_string()),
                &mut wire,
            );
        }
        enc.finish(&mut wire);
        // Every strict prefix is incomplete, never an error.
        for cut in 0..wire.len() {
            assert!(
                parse_chunked_response(&wire[..cut]).unwrap().is_none(),
                "cut {cut}"
            );
        }
        let (parsed, consumed) = parse_chunked_response(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(parsed.status, 200);
        let mut frames = SseParser::new();
        frames.extend(&parsed.body);
        for i in 0..5 {
            let f = frames.next_frame().unwrap();
            assert_eq!(f.id.as_deref(), Some(i.to_string().as_str()));
            assert_eq!(f.data, format!("{{\"n\":{i}}}"));
        }
        assert!(frames.next_frame().is_none());
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        let mut dec = ChunkedDecoder::new();
        dec.extend(b"\xff\xfe garbage \r\n more \r\n\r\n");
        let _ = dec.next_chunk();
        let mut parser = SseParser::new();
        parser.extend(b"\xff\xfe: \n\ndata\n\n");
        while parser.next_frame().is_some() {}
    }
}
