//! A sans-io HTTP/1.1 request parser and response serializer.
//!
//! This is the control-plane wire format of `sae-server`: job submissions
//! and status queries arrive as small HTTP/1.1 requests on the live
//! runtime's reactor, which owns the sockets. The parser therefore does
//! **no I/O** — like the live codec's `FrameCursor`, it is fed raw bytes
//! at arbitrary boundaries ([`RequestParser::extend`]) and yields complete
//! [`Request`]s ([`RequestParser::next`]), reporting "need more bytes" for
//! partial input and a typed [`HttpError`] for malformed input. Decoding
//! is total: no byte sequence panics, and every error maps to the status
//! code of the well-formed error response the server should write back
//! ([`HttpError::status`]).
//!
//! Deliberate scope cuts, fine for a loopback control API: no
//! `Transfer-Encoding` (rejected with 501 — clients send
//! `Content-Length`), no multi-line header folding (rejected with 400, as
//! RFC 7230 §3.2.4 permits), bodies bounded by [`Limits::max_body_bytes`]
//! (413) and header blocks by [`Limits::max_head_bytes`] (431).
//!
//! # Examples
//!
//! ```
//! use sae_net::http::{Method, RequestParser, Response};
//!
//! let mut parser = RequestParser::new();
//! parser.extend(b"GET /jobs/7 HTTP/1.1\r\nHost: x\r\n\r\n");
//! let req = parser.next().unwrap().unwrap();
//! assert_eq!(req.method, Method::Get);
//! assert_eq!(req.path_segments(), vec!["jobs", "7"]);
//!
//! let mut out = Vec::new();
//! Response::json(200, "{\"job\":7}").encode(&mut out);
//! assert!(out.starts_with(b"HTTP/1.1 200 OK\r\n"));
//! ```

use std::fmt;

/// Bounds on what one request may occupy in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum size of the request line plus all headers, terminator
    /// included. Exceeding it is a 431.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted. Exceeding it is a 413.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Request methods the control API distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET` — status, reports, metrics.
    Get,
    /// `POST` — job submission.
    Post,
    /// `DELETE` — job cancellation.
    Delete,
    /// Anything else (syntactically valid token): routed to 405.
    Other,
}

impl Method {
    fn parse(token: &str) -> Option<Method> {
        if token.is_empty() || !token.bytes().all(|b| b.is_ascii_uppercase()) {
            return None;
        }
        Some(match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "DELETE" => Method::Delete,
            _ => Method::Other,
        })
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target, verbatim (path plus optional query).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target's path with the query string stripped.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// Non-empty `/`-separated segments of the path.
    pub fn path_segments(&self) -> Vec<&str> {
        self.path().split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a byte stream failed to parse as a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header syntax.
    BadRequest(&'static str),
    /// Header block exceeded [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// The request used `Transfer-Encoding`, which this parser does not
    /// implement.
    TransferEncodingUnsupported,
    /// The HTTP version was not 1.0 or 1.1.
    VersionUnsupported,
}

impl HttpError {
    /// The status code of the well-formed error response to send back.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge => 413,
            HttpError::TransferEncodingUnsupported => 501,
            HttpError::VersionUnsupported => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadTooLarge => write!(f, "header block too large"),
            HttpError::BodyTooLarge => write!(f, "declared body too large"),
            HttpError::TransferEncodingUnsupported => {
                write!(f, "transfer-encoding is not supported")
            }
            HttpError::VersionUnsupported => write!(f, "unsupported HTTP version"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Incremental request parser (see the [module docs](self)).
///
/// One parser per connection; pipelined requests in one buffer come out
/// in order. After an `Err` the connection is unusable (framing is lost)
/// — write the error response and close.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    start: usize,
    limits: Limits,
}

/// Consumed-prefix length beyond which the parser compacts its buffer.
const COMPACT_AT: usize = 16 * 1024;

impl RequestParser {
    /// A parser with default [`Limits`].
    pub fn new() -> Self {
        Self::with_limits(Limits::default())
    }

    /// A parser with explicit limits.
    pub fn with_limits(limits: Limits) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            limits,
        }
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Parses the next complete request, or `Ok(None)` if more bytes are
    /// needed.
    #[allow(clippy::should_implement_trait)] // None = "need more", not "done"
    pub fn next(&mut self) -> Result<Option<Request>, HttpError> {
        let avail = &self.buf[self.start..];
        let Some(head_len) = find_head_end(avail) else {
            if avail.len() > self.limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            return Ok(None);
        };
        if head_len > self.limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let head = std::str::from_utf8(&avail[..head_len - 4])
            .map_err(|_| HttpError::BadRequest("head is not UTF-8"))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
        let (method, target) = parse_request_line(request_line)?;
        let mut headers = Vec::new();
        let mut content_length: usize = 0;
        let mut saw_content_length = false;
        for line in lines {
            if line.starts_with(' ') || line.starts_with('\t') {
                return Err(HttpError::BadRequest("obsolete header folding"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or(HttpError::BadRequest("header without a colon"))?;
            if name.is_empty() || name.contains(' ') || name.contains('\t') {
                return Err(HttpError::BadRequest("malformed header name"));
            }
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "transfer-encoding" {
                return Err(HttpError::TransferEncodingUnsupported);
            }
            if name == "content-length" {
                // Conflicting duplicates desynchronize framing (request
                // smuggling behind a proxy); reject rather than pick one.
                if saw_content_length {
                    return Err(HttpError::BadRequest("duplicate content-length"));
                }
                saw_content_length = true;
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
                if content_length > self.limits.max_body_bytes {
                    return Err(HttpError::BodyTooLarge);
                }
            }
            headers.push((name, value));
        }
        let total = head_len + content_length;
        if avail.len() < total {
            return Ok(None);
        }
        let body = avail[head_len..total].to_vec();
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(Request {
            method,
            target,
            headers,
            body,
        }))
    }
}

/// Index one past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn parse_request_line(line: &str) -> Result<(Method, String), HttpError> {
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or(HttpError::BadRequest("malformed method"))?;
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    if target.is_empty() || target.contains(|c: char| c.is_ascii_control()) {
        return Err(HttpError::BadRequest("malformed request target"));
    }
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("extra request-line fields"));
    }
    match version {
        "HTTP/1.1" | "HTTP/1.0" => {}
        v if v.starts_with("HTTP/") => return Err(HttpError::VersionUnsupported),
        _ => return Err(HttpError::BadRequest("malformed HTTP version")),
    }
    Ok((method, target.to_string()))
}

/// The standard reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// A response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length` and `Content-Type`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// The canonical error body for `status`:
    /// `{"error":"<reason phrase>","detail":"<detail>"}`.
    pub fn error(status: u16, detail: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":\"{}\",\"detail\":\"{}\"}}",
                status_reason(status),
                escape_json(detail)
            ),
        )
    }

    /// Appends the serialized response (status line, headers,
    /// `Content-Length`, body) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status,
                status_reason(self.status)
            )
            .as_bytes(),
        );
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed response, for test harnesses and the load generator (the
/// server never parses responses itself).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl ParsedResponse {
    /// The body as UTF-8, lossily.
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Parses one complete response from the front of `buf`, returning it and
/// the bytes consumed, or `Ok(None)` when more bytes are needed. Like the
/// request parser this handles only `Content-Length` bodies.
pub fn parse_response(buf: &[u8]) -> Result<Option<(ParsedResponse, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_len - 4])
        .map_err(|_| HttpError::BadRequest("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(HttpError::BadRequest("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("malformed status line"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(HttpError::BadRequest("malformed status code"))?;
    let mut headers = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header without a colon"))?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("unparseable content-length"))?;
        }
        headers.push((name, value));
    }
    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        ParsedResponse {
            status,
            headers,
            body: buf[head_len..total].to_vec(),
        },
        total,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut p = RequestParser::new();
        p.extend(bytes);
        p.next()
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse_one(b"GET /jobs/3?verbose=1 HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/jobs/3?verbose=1");
        assert_eq!(req.path(), "/jobs/3");
        assert_eq!(req.path_segments(), vec!["jobs", "3"]);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_one(b"POST /jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let wire = b"DELETE /jobs/9 HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut p = RequestParser::new();
        for (i, &b) in wire.iter().enumerate() {
            p.extend(&[b]);
            let got = p.next().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "complete at byte {i}?");
            } else {
                let req = got.unwrap();
                assert_eq!(req.method, Method::Delete);
                assert_eq!(req.body, b"ok");
            }
        }
        assert_eq!(p.pending_bytes(), 0);
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new();
        p.extend(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.next().unwrap().unwrap().target, "/a");
        assert_eq!(p.next().unwrap().unwrap().target, "/b");
        assert!(p.next().unwrap().is_none());
    }

    #[test]
    fn rejects_duplicate_content_length_with_400() {
        // Conflicting or repeated values must not pick a winner: that
        // desynchronizes framing with any proxy in front of us.
        for bad in [
            &b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 4\r\n\r\nabcd"[..],
            b"POST /jobs HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
        ] {
            assert_eq!(parse_one(bad).unwrap_err().status(), 400, "{bad:?}");
        }
    }

    #[test]
    fn rejects_transfer_encoding_with_501() {
        let err =
            parse_one(b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::TransferEncodingUnsupported);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_oversized_declared_body_with_413() {
        let mut p = RequestParser::with_limits(Limits {
            max_head_bytes: 1024,
            max_body_bytes: 10,
        });
        p.extend(b"POST /jobs HTTP/1.1\r\nContent-Length: 11\r\n\r\n");
        assert_eq!(p.next().unwrap_err().status(), 413);
    }

    #[test]
    fn rejects_runaway_head_with_431() {
        let mut p = RequestParser::with_limits(Limits {
            max_head_bytes: 64,
            max_body_bytes: 10,
        });
        p.extend(b"GET / HTTP/1.1\r\n");
        for _ in 0..20 {
            p.extend(b"X-Pad: aaaaaaaaaaaaaaaa\r\n");
        }
        assert_eq!(p.next().unwrap_err().status(), 431);
    }

    #[test]
    fn rejects_malformed_request_lines_with_400() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
            b"GET  HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(parse_one(bad).unwrap_err().status(), 400, "{bad:?}");
        }
        assert_eq!(
            parse_one(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status(),
            505
        );
    }

    #[test]
    fn unknown_method_is_syntactically_ok() {
        let req = parse_one(b"PATCH /jobs/1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Other);
    }

    #[test]
    fn response_encodes_with_content_length() {
        let mut out = Vec::new();
        Response::json(201, "{\"job\":1}").encode(&mut out);
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"));
        assert!(text.contains("Content-Length: 9\r\n"));
        assert!(text.ends_with("{\"job\":1}"));
        let (parsed, consumed) = parse_response(&out).unwrap().unwrap();
        assert_eq!(consumed, out.len());
        assert_eq!(parsed.status, 201);
        assert_eq!(parsed.body_str(), "{\"job\":1}");
    }

    #[test]
    fn error_response_escapes_detail() {
        let resp = Response::error(400, "bad \"quote\"\nline");
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("bad \\\"quote\\\"\\nline"));
    }

    #[test]
    fn response_reassembles_from_partial_buffers() {
        let mut out = Vec::new();
        Response::text(200, "abc").encode(&mut out);
        for cut in 0..out.len() {
            assert!(parse_response(&out[..cut]).unwrap().is_none(), "cut {cut}");
        }
    }
}
