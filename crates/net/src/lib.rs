//! Network protocols for SAE: the simulator's fabric model and the live
//! runtime's HTTP/1.1 control-plane codec.
//!
//! [`http`] holds the sans-io HTTP/1.1 request parser and response
//! serializer behind `sae-server`'s control API. The rest of this crate
//! is the simulator-side network fabric model, described below.
//!
//! Shuffle traffic in the engine follows a two-hop model: a remote fetch
//! first reads the map output through the serving node's shuffle-serve
//! path (see `sae-storage`), then crosses the network as a flow on the
//! *receiver's* NIC. Receiver-side contention is the relevant bottleneck
//! for all-to-all shuffles (every reducer pulls from every node at once),
//! so the fabric models per-node ingress capacity; the cluster backbone is
//! assumed non-blocking, which matches DAS-5's InfiniBand fat tree.
//!
//! # Examples
//!
//! ```
//! use sae_net::{Fabric, FabricConfig};
//! use sae_sim::Kernel;
//!
//! let mut kernel: Kernel<u32> = Kernel::new();
//! let fabric = Fabric::register(&mut kernel, FabricConfig::das5(), 4);
//! assert_eq!(fabric.nodes(), 4);
//! // A 120 MB transfer into node 2:
//! kernel.start_flow(fabric.ingress(2), 0, 120.0, 7);
//! kernel.run_to_idle();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod sse;

use sae_sim::{CapacityCurve, Kernel, ResourceId};

/// Configuration of the cluster network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Per-node ingress bandwidth in MB/s.
    pub ingress_bandwidth: f64,
    /// Per-connection cap in MB/s (TCP stream limit); `f64::INFINITY` for
    /// no cap.
    pub per_stream_cap: f64,
    /// Concurrent ingress streams a NIC handles at full rate; beyond this,
    /// TCP incast sets in.
    pub incast_free_streams: f64,
    /// Incast collapse coefficient (`goodput = peak / (1 + α·over^β)`).
    pub incast_alpha: f64,
    /// Incast collapse exponent.
    pub incast_beta: f64,
}

impl FabricConfig {
    /// DAS-5-like fabric: FDR InfiniBand (56 Gbit/s) with IPoIB,
    /// ~3300 MB/s usable per node, single streams around 400 MB/s.
    ///
    /// IPoIB runs TCP, so the fabric inherits TCP *incast collapse*: when
    /// hundreds of synchronized shuffle senders converge on one receiver,
    /// goodput falls off a cliff. With the default 32 threads per node an
    /// all-to-all shuffle on 16 nodes puts ~256 concurrent streams on each
    /// ingress NIC — the mechanism behind the poor default scaling of
    /// Figure 9 — while the tuned 8-thread setting stays under the knee at
    /// either cluster size.
    pub fn das5() -> Self {
        Self {
            ingress_bandwidth: 3300.0,
            per_stream_cap: 400.0,
            incast_free_streams: 64.0,
            incast_alpha: 0.015,
            incast_beta: 2.0,
        }
    }

    /// A slower 10 GbE fabric (~1100 MB/s line rate, ~950 usable).
    pub fn ten_gbe() -> Self {
        Self {
            ingress_bandwidth: 950.0,
            per_stream_cap: 500.0,
            incast_free_streams: 48.0,
            incast_alpha: 0.02,
            incast_beta: 2.0,
        }
    }

    /// Effective ingress goodput with `n` concurrent streams, MB/s.
    pub fn goodput(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let over = (n as f64 - self.incast_free_streams).max(0.0);
        self.ingress_bandwidth / (1.0 + self.incast_alpha * over.powf(self.incast_beta))
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::das5()
    }
}

/// Per-node ingress NICs registered on a simulation kernel.
#[derive(Debug, Clone)]
pub struct Fabric {
    config: FabricConfig,
    ingress: Vec<ResourceId>,
}

impl Fabric {
    /// Registers `nodes` ingress NICs on the kernel.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the configured bandwidth is not
    /// positive.
    pub fn register<P>(kernel: &mut Kernel<P>, config: FabricConfig, nodes: usize) -> Self {
        assert!(nodes > 0, "a fabric needs at least one node");
        assert!(
            config.ingress_bandwidth > 0.0,
            "ingress bandwidth must be positive"
        );
        assert!(
            config.per_stream_cap > 0.0,
            "per-stream cap must be positive"
        );
        assert!(
            config.incast_free_streams >= 0.0
                && config.incast_alpha >= 0.0
                && config.incast_beta >= 0.0,
            "incast parameters must be non-negative"
        );
        let ingress = (0..nodes)
            .map(|_| {
                let cfg = config;
                kernel.add_resource(
                    CapacityCurve::from_fn(move |counts| cfg.goodput(counts.total()))
                        .with_per_flow_cap(config.per_stream_cap),
                )
            })
            .collect();
        Self { config, ingress }
    }

    /// Number of nodes in the fabric.
    pub fn nodes(&self) -> usize {
        self.ingress.len()
    }

    /// The ingress NIC resource of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn ingress(&self, node: usize) -> ResourceId {
        self.ingress[node]
    }

    /// The fabric configuration.
    pub fn config(&self) -> FabricConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_sim::Occurrence;

    #[test]
    fn single_transfer_limited_by_stream_cap() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let fabric = Fabric::register(&mut kernel, FabricConfig::das5(), 2);
        kernel.start_flow(fabric.ingress(0), 0, 600.0, 1);
        let mut done = 0.0;
        while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
            done = at.seconds();
        }
        // 600 MB at the 400 MB/s per-stream cap = 1.5 s.
        assert!((done - 1.5).abs() < 1e-9);
    }

    #[test]
    fn many_transfers_share_ingress_bandwidth() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let fabric = Fabric::register(&mut kernel, FabricConfig::das5(), 1);
        for i in 0..16 {
            kernel.start_flow(fabric.ingress(0), 0, 330.0, i);
        }
        let mut done = 0.0;
        while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
            done = at.seconds();
        }
        // 16 streams share the 3300 MB/s aggregate: 330 / 206.25 = 1.6 s.
        assert!((done - 1.6).abs() < 1e-9);
    }

    #[test]
    fn nodes_have_independent_nics() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let fabric = Fabric::register(&mut kernel, FabricConfig::das5(), 2);
        kernel.start_flow(fabric.ingress(0), 0, 400.0, 0);
        kernel.start_flow(fabric.ingress(1), 0, 400.0, 1);
        let mut times = Vec::new();
        while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
            times.push(at.seconds());
        }
        // No cross-node interference: both finish at 1.0 s (400 MB at cap).
        assert!(times.iter().all(|t| (t - 1.0).abs() < 1e-9));
    }

    #[test]
    fn goodput_flat_below_incast_knee() {
        let cfg = FabricConfig::das5();
        assert_eq!(cfg.goodput(1), cfg.ingress_bandwidth);
        assert_eq!(cfg.goodput(64), cfg.ingress_bandwidth);
        assert_eq!(cfg.goodput(0), 0.0);
    }

    #[test]
    fn goodput_collapses_under_heavy_fan_in() {
        let cfg = FabricConfig::das5();
        let at_128 = cfg.goodput(128);
        let at_256 = cfg.goodput(256);
        assert!(at_128 < cfg.ingress_bandwidth);
        assert!(
            at_256 < at_128 / 4.0,
            "incast must collapse super-linearly: {at_128} -> {at_256}"
        );
    }

    #[test]
    fn incast_visible_end_to_end() {
        // 100 concurrent transfers into one NIC take far more than the
        // aggregate-bandwidth prediction.
        let mut kernel: Kernel<u32> = Kernel::new();
        let fabric = Fabric::register(&mut kernel, FabricConfig::das5(), 1);
        let per_flow = 33.0;
        for i in 0..100u32 {
            kernel.start_flow(fabric.ingress(0), 0, per_flow, i);
        }
        let mut done = 0.0;
        while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
            done = at.seconds();
        }
        let ideal = 100.0 * per_flow / FabricConfig::das5().ingress_bandwidth;
        assert!(
            done > ideal * 2.0,
            "incast invisible: {done} vs ideal {ideal}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let _ = Fabric::register(&mut kernel, FabricConfig::das5(), 0);
    }
}
