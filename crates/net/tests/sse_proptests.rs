//! Property tests for the chunked-response encoder and SSE framing:
//! arbitrary inputs never panic, truncation is never an error, and
//! re-chunking at arbitrary split points is invisible to the decoder.

use proptest::prelude::*;
use sae_net::sse::{
    encode_chunk, parse_chunked_response, ChunkedDecoder, SseFrame, SseParser, StreamEncoder,
};

/// Splits `wire` at the given fractional points and feeds each piece to
/// the decoder in turn, collecting every chunk it yields.
fn decode_split(wire: &[u8], cuts: &[usize]) -> Result<(Vec<Vec<u8>>, bool), ()> {
    let mut dec = ChunkedDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    let feed = |dec: &mut ChunkedDecoder, bytes: &[u8], out: &mut Vec<Vec<u8>>| {
        dec.extend(bytes);
        loop {
            match dec.next_chunk() {
                Ok(Some(c)) => out.push(c),
                Ok(None) => return Ok(()),
                Err(_) => return Err(()),
            }
        }
    };
    for &cut in cuts {
        let cut = cut.min(wire.len());
        if cut > at {
            feed(&mut dec, &wire[at..cut], &mut out)?;
            at = cut;
        }
    }
    feed(&mut dec, &wire[at..], &mut out)?;
    Ok((out, dec.finished()))
}

/// Printable id/event field text (no newlines — those would be stripped
/// by the sanitizer and break exact round-trip comparison).
fn field_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..max)
        .prop_map(|cs| cs.into_iter().map(|b| b as char).collect())
}

/// Data payload text: printable ASCII plus embedded newlines, which the
/// encoder must split across `data:` lines and the parser rejoin.
fn data_text(max: usize) -> impl Strategy<Value = String> {
    // Draw from a range slightly wider than printable ASCII and fold the
    // excess onto '\n' (the vendored proptest has no oneof combinator).
    prop::collection::vec(0x20u8..0x8c, 0..max).prop_map(|cs| {
        cs.into_iter()
            .map(|b| if b < 0x7f { b as char } else { '\n' })
            .collect()
    })
}

proptest! {
    /// Any sequence of payloads survives encode → split-anywhere → decode.
    #[test]
    fn rechunking_is_invisible(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 0..8),
        cuts in prop::collection::vec(0usize..4096, 0..6),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            encode_chunk(p, &mut wire);
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let (decoded, finished) = decode_split(&wire, &cuts).expect("well-formed stream");
        prop_assert!(finished);
        prop_assert_eq!(decoded, payloads);
    }

    /// Arbitrary garbage fed to the decoder must never panic; errors are
    /// fine, panics are not.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut dec = ChunkedDecoder::new();
        dec.extend(&bytes);
        for _ in 0..64 {
            match dec.next_chunk() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        let mut parser = SseParser::new();
        parser.extend(&bytes);
        while parser.next_frame().is_some() {}
    }

    /// A truncated well-formed stream is "need more bytes", never an error.
    #[test]
    fn truncation_is_never_an_error(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..100), 1..5),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            encode_chunk(p, &mut wire);
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        let mut dec = ChunkedDecoder::new();
        dec.extend(&wire[..cut]);
        loop {
            match dec.next_chunk() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => prop_assert!(false, "truncation errored: {e:?}"),
            }
        }
    }

    /// SSE frames round-trip through encode → chunking → full response
    /// parse → SSE parse, for arbitrary ids/events/data.
    #[test]
    fn sse_frames_round_trip_through_response_harness(
        frames in prop::collection::vec(
            (
                prop::option::of(field_text(12)),
                prop::option::of(field_text(8)),
                data_text(64),
            ),
            1..6,
        ),
        cuts in prop::collection::vec(0usize..4096, 0..4),
    ) {
        let enc = StreamEncoder::sse(200);
        let mut wire = Vec::new();
        enc.head(&mut wire);
        let mut sent = Vec::new();
        for (id, event, data) in &frames {
            let mut f = SseFrame::new(data.clone());
            if let Some(id) = id {
                f = f.with_id(id.clone());
            }
            if let Some(event) = event {
                f = f.with_event(event.clone());
            }
            enc.frame(&f, &mut wire);
            sent.push(f);
        }
        enc.finish(&mut wire);

        // Every strict prefix is incomplete.
        for &cut in &cuts {
            if cut < wire.len() {
                prop_assert!(parse_chunked_response(&wire[..cut]).expect("prefix ok").is_none());
            }
        }

        let (parsed, consumed) = parse_chunked_response(&wire)
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(parsed.status, 200);

        let mut parser = SseParser::new();
        parser.extend(&parsed.body);
        for f in &sent {
            let got = parser.next_frame().expect("frame present");
            prop_assert_eq!(&got, f);
        }
        prop_assert!(parser.next_frame().is_none());
    }
}
