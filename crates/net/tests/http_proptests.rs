//! Property tests for the HTTP/1.1 request parser.
//!
//! The parser fronts an open port on a long-running server, so the
//! properties are adversarial: *no* byte sequence may panic, truncation
//! must always read as "need more bytes" (never a phantom request or a
//! premature error-then-success), every failure must map to a real error
//! status, and well-formed requests must survive arbitrary re-chunking.

use proptest::prelude::*;
use sae_net::http::{parse_response, HttpError, Limits, Method, Request, RequestParser, Response};

/// Feeds `wire` to a fresh parser in one piece and returns the verdict.
fn parse_all(wire: &[u8]) -> Result<Option<Request>, HttpError> {
    let mut p = RequestParser::new();
    p.extend(wire);
    p.next()
}

fn small_limits() -> Limits {
    Limits {
        max_head_bytes: 256,
        max_body_bytes: 64,
    }
}

/// A generator of well-formed requests paired with their wire encoding.
fn well_formed() -> impl Strategy<Value = (Vec<u8>, Method, String, Vec<u8>)> {
    const METHODS: [(&str, Method); 4] = [
        ("GET", Method::Get),
        ("POST", Method::Post),
        ("DELETE", Method::Delete),
        ("PATCH", Method::Other),
    ];
    let method = (0usize..METHODS.len()).prop_map(|i| METHODS[i]);
    // Path segments drawn from [a-z0-9], 1..=8 chars each, 0..4 segments.
    let seg = prop::collection::vec(0u8..36, 1..9).prop_map(|chars| {
        chars
            .into_iter()
            .map(|c| {
                if c < 26 {
                    (b'a' + c) as char
                } else {
                    (b'0' + c - 26) as char
                }
            })
            .collect::<String>()
    });
    let path = prop::collection::vec(seg, 0..4).prop_map(|segs| format!("/{}", segs.join("/")));
    let body = prop::collection::vec(any::<u8>(), 0..48);
    (method, path, body).prop_map(|((m, method), path, body)| {
        let wire = format!(
            "{m} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes()
        .into_iter()
        .chain(body.iter().copied())
        .collect::<Vec<u8>>();
        (wire, method, path, body)
    })
}

proptest! {
    /// Arbitrary bytes never panic; they parse, wait, or fail typed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut p = RequestParser::with_limits(small_limits());
        p.extend(&bytes);
        // Drain until the parser stops producing; bound the loop so a
        // hypothetical non-consuming success can't spin forever.
        for _ in 0..=bytes.len() {
            match p.next() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    // Every error maps to a real, well-formed error response.
                    let resp = Response::error(e.status(), &e.to_string());
                    let mut out = Vec::new();
                    resp.encode(&mut out);
                    let (parsed, used) = parse_response(&out).unwrap().unwrap();
                    prop_assert_eq!(used, out.len());
                    prop_assert_eq!(parsed.status, e.status());
                    prop_assert!(matches!(parsed.status, 400 | 413 | 431 | 501 | 505));
                    break;
                }
            }
        }
    }

    /// Every strict prefix of a valid request is "need more", and the
    /// full request then parses — regardless of the cut point.
    #[test]
    fn truncation_is_never_an_error(case in well_formed(), cut in 0usize..64) {
        let (wire, method, path, body) = case;
        let cut = cut.min(wire.len());
        let mut p = RequestParser::new();
        p.extend(&wire[..cut]);
        if cut < wire.len() {
            prop_assert_eq!(p.next().unwrap(), None, "phantom request at cut {}", cut);
        }
        p.extend(&wire[cut..]);
        let req = p.next().unwrap().unwrap();
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path(), path.as_str());
        prop_assert_eq!(req.body, body);
        prop_assert_eq!(p.pending_bytes(), 0);
    }

    /// Chunk boundaries are invisible: any partition of the wire bytes
    /// yields the same request.
    #[test]
    fn rechunking_is_invisible(case in well_formed(),
                               cuts in prop::collection::vec(0usize..256, 0..6)) {
        let (wire, method, _path, body) = case;
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (wire.len() + 1)).collect();
        cuts.sort_unstable();
        let mut p = RequestParser::new();
        let mut prev = 0;
        for cut in cuts.into_iter().chain(std::iter::once(wire.len())) {
            p.extend(&wire[prev..cut]);
            prev = cut;
        }
        let req = p.next().unwrap().unwrap();
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.body, body);
    }

    /// Oversized declared bodies and runaway heads fail with the right
    /// status instead of buffering without bound.
    #[test]
    fn oversized_inputs_fail_bounded(extra in 1usize..10_000, pad in 0usize..4096) {
        let limits = small_limits();
        let mut p = RequestParser::with_limits(limits);
        let len = limits.max_body_bytes + extra;
        p.extend(format!("POST /jobs HTTP/1.1\r\nContent-Length: {len}\r\n\r\n").as_bytes());
        prop_assert_eq!(p.next().unwrap_err().status(), 413);

        let mut p = RequestParser::with_limits(limits);
        p.extend(b"GET / HTTP/1.1\r\nX-Pad: ");
        p.extend(&vec![b'a'; limits.max_head_bytes + pad]);
        prop_assert_eq!(p.next().unwrap_err().status(), 431);
    }

    /// Garbage prepended to a request line is an error, not a resync:
    /// after any error the caller closes, so no request may follow one.
    #[test]
    fn leading_garbage_errors(garbage in prop::collection::vec(any::<u8>(), 1..16)) {
        // Keep the garbage out of the token alphabet so the line cannot
        // accidentally become a valid method.
        let mut wire: Vec<u8> = garbage
            .into_iter()
            .map(|b| if b.is_ascii_uppercase() || b == b'\r' || b == b'\n' || b == b' ' { b'!' } else { b })
            .collect();
        wire.extend_from_slice(b" /x HTTP/1.1\r\n\r\n");
        let verdict = parse_all(&wire);
        prop_assert!(verdict.is_err(), "garbage method accepted: {verdict:?}");
    }
}
