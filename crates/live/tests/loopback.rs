//! End-to-end loopback cluster tests: the acceptance gates of the live
//! runtime.
//!
//! * A clean 3-executor Terasort completes with at least one
//!   `PoolSizeChanged` round-trip reflected in the driver's slot registry.
//! * A run with one executor killed mid-stage still completes, via
//!   heartbeat-silence detection and task retry.
//!
//! Timers are tightened well below the library defaults so the failure
//! test stays fast; every run is additionally bounded by the driver's
//! internal deadline, so a wedged protocol fails the test instead of
//! hanging the suite.

use std::time::Duration;

use sae_core::MapeConfig;
use sae_live::{terasort, ClusterConfig, LiveCluster};

fn test_cfg(executors: usize) -> ClusterConfig {
    ClusterConfig {
        executors,
        mape: MapeConfig::new(2, 8),
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(600),
        check_interval: Duration::from_millis(25),
        max_task_attempts: 4,
        blacklist_after: 3,
        deadline: Duration::from_secs(90),
        ..ClusterConfig::default()
    }
}

#[test]
fn clean_terasort_completes_with_pool_size_round_trip() {
    let mut cluster = LiveCluster::launch(test_cfg(3)).unwrap();
    let job = terasort(24, 20_000, 2026);
    let journals = cluster.journals().to_vec();
    let report = cluster.run(&job).unwrap();
    cluster.shutdown().unwrap();

    assert_eq!(report.stages.len(), 2, "both Terasort stages must run");
    for stage in &report.stages {
        assert_eq!(stage.tasks, 24);
        assert!(stage.attempts >= stage.tasks);
        assert_eq!(stage.failed_attempts, 0, "clean run must not retry");
    }
    assert!(report.lost_executors.is_empty());

    // ≥1 PoolSizeChanged made the round trip: 24 tasks over 3 executors
    // is 8 per executor, above min_stage_tasks (6), so every stage start
    // resets each pool from c_max=8 to c_min=2 — and that resize must
    // arrive as a protocol message.
    assert!(
        !report.decisions.is_empty(),
        "no PoolSizeChanged round-trips were observed"
    );
    assert!(
        report.decisions.iter().any(|d| d.size == 2),
        "the stage-start reset to c_min never arrived: {:?}",
        report.decisions
    );

    // ...and the registry reflects the round trips: each executor's slot
    // count equals the size in its last observed decision.
    for (e, slot) in report.registry.iter().enumerate() {
        assert!(slot.registered && slot.alive && !slot.blacklisted);
        if let Some(last) = report.decisions.iter().rev().find(|d| d.executor == e) {
            assert_eq!(
                slot.slots, last.size,
                "executor {e}: registry slots diverge from its last PoolSizeChanged"
            );
        }
        assert!(slot.slots >= 2 && slot.slots <= 8);
    }

    // Every executor's decision journal ends each adaptation episode with
    // a terminal verdict (Hold or RollBack, never a dangling Ascend), and
    // every record carries the executor's own id.
    for (e, journal) in journals.iter().enumerate() {
        let records = journal.records();
        assert!(!records.is_empty(), "executor {e} journaled nothing");
        let mut last_of_stage = std::collections::BTreeMap::new();
        for r in &records {
            assert_eq!(r.executor, e);
            last_of_stage.insert(r.stage, r.clone());
        }
        for (stage, last) in last_of_stage {
            assert!(
                last.action.is_terminal(),
                "executor {e} stage {stage} journal left open: {last:?}"
            );
        }
        // JSONL round-trips the live journal exactly.
        let jsonl = journal.to_jsonl();
        assert_eq!(sae_core::parse_jsonl(&jsonl).unwrap(), records);
    }

    // The shared metric plane saw the whole job: every task completion is
    // accounted against its executor, and heartbeats were observed.
    let finished: u64 = report
        .metrics
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("live.driver.tasks_finished"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(finished, 48, "driver-side task completions: {finished}");
    assert!(
        report.metrics.histogram_counts["live.driver.heartbeat_gap_s"] > 0,
        "no heartbeat gaps were recorded"
    );
    assert!(report.metrics.counters["live.driver.bytes_sent"] > 0);
    assert!(report.metrics.counters["live.driver.bytes_received"] > 0);
}

#[test]
fn killed_executor_mid_stage_is_detected_and_its_work_retried() {
    let mut cfg = test_cfg(3);
    // Executor 2 goes silent after finishing one task, with more tasks
    // assigned: mid-stage, not between stages.
    cfg.kill_after_tasks = vec![(2, 1)];
    let mut cluster = LiveCluster::launch(cfg).unwrap();
    let job = terasort(24, 20_000, 7);
    let report = cluster.run(&job).unwrap();
    cluster.shutdown().unwrap();

    // The job still completed every stage...
    assert_eq!(report.stages.len(), 2);
    // ...the silent executor was detected and declared lost...
    assert!(
        report.lost_executors.contains(&2),
        "executor 2 was never declared lost: {:?}",
        report.lost_executors
    );
    assert!(!report.registry[2].alive);
    assert!(report.registry[0].alive && report.registry[1].alive);
    // ...and its in-flight work was recovered through retries.
    let failed: usize = report.stages.iter().map(|s| s.failed_attempts).sum();
    let attempts: usize = report.stages.iter().map(|s| s.attempts).sum();
    assert!(
        failed >= 1,
        "losing an executor mid-stage must cost retries"
    );
    assert_eq!(
        attempts,
        48 + failed,
        "every failed attempt must be retried exactly once"
    );
}

#[test]
fn observer_sees_registry_updates_as_decisions_arrive() {
    let mut cluster = LiveCluster::launch(test_cfg(2)).unwrap();
    let job = terasort(12, 5_000, 99);
    let mut observed = Vec::new();
    let report = cluster
        .run_with_observer(&job, |decision, registry| {
            observed.push((decision.executor, decision.size, registry.to_vec()));
        })
        .unwrap();
    cluster.shutdown().unwrap();

    assert_eq!(observed.len(), report.decisions.len());
    for (executor, size, registry) in &observed {
        // The registry snapshot already folds the decision in.
        assert_eq!(registry[*executor].slots, *size);
    }
}

#[test]
fn blocking_reference_transport_still_runs_the_job() {
    // The pinned thread-per-connection baseline must stay a working,
    // explicitly selectable transport — it is what the reactor is
    // benchmarked and equivalence-tested against.
    let mut cfg = test_cfg(3);
    cfg.transport = sae_live::DriverTransport::Blocking;
    let mut cluster = LiveCluster::launch(cfg).unwrap();
    let report = cluster.run(&terasort(24, 20_000, 2026)).unwrap();
    cluster.shutdown().unwrap();

    assert_eq!(report.stages.len(), 2);
    assert!(report.lost_executors.is_empty());
    assert!(
        report.decisions.iter().any(|d| d.size == 2),
        "the stage-start reset to c_min never arrived: {:?}",
        report.decisions
    );
    for (e, slot) in report.registry.iter().enumerate() {
        assert!(slot.registered && slot.alive, "executor {e}: {slot:?}");
    }
}
