//! Property tests for the reactor's sans-io frame reassembly.
//!
//! The reactor decodes frames through [`FrameCursor`]: bytes arrive in
//! whatever chunks a non-blocking socket hands each readiness event —
//! split mid-header, split mid-body, several frames merged into one
//! read — and the cursor must reassemble the exact frame sequence. The
//! blocking reference transport decodes the same wire bytes through
//! [`FrameReader`]. These properties push identical byte streams, cut
//! at arbitrary boundaries, through both paths and require byte-level
//! agreement with each other and with the frames that were encoded.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use prop::collection::vec;
use proptest::prelude::*;
use sae_dag::Message;
use sae_live::wire::{Frame, FrameCursor, FrameReader, Next};
use sae_live::LiveStageKind;

/// Any frame the protocol can put on the wire (the mini-proptest has no
/// `prop_oneof!`, so the variant is one more generated dimension).
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0..9usize,
        0..512usize,
        0..64usize,
        1..16usize,
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(variant, task, executor, small, seed, flag)| match variant {
                0 => Frame::Core(Message::AssignTask { task, executor }),
                1 => Frame::Core(Message::PoolSizeChanged {
                    executor,
                    size: small,
                }),
                2 => Frame::Core(Message::Heartbeat { executor }),
                3 => Frame::Core(Message::TaskFailed {
                    task,
                    executor,
                    attempt: small % 4,
                }),
                4 => Frame::Register {
                    executor,
                    slots: small,
                },
                5 => Frame::StageStart {
                    stage: task % 8,
                    kind: if flag {
                        LiveStageKind::Sort
                    } else {
                        LiveStageKind::Spill
                    },
                    tasks: task + 1,
                    records_per_task: (seed % 100_000) as usize + 1,
                    seed,
                    hint: small,
                },
                6 => Frame::TaskFinished {
                    task,
                    executor,
                    attempt: small % 4,
                },
                7 => Frame::Shutdown,
                _ => Frame::FaultNotice { executor },
            },
        )
}

/// Cuts `bytes` into chunks by cycling through `sizes` (so shrinking the
/// size list shrinks the cut pattern, not the payload).
fn chunked<'a>(bytes: &'a [u8], sizes: &'a [usize]) -> impl Iterator<Item = &'a [u8]> {
    let mut offset = 0;
    let mut i = 0;
    std::iter::from_fn(move || {
        if offset >= bytes.len() {
            return None;
        }
        let size = sizes[i % sizes.len()].max(1);
        i += 1;
        let end = (offset + size).min(bytes.len());
        let chunk = &bytes[offset..end];
        offset = end;
        Some(chunk)
    })
}

/// A connected loopback pair: (write half, read half).
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    (client, server)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cursor reassembles the exact frame sequence no matter where
    /// the byte stream is cut — including one-byte chunks, which stall
    /// inside every header and every body.
    #[test]
    fn cursor_reassembles_any_chunking(
        frames in vec(frame_strategy(), 1..40),
        sizes in vec(1..24usize, 1..12),
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            frame.encode(&mut wire);
        }
        let mut cursor = FrameCursor::new();
        let mut decoded = Vec::new();
        for chunk in chunked(&wire, &sizes) {
            cursor.extend(chunk);
            while let Some(frame) = cursor.next().unwrap() {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(cursor.pending_bytes(), 0, "trailing bytes left unconsumed");
    }

    /// Equivalence with the blocking reference: the same chunk pattern
    /// goes to a [`FrameCursor`] directly and over a real non-blocking
    /// loopback socket read by [`FrameReader`] (whose reads hit
    /// `WouldBlock` at whatever boundaries the kernel picks). Both must
    /// produce the encoded frame sequence.
    #[test]
    fn cursor_matches_blocking_reader_over_a_real_socket(
        frames in vec(frame_strategy(), 1..24),
        sizes in vec(1..24usize, 1..8),
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            frame.encode(&mut wire);
        }

        let (mut tx, rx) = socket_pair();
        rx.set_nonblocking(true).unwrap();
        let mut reader = FrameReader::new(rx);
        let mut cursor = FrameCursor::new();
        let mut via_reader = Vec::new();
        let mut via_cursor = Vec::new();

        for chunk in chunked(&wire, &sizes) {
            tx.write_all(chunk).unwrap();
            cursor.extend(chunk);
            while let Some(frame) = cursor.next().unwrap() {
                via_cursor.push(frame);
            }
            // Drain whatever has landed so far; `Idle` is a WouldBlock
            // surfacing mid-frame, exactly the stall under test.
            loop {
                match reader.next_frame().unwrap() {
                    Next::Frame(frame) => via_reader.push(frame),
                    Next::Idle => break,
                    Next::Eof => prop_assert!(false, "premature EOF"),
                }
            }
        }
        drop(tx); // close the write half: the rest drains, then EOF
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match reader.next_frame().unwrap() {
                Next::Frame(frame) => via_reader.push(frame),
                Next::Idle => {
                    prop_assert!(Instant::now() < deadline, "reader never saw EOF");
                    std::thread::sleep(Duration::from_millis(1));
                }
                Next::Eof => break,
            }
        }

        prop_assert_eq!(&via_cursor, &frames);
        prop_assert_eq!(&via_reader, &frames);
    }
}
