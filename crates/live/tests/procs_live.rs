//! The multi-process fleet: executors as separate OS processes.
//!
//! `ClusterConfig::process_executors` spawns each executor as a
//! `sae-executor` child (the binary Cargo builds alongside these tests)
//! instead of an in-process thread. These tests prove the fleet is real:
//! a job runs end to end across process boundaries with `PoolSizeChanged`
//! round-trips landing in the slot registry, child decision journals are
//! merged back on shutdown, and — the chaos-parity contract — a
//! crash-and-reincarnation scenario through the nemesis proxy tells the
//! same per-executor recovery story whichever side of the process
//! boundary the executors live on.

use std::time::Duration;

use sae_dag::{FaultPlan, TraceEvent};
use sae_live::{terasort, ClusterConfig, LiveCluster, LiveEvent};

/// The cluster config for process-mode tests: executors as children of
/// this test binary, chaos-test timing (fast heartbeats, fast loss
/// detection) so scenarios fit a debug-build run.
fn procs_cluster(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        executors: 3,
        process_executors: true,
        executor_binary: Some(env!("CARGO_BIN_EXE_sae-executor").into()),
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
        check_interval: Duration::from_millis(25),
        probation: Duration::from_millis(500),
        deadline: Duration::from_secs(60),
        fault_plan: plan,
        ..ClusterConfig::default()
    }
}

/// The driver-visible recovery story, per executor: who was declared
/// lost and who came back under which epoch. Deliberately excludes
/// `FaultInjected` (in-thread crashes are recorded by the parent's chaos
/// agent; process-mode crashes fire inside the child, beyond the
/// recorder) and fence events (which tasks were in flight at the crash
/// instant is timing-dependent either way) — the story is the failure
/// detector's and the epoch registry's verdicts, which must not depend
/// on where the executor runs.
fn recovery_story(events: &[LiveEvent]) -> Vec<Vec<String>> {
    let mut per_exec: Vec<Vec<String>> = Vec::new();
    let mut note = |executor: usize, entry: String| {
        if per_exec.len() <= executor {
            per_exec.resize_with(executor + 1, Vec::new);
        }
        per_exec[executor].push(entry);
    };
    for ev in events {
        match ev {
            LiveEvent::Trace(TraceEvent::ExecutorFailed { executor, .. }) => {
                note(*executor, "lost".to_string())
            }
            LiveEvent::ExecutorReincarnated {
                executor, epoch, ..
            } => note(*executor, format!("reincarnated:e{epoch}")),
            _ => {}
        }
    }
    per_exec
}

/// The acceptance path: three executor processes register, adapt and
/// finish a two-stage Terasort, with `PoolSizeChanged` round-trips
/// crossing the process boundary into the driver's slot registry and
/// the children's decision journals merged back at shutdown.
#[test]
fn process_fleet_runs_a_job_end_to_end() {
    let mut cluster = LiveCluster::launch(procs_cluster(FaultPlan::new(1))).unwrap();
    let journals = cluster.journals().to_vec();
    let report = cluster.run(&terasort(24, 20_000, 42)).unwrap();

    assert_eq!(report.stages.len(), 2, "both stages must complete");
    for stage in &report.stages {
        assert_eq!(stage.tasks, 24);
    }
    // §5.4 round-trips: every executor's pool resets at stage start, so
    // each must have announced at least one size change — and the final
    // registry must reflect the announcements, not the register default.
    assert!(
        !report.decisions.is_empty(),
        "no PoolSizeChanged crossed the process boundary"
    );
    for (id, slot) in report.registry.iter().enumerate() {
        assert!(slot.registered && slot.alive, "executor {id}: {slot:?}");
        let last_announced = report
            .decisions
            .iter()
            .rev()
            .find(|d| d.executor == id)
            .map(|d| d.size)
            .expect("every executor announces at least one resize");
        assert_eq!(
            slot.slots, last_announced,
            "executor {id}'s registry slots must match its last announcement"
        );
    }
    // Frames really crossed sockets owned by other processes.
    assert!(report.metrics.counters["live.driver.frames_received"] > 0);

    cluster.shutdown().unwrap();
    // The children's journals came home in the shutdown merge.
    for (id, journal) in journals.iter().enumerate() {
        assert!(
            !journal.records().is_empty(),
            "executor {id}'s journal never made it back from the child"
        );
        assert!(journal.records().iter().all(|r| r.executor == id));
    }
}

/// The telemetry acceptance path: a process fleet merges into *one*
/// causally-ordered trace while the job is still running — task spans
/// stream off the wire with their full (job, stage, task, attempt,
/// epoch) key as each attempt finishes, ζ intervals stream as they
/// close — and the shutdown-time journal merge only tops up whatever
/// never streamed, so the final timeline covers each record exactly
/// once, never twice.
#[test]
fn process_fleet_merges_one_trace_during_the_run() {
    let mut cluster = LiveCluster::launch(procs_cluster(FaultPlan::new(1))).unwrap();
    // Subscribe before the job starts: everything in the first drain
    // below was delivered mid-run, not reconstructed at shutdown.
    let live = cluster.recorder().subscribe(1_000_000);
    let journals = cluster.journals().to_vec();
    let report = cluster.run(&terasort(24, 20_000, 7)).unwrap();
    assert_eq!(report.stages.len(), 2);

    assert_eq!(live.dropped(), 0, "the test subscription must be lossless");
    let during: Vec<LiveEvent> = live.drain().into_iter().map(|(_, e)| e).collect();

    let zeta_of = |events: &[LiveEvent]| -> Vec<(usize, usize, f64, f64)> {
        events
            .iter()
            .filter_map(|e| match e {
                LiveEvent::Trace(TraceEvent::IntervalClosed {
                    executor,
                    threads,
                    zeta,
                    at,
                }) => Some((*executor, *threads, *zeta, *at)),
                _ => None,
            })
            .collect()
    };

    // Every task of both stages closed a successful span over the wire
    // while the run was in flight, carrying its trace key.
    let spans: Vec<(usize, usize, f64, f64, bool)> = during
        .iter()
        .filter_map(|e| match e {
            LiveEvent::TaskSpan {
                stage,
                task,
                start,
                end,
                ok,
                ..
            } => Some((*stage, *task, *start, *end, *ok)),
            _ => None,
        })
        .collect();
    for stage in 0..2 {
        for task in 0..24 {
            assert!(
                spans.iter().any(|s| s.0 == stage && s.1 == task && s.4),
                "no successful span streamed for stage {stage} task {task}"
            );
        }
    }
    // Causal order on the merged timeline: the stage barrier means every
    // stage-0 span lands before any stage-1 span, and no span ends
    // before it starts.
    let stage_order: Vec<usize> = spans.iter().map(|s| s.0).collect();
    assert!(
        stage_order.windows(2).all(|w| w[0] <= w[1]),
        "span receipt order crossed the stage barrier: {stage_order:?}"
    );
    assert!(
        spans.iter().all(|s| s.2 <= s.3),
        "span ends before it starts"
    );

    let streamed = zeta_of(&during);
    assert!(
        !streamed.is_empty(),
        "no ζ interval streamed while the run was live"
    );

    cluster.shutdown().unwrap();

    // The shutdown merge pushed only the unstreamed tail; streamed +
    // tail must equal the merged child journals record for record.
    let tail = zeta_of(&live.drain().into_iter().map(|(_, e)| e).collect::<Vec<_>>());
    let mut merged: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new(); 3];
    for (executor, threads, zeta, at) in streamed.iter().chain(tail.iter()) {
        merged[*executor].push((*threads, *zeta, *at));
    }
    for (id, journal) in journals.iter().enumerate() {
        let expect: Vec<(usize, f64, f64)> = journal
            .records()
            .iter()
            .map(|r| (r.threads, r.zeta, r.at))
            .collect();
        assert!(!expect.is_empty(), "executor {id}'s journal never merged");
        assert_eq!(
            merged[id], expect,
            "executor {id}: live stream + shutdown tail must cover the \
             journal exactly once"
        );
    }
}

/// Chaos parity: the representative crash→reincarnation scenario, run
/// through the nemesis proxy (a throttled link keeps the proxy honest
/// about forwarding every frame kind), must produce the same
/// per-executor recovery story whether executors are threads or
/// processes. Epoch fencing works across the boundary: the reborn child
/// re-registers under a later epoch in both modes.
#[test]
fn process_mode_matches_in_thread_recovery_story() {
    let plan = || {
        FaultPlan::new(31)
            .with_crash(1, 0.4, 0.6)
            .with_throttle(0, 0.2, 2.0, 4_000.0)
    };
    plan().validate(3);

    let run = |process_executors: bool| {
        let mut cfg = procs_cluster(plan());
        cfg.process_executors = process_executors;
        let mut cluster = LiveCluster::launch(cfg).unwrap();
        let report = cluster.run(&terasort(36, 30_000, 13)).unwrap();
        let story = recovery_story(&cluster.recorder().snapshot());
        cluster.shutdown().unwrap();
        (report, story)
    };

    let (thread_report, thread_story) = run(false);
    let (proc_report, proc_story) = run(true);

    // The scenario actually bit in both modes: executor 1 died and came
    // back under a later epoch.
    for (mode, story) in [("thread", &thread_story), ("process", &proc_story)] {
        assert!(
            story
                .get(1)
                .is_some_and(|s| s.contains(&"lost".to_string())),
            "{mode} mode: executor 1 was never declared lost: {story:?}"
        );
        assert!(
            story[1].iter().any(|s| s.starts_with("reincarnated:e")),
            "{mode} mode: executor 1 never reincarnated: {story:?}"
        );
    }
    assert_eq!(
        thread_story, proc_story,
        "the recovery story must not depend on the process boundary"
    );
    // And in both modes the job itself survived the weather.
    for report in [&thread_report, &proc_report] {
        assert_eq!(report.stages.len(), 2);
        assert!(report.registry[1].alive, "executor 1 should be back");
    }
}
