//! Traced live smoke tests: one loopback Terasort must produce all three
//! observability artifacts — the merged Chrome trace, the decision-journal
//! JSONL and the metrics plane (Prometheus text + JSONL snapshots) — and a
//! failing job must dump the flight recorder on its own.

use std::time::Duration;

use sae_core::MapeConfig;
use sae_live::{terasort, ClusterConfig, LiveCluster};

/// A minimal recursive-descent JSON syntax checker: returns the byte
/// offset after one complete value, or panics with context. Enough to
/// assert the Chrome trace is *well-formed JSON*, not just brace-balanced.
fn check_json(bytes: &[u8], mut i: usize) -> usize {
    fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
        while i < bytes.len() && matches!(bytes[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }
    i = skip_ws(bytes, i);
    assert!(i < bytes.len(), "unexpected end of JSON");
    match bytes[i] {
        b'{' | b'[' => {
            let (close, is_obj) = if bytes[i] == b'{' {
                (b'}', true)
            } else {
                (b']', false)
            };
            i = skip_ws(bytes, i + 1);
            if bytes[i] == close {
                return i + 1;
            }
            loop {
                if is_obj {
                    i = skip_ws(bytes, i);
                    assert_eq!(bytes[i], b'"', "object key must be a string at {i}");
                    i = check_json(bytes, i);
                    i = skip_ws(bytes, i);
                    assert_eq!(bytes[i], b':', "missing ':' at {i}");
                    i += 1;
                }
                i = check_json(bytes, i);
                i = skip_ws(bytes, i);
                match bytes[i] {
                    b',' => i += 1,
                    c if c == close => return i + 1,
                    c => panic!("unexpected {:?} at {i}", c as char),
                }
            }
        }
        b'"' => {
            i += 1;
            while bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i + 1
        }
        b't' => {
            assert_eq!(&bytes[i..i + 4], b"true");
            i + 4
        }
        b'f' => {
            assert_eq!(&bytes[i..i + 5], b"false");
            i + 5
        }
        b'n' => {
            assert_eq!(&bytes[i..i + 4], b"null");
            i + 4
        }
        _ => {
            let start = i;
            while i < bytes.len()
                && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                i += 1;
            }
            assert!(i > start, "unexpected byte at {start}");
            i
        }
    }
}

fn assert_wellformed_json(text: &str) {
    let bytes = text.as_bytes();
    let end = check_json(bytes, 0);
    assert!(
        text[end..].trim().is_empty(),
        "trailing garbage after JSON value"
    );
}

fn artifact_dir() -> sae_live::TempDir {
    sae_live::TempDir::new("sae-live-artifacts").unwrap()
}

#[test]
fn traced_terasort_produces_all_three_artifacts() {
    let dir = artifact_dir();
    let trace = dir.path().join("trace.json");
    let journal = dir.path().join("journal.jsonl");
    let prom = dir.path().join("metrics.prom");
    let metrics_jsonl = dir.path().join("metrics.jsonl");
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: 3,
        mape: MapeConfig::new(2, 8),
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(600),
        check_interval: Duration::from_millis(25),
        trace_out: Some(trace.clone()),
        journal_out: Some(journal.clone()),
        metrics_out: Some(prom.clone()),
        metrics_jsonl: Some(metrics_jsonl.clone()),
        metrics_interval: Duration::from_millis(100),
        ..ClusterConfig::default()
    })
    .unwrap();
    let report = cluster.run(&terasort(24, 20_000, 2026)).unwrap();
    cluster.shutdown().unwrap();
    assert_eq!(report.stages.len(), 2);

    // 1. The merged Chrome trace: well-formed JSON with the sim
    //    vocabulary, wire rows and counter tracks.
    let trace = std::fs::read_to_string(&trace).unwrap();
    assert_wellformed_json(&trace);
    assert!(
        trace.contains(r#""name":"pool-size-exec"#) && trace.contains(r#""ph":"C""#),
        "no pool-size counter samples in the trace"
    );
    assert!(
        trace.contains(r#""name":"zeta-exec"#),
        "no zeta counter samples in the trace"
    );
    assert!(trace.contains(r#""name":"stage-0","ph":"B""#));
    assert!(trace.contains(r#""name":"stage-1","ph":"E""#));
    assert!(trace.contains(r#""name":"recv:heartbeat"#));
    assert!(trace.contains(r#""name":"wire-bytes","ph":"C""#));
    assert!(trace.contains(r#""name":"slots-exec"#));
    assert!(trace.contains(r#""name":"process_name","ph":"M""#));

    // 2. The decision journal: JSONL that parses back, with terminal
    //    verdicts.
    let journal = std::fs::read_to_string(&journal).unwrap();
    let records = sae_core::parse_jsonl(&journal).unwrap();
    assert!(!records.is_empty(), "journal artifact is empty");
    assert!(records.iter().any(|r| r.action.is_terminal()));
    for line in journal.lines() {
        assert_wellformed_json(line);
    }

    // 3. The metrics plane: Prometheus exposition + JSONL snapshots.
    let prom = std::fs::read_to_string(&prom).unwrap();
    assert!(prom.contains("# HELP "));
    assert!(prom.contains("# TYPE "));
    assert!(prom.contains(r#"live_driver_tasks_finished{executor="0"}"#));
    assert!(prom.contains("live_driver_heartbeat_gap_s_count"));
    let metrics_jsonl = std::fs::read_to_string(&metrics_jsonl).unwrap();
    assert!(metrics_jsonl.lines().count() >= 1);
    for line in metrics_jsonl.lines() {
        assert_wellformed_json(line);
        assert!(line.starts_with(r#"{"t":"#));
    }
}

#[test]
fn failed_job_dumps_the_flight_recorder() {
    // One executor that dies with work outstanding: the job cannot
    // complete, and the failure must leave a post-mortem trace behind.
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: 1,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
        check_interval: Duration::from_millis(25),
        deadline: Duration::from_secs(60),
        kill_after_tasks: vec![(0, 1)],
        ..ClusterConfig::default()
    })
    .unwrap();
    let err = cluster
        .run(&terasort(8, 5_000, 7))
        .expect_err("a one-executor cluster losing its executor must fail");
    let path = cluster
        .last_trace_path()
        .expect("failure must dump the flight recorder")
        .to_path_buf();
    let dump = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    cluster.shutdown().unwrap();
    assert_wellformed_json(&dump);
    assert!(
        dump.contains(r#""name":"executor-failed""#),
        "dump misses the executor loss: {err}"
    );
    assert!(dump.contains(r#""name":"task-"#));
}

/// The executor-kill scenario with tracing on: the job completes through
/// retries and the trace shows both the loss and the recovery work.
#[test]
fn killed_executor_run_traces_loss_and_retries() {
    let dir = artifact_dir();
    let trace = dir.path().join("kill-trace.json");
    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: 3,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(600),
        check_interval: Duration::from_millis(25),
        kill_after_tasks: vec![(2, 1)],
        trace_out: Some(trace.clone()),
        ..ClusterConfig::default()
    })
    .unwrap();
    let report = cluster.run(&terasort(24, 20_000, 7)).unwrap();
    cluster.shutdown().unwrap();
    assert!(report.lost_executors.contains(&2));

    let trace = std::fs::read_to_string(&trace).unwrap();
    assert_wellformed_json(&trace);
    assert!(trace.contains(r#""name":"executor-failed""#));
    assert!(trace.contains(r#""name":"task-failed""#));
    assert!(trace.contains(r#""name":"pool-size-exec"#));
}
