//! Property tests for the registration-epoch state machine.
//!
//! The [`EpochRegistry`] is the driver's fence against zombie
//! incarnations: these properties check it against a trivially-correct
//! model over arbitrary interleavings of registrations, resurrections,
//! disconnects and admission probes — the orderings a chaotic network
//! actually produces (a reincarnated executor can register *before* the
//! driver notices its predecessor's socket died).

use proptest::prelude::*;
use sae_live::{Admission, EpochRegistry};

const EXECUTORS: usize = 4;

/// One operation against the registry.
#[derive(Debug, Clone, Copy)]
enum Op {
    Register { executor: usize, conn: u64 },
    Resurrect { executor: usize },
    Disconnect { executor: usize, conn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0..3usize, 0..EXECUTORS, 1u64..6).prop_map(|(which, executor, conn)| match which {
        0 => Op::Register { executor, conn },
        1 => Op::Resurrect { executor },
        _ => Op::Disconnect { executor, conn },
    })
}

/// The obviously-correct model: per executor, a bump count and the one
/// connection currently allowed to speak.
#[derive(Debug, Clone, Default, PartialEq)]
struct Model {
    epoch: u64,
    conn: Option<u64>,
}

fn apply(models: &mut [Model], reg: &mut EpochRegistry, op: Op) {
    match op {
        Op::Register { executor, conn } => {
            let r = reg.register(executor, conn);
            let m = &mut models[executor];
            let was_dead_before = m.epoch > 0;
            m.epoch += 1;
            m.conn = Some(conn);
            assert_eq!(r.epoch, m.epoch, "register must report the bumped epoch");
            assert_eq!(
                r.reincarnation, was_dead_before,
                "every registration after the first is a reincarnation"
            );
        }
        Op::Resurrect { executor } => {
            let e = reg.resurrect(executor);
            let m = &mut models[executor];
            m.epoch += 1;
            assert_eq!(e, m.epoch, "resurrect must report the bumped epoch");
            // conn untouched: the healed socket keeps speaking.
        }
        Op::Disconnect { executor, conn } => {
            let was_current = models[executor].conn == Some(conn);
            let cleared = reg.disconnect(executor, conn);
            assert_eq!(cleared, was_current, "only the current conn can disconnect");
            if was_current {
                models[executor].conn = None;
            }
        }
    }
}

proptest! {
    /// Epochs never go backwards, and admission agrees with the model
    /// after every single step.
    #[test]
    fn epochs_are_monotone_and_admission_matches_the_model(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let mut reg = EpochRegistry::new(EXECUTORS);
        let mut models = vec![Model::default(); EXECUTORS];
        let mut high_water = [0u64; EXECUTORS];
        for op in ops {
            apply(&mut models, &mut reg, op);
            for e in 0..EXECUTORS {
                let epoch = reg.epoch(e);
                prop_assert!(
                    epoch >= high_water[e],
                    "epoch of executor {e} went backwards: {} -> {epoch}",
                    high_water[e]
                );
                high_water[e] = epoch;
                prop_assert_eq!(reg.current_conn(e), models[e].conn);
                // Probe every conn id the strategy can produce: exactly
                // the model's current conn is admitted, all else fenced.
                for conn in 1..6 {
                    let expect = if models[e].conn == Some(conn) {
                        Admission::Current
                    } else {
                        Admission::Stale
                    };
                    prop_assert_eq!(reg.admit(e, conn), expect);
                }
            }
        }
    }

    /// A fenced incarnation stays fenced: once a new conn registers, no
    /// later operation short of re-registering that old conn re-admits it.
    #[test]
    fn superseded_connections_never_regain_admission(
        old_conn in 1u64..6,
        delta in 1u64..5,
        later in prop::collection::vec(op_strategy(), 0..40)
    ) {
        // A distinct successor conn, derived rather than assumed.
        let new_conn = 1 + (old_conn - 1 + delta) % 5;
        let mut reg = EpochRegistry::new(EXECUTORS);
        let mut models = vec![Model::default(); EXECUTORS];
        apply(&mut models, &mut reg, Op::Register { executor: 0, conn: old_conn });
        apply(&mut models, &mut reg, Op::Register { executor: 0, conn: new_conn });
        for op in later {
            // Any later op except a fresh registration of old_conn itself,
            // which legitimately re-admits it.
            if matches!(op, Op::Register { executor: 0, conn } if conn == old_conn) {
                continue;
            }
            apply(&mut models, &mut reg, op);
            prop_assert_eq!(
                reg.admit(0, old_conn),
                Admission::Stale,
                "zombie conn {old_conn} was re-admitted"
            );
        }
    }

    /// Determinism: replaying one op sequence into two registries leaves
    /// them observably identical — the property the same-seed chaos rerun
    /// leans on.
    #[test]
    fn replaying_the_same_ops_yields_the_same_registry(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let mut a = EpochRegistry::new(EXECUTORS);
        let mut b = EpochRegistry::new(EXECUTORS);
        let mut model_a = vec![Model::default(); EXECUTORS];
        let mut model_b = vec![Model::default(); EXECUTORS];
        for &op in &ops {
            apply(&mut model_a, &mut a, op);
            apply(&mut model_b, &mut b, op);
        }
        for e in 0..EXECUTORS {
            prop_assert_eq!(a.epoch(e), b.epoch(e));
            prop_assert_eq!(a.current_conn(e), b.current_conn(e));
        }
    }

    /// Out-of-range executors are fenced, never a panic: garbage ids off
    /// the wire must not take the driver down.
    #[test]
    fn out_of_range_ids_are_fenced_not_fatal(executor in EXECUTORS..EXECUTORS + 8, conn in 1u64..6) {
        let reg = EpochRegistry::new(EXECUTORS);
        prop_assert_eq!(reg.admit(executor, conn), Admission::Stale);
        prop_assert_eq!(reg.epoch(executor), 0);
        prop_assert_eq!(reg.current_conn(executor), None);
    }
}
