//! Chaos tests: live Terasort under the seeded [`FaultPlan`].
//!
//! Each test arms one fault family (and the finale combines them, the
//! acceptance scenario): the job must still complete, and the recovery
//! machinery must leave its evidence on the flight recorder — fault
//! injections, lost executors, reincarnations — exactly where the
//! post-mortem tooling expects it. Every plan used here also passes the
//! *simulator's* validation, keeping the "one plan drives both runtimes"
//! contract honest.

use std::time::Duration;

use sae_dag::{FaultPlan, TraceEvent, WireDirection};
use sae_live::{terasort, ClusterConfig, LiveCluster, LiveEvent};

/// Cluster knobs tightened for test speed: fast heartbeats, fast loss
/// detection, short probation.
fn chaos_cluster(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig {
        executors: 3,
        heartbeat_interval: Duration::from_millis(50),
        heartbeat_timeout: Duration::from_millis(400),
        check_interval: Duration::from_millis(25),
        probation: Duration::from_millis(500),
        deadline: Duration::from_secs(60),
        fault_plan: plan,
        ..ClusterConfig::default()
    }
}

/// The ordered, timestamp-free recovery story of one run: which fault
/// windows opened, who was declared lost, who came back (and under which
/// epoch), what got fenced — *per executor*. Ordering is compared within
/// each executor's own timeline: concurrent events on different
/// executors' links have no defined mutual order, and the determinism
/// claim is per-executor sequence, not a global interleaving.
fn recovery_sequence(events: &[LiveEvent]) -> Vec<Vec<String>> {
    let mut per_exec: Vec<Vec<String>> = Vec::new();
    let mut note = |executor: usize, entry: String| {
        if per_exec.len() <= executor {
            per_exec.resize_with(executor + 1, Vec::new);
        }
        per_exec[executor].push(entry);
    };
    for ev in events {
        match ev {
            LiveEvent::FaultInjected { executor, kind, .. } => {
                note(*executor, format!("fault:{kind}"))
            }
            LiveEvent::Trace(TraceEvent::ExecutorFailed { executor, .. }) => {
                note(*executor, "lost".to_string())
            }
            LiveEvent::ExecutorReincarnated {
                executor, epoch, ..
            } => note(*executor, format!("reincarnated:e{epoch}")),
            LiveEvent::EpochFenced { executor, kind, .. } => {
                note(*executor, format!("fenced:{kind}"))
            }
            _ => {}
        }
    }
    per_exec
}

fn fault_kinds(events: &[LiveEvent]) -> Vec<&'static str> {
    events
        .iter()
        .filter_map(|ev| match ev {
            LiveEvent::FaultInjected { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect()
}

#[test]
fn throttled_link_completes_without_losing_the_executor() {
    let plan = FaultPlan::new(11).with_throttle(1, 0.2, 3.0, 4_000.0);
    plan.validate(3);
    let mut cluster = LiveCluster::launch(chaos_cluster(plan)).unwrap();
    let report = cluster.run(&terasort(24, 20_000, 42)).unwrap();
    let events = cluster.recorder().snapshot();
    // Throttling slows frames but must never look like death: 4 kB/s
    // still carries a heartbeat in well under the 400 ms timeout.
    assert!(
        report.lost_executors.is_empty(),
        "throttle must not kill executors, lost: {:?}",
        report.lost_executors
    );
    assert!(
        fault_kinds(&events).contains(&"throttle"),
        "window never opened"
    );
    let throttled = cluster.metrics().snapshot().counters["live.nemesis.frames_throttled"];
    assert!(throttled > 0, "no frames crossed the throttle window");
    cluster.shutdown().unwrap();
}

#[test]
fn partition_is_detected_then_heals_into_a_resurrection() {
    // 0.8 s of two-way silence on executor 2's link: two heartbeat
    // timeouts deep, so the driver must declare it lost — and then take
    // it back once frames flow again, without the socket ever closing.
    // The window opens early enough to fit inside the job even in a
    // release build, where the whole sort is over in under two seconds.
    let plan = FaultPlan::new(23).with_partition(2, 0.4, 0.8, WireDirection::Both);
    plan.validate(3);
    let mut cluster = LiveCluster::launch(chaos_cluster(plan)).unwrap();
    let report = cluster.run(&terasort(36, 30_000, 7)).unwrap();
    let events = cluster.recorder().snapshot();
    let lost_at = events.iter().find_map(|ev| match ev {
        LiveEvent::Trace(TraceEvent::ExecutorFailed { executor: 2, at }) => Some(*at),
        _ => None,
    });
    let back_at = events.iter().find_map(|ev| match ev {
        LiveEvent::ExecutorReincarnated {
            executor: 2, at, ..
        } => Some(*at),
        _ => None,
    });
    let lost_at = lost_at.expect("partitioned executor was never declared lost");
    let back_at = back_at.expect("healed executor was never resurrected");
    assert!(
        lost_at < back_at,
        "lost at {lost_at:.2}s must precede resurrection at {back_at:.2}s"
    );
    // The healed executor is back in the fleet at job end.
    assert!(report.registry[2].alive, "executor 2 should have rejoined");
    cluster.shutdown().unwrap();
}

#[test]
fn crashed_executor_reincarnates_and_the_job_completes() {
    // A real crash-and-rebirth: the chaos agent flips the kill switch at
    // t=0.4 s; the executor reincarnates after the plan's 0.6 s downtime
    // under a fresh registration epoch. The downtime deliberately exceeds
    // the 0.4 s heartbeat timeout so detection precedes the rebirth, and
    // the rebirth lands while release-build jobs still have work left.
    let plan = FaultPlan::new(31).with_crash(1, 0.4, 0.6);
    plan.validate(3);
    let mut cluster = LiveCluster::launch(chaos_cluster(plan)).unwrap();
    let report = cluster.run(&terasort(36, 30_000, 13)).unwrap();
    let events = cluster.recorder().snapshot();
    assert!(fault_kinds(&events).contains(&"crash"), "kill never fired");
    let epoch = events
        .iter()
        .find_map(|ev| match ev {
            LiveEvent::ExecutorReincarnated {
                executor: 1, epoch, ..
            } => Some(*epoch),
            _ => None,
        })
        .expect("crashed executor never reincarnated");
    assert!(epoch >= 2, "rebirth must open a later epoch, got {epoch}");
    let metrics = cluster.metrics().snapshot();
    assert!(metrics.counters["live.driver.reincarnations"] >= 1);
    assert!(report.registry[1].alive, "executor 1 should be back");
    cluster.shutdown().unwrap();
}

#[test]
fn corrupted_spill_is_detected_and_rebuilt_from_lineage() {
    // The chaos agent flips one byte of task 0's spill as soon as it
    // lands; the sort-stage reader must catch it on the checksum, fail
    // the attempt retryably, and regenerate the partition from lineage.
    let plan = FaultPlan::new(47).with_disk_fault(0, 0.0);
    plan.validate(3);
    let mut cluster = LiveCluster::launch(chaos_cluster(plan)).unwrap();
    let report = cluster.run(&terasort(24, 20_000, 99)).unwrap();
    let events = cluster.recorder().snapshot();
    assert!(
        fault_kinds(&events).contains(&"disk"),
        "corruption never landed"
    );
    let failed: usize = report.stages.iter().map(|s| s.failed_attempts).sum();
    assert!(
        failed >= 1,
        "the corrupted spill should have cost at least one attempt"
    );
    // Recovery means the job still finished every task.
    assert_eq!(report.stages.len(), 2);
    cluster.shutdown().unwrap();
}

#[test]
fn fleet_below_floor_parks_degraded_before_failing() {
    // One executor, killed after one task, nobody comes back: the driver
    // must park in Degraded for the bounded wait — visibly — and only
    // then give up.
    let mut cfg = chaos_cluster(FaultPlan::new(5));
    cfg.executors = 1;
    cfg.kill_after_tasks = vec![(0, 1)];
    cfg.degraded_wait = Duration::from_millis(700);
    let mut cluster = LiveCluster::launch(cfg).unwrap();
    let err = cluster.run(&terasort(12, 10_000, 3)).unwrap_err();
    let events = cluster.recorder().snapshot();
    assert!(
        events.iter().any(|ev| matches!(
            ev,
            LiveEvent::Degraded {
                live: 0,
                floor: 1,
                ..
            }
        )),
        "no Degraded event before failure: {err}"
    );
    // The post-mortem dump fired on the failure path.
    assert!(cluster.last_trace_path().is_some(), "no post-mortem dump");
    cluster.shutdown().unwrap();
}

/// The acceptance scenario: one seeded plan combining a crash (with
/// reincarnation), a transient two-way partition and a throttled link —
/// the job completes, every recovery transition is journaled, and the
/// same seed replays the same recovery story.
#[test]
fn standard_chaos_plan_completes_and_replays_deterministically() {
    let plan = || {
        FaultPlan::new(1234)
            .with_crash(1, 0.4, 0.6)
            .with_partition(2, 0.5, 0.8, WireDirection::Both)
            .with_throttle(0, 0.2, 2.0, 4_000.0)
    };
    plan().validate(3);

    let run = || {
        let mut cluster = LiveCluster::launch(chaos_cluster(plan())).unwrap();
        let report = cluster.run(&terasort(36, 30_000, 77)).unwrap();
        let events = cluster.recorder().snapshot();
        let seq = recovery_sequence(&events);
        cluster.shutdown().unwrap();
        (report, seq)
    };

    let (report, seq) = run();
    // All three fault families actually bit, each on its own executor…
    for (executor, needle) in [
        (0, "fault:throttle"),
        (1, "fault:crash"),
        (2, "fault:partition"),
    ] {
        assert!(
            seq.get(executor)
                .is_some_and(|s| s.iter().any(|e| e == needle)),
            "missing {needle} on executor {executor} in {seq:?}"
        );
    }
    // …the crashed executor and the partitioned executor both came back…
    for executor in [1, 2] {
        assert!(
            seq[executor].iter().any(|s| s.starts_with("reincarnated")),
            "executor {executor} never reincarnated: {seq:?}"
        );
    }
    // …and every task of both stages finished despite the weather.
    assert_eq!(report.stages.len(), 2);
    for stage in &report.stages {
        assert_eq!(stage.tasks, 36);
    }

    // Same seed, same job, same recovery story (timestamps aside).
    let (_, replay) = run();
    assert_eq!(
        seq, replay,
        "same-seed rerun told a different recovery story"
    );
}
