//! End-to-end job-server tests: real sockets, a real executor fleet, and
//! the HTTP control API exercised exactly as a client would.
//!
//! Each test binds a [`JobServer`] on ephemeral loopback ports, launches
//! in-thread [`LiveExecutor`]s against the wire port, runs the serve loop
//! on its own thread, and drives everything else through HTTP. The serve
//! loop is stopped with the config's programmatic stop flag (the same
//! path a SIGINT takes, minus the process-global signal latch).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sae_live::executor::LiveExecutorConfig;
use sae_live::server::{JobServer, ServerConfig, ServerReport};
use sae_live::{LiveExecutor, TempDir};
use sae_net::http::parse_response;

/// One HTTP request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control port");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: sae\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let (resp, _) = parse_response(&buf)
        .expect("well-formed response")
        .expect("complete response");
    (resp.status, resp.body_str())
}

/// Crude field extraction from the server's flat JSON bodies.
fn json_field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat).unwrap_or_else(|| {
        panic!("no field {key} in {body}");
    }) + pat.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if rest.starts_with('"') {
                *i > 0 && *c == '"'
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, _)| if rest.starts_with('"') { i + 1 } else { i })
        .unwrap_or(rest.len());
    rest[..end].trim_matches('"').to_string()
}

struct Harness {
    http_addr: SocketAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
    serve: thread::JoinHandle<std::io::Result<ServerReport>>,
    fleet: Vec<LiveExecutor>,
    _spill: TempDir,
}

impl Harness {
    fn launch(mut cfg: ServerConfig, executors: usize) -> Self {
        cfg.executors = executors;
        let stop = Arc::clone(&cfg.stop);
        let server = JobServer::bind(cfg).expect("bind server");
        let wire_addr = server.wire_addr().unwrap();
        let http_addr = server.http_addr().unwrap();
        let spill = TempDir::new("jobserver-e2e").unwrap();
        let fleet = (0..executors)
            .map(|id| {
                let dir = spill.path().join(format!("exec-{id}"));
                std::fs::create_dir_all(&dir).unwrap();
                LiveExecutor::launch(wire_addr, LiveExecutorConfig::new(id, dir))
            })
            .collect();
        let serve = thread::spawn(move || server.serve());
        Self {
            http_addr,
            stop,
            serve,
            fleet,
            _spill: spill,
        }
    }

    fn submit(&self, body: &str) -> (u16, String) {
        http(self.http_addr, "POST", "/jobs", body)
    }

    /// Polls `GET /jobs/:id` until the job reaches a terminal status.
    fn await_terminal(&self, id: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = http(self.http_addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "status poll failed: {body}");
            let state = json_field(&body, "status");
            if state != "queued" && state != "running" {
                return state;
            }
            assert!(Instant::now() < deadline, "job {id} never finished: {body}");
            thread::sleep(Duration::from_millis(20));
        }
    }

    fn shutdown(self) -> ServerReport {
        self.stop.store(true, Ordering::Relaxed);
        let report = self.serve.join().expect("serve thread").expect("serve ok");
        for exec in self.fleet {
            let _ = exec.join();
        }
        report
    }
}

#[test]
fn concurrent_jobs_complete_and_cancel_mid_stage() {
    let h = Harness::launch(ServerConfig::default(), 2);
    // Three concurrent jobs: two small ones that must complete, one big
    // enough to still be running when the DELETE lands.
    let (s1, b1) = h.submit(r#"{"tenant":"alice","tasks":4,"records_per_task":2000,"seed":1}"#);
    let (s2, b2) =
        h.submit(r#"{"tenant":"bob","weight":4,"tasks":4,"records_per_task":2000,"seed":2}"#);
    let (s3, b3) = h.submit(r#"{"tenant":"carol","tasks":8,"records_per_task":200000,"seed":3}"#);
    assert_eq!((s1, s2, s3), (201, 201, 201), "{b1} {b2} {b3}");
    let (id1, id2, id3) = (
        json_field(&b1, "job"),
        json_field(&b2, "job"),
        json_field(&b3, "job"),
    );

    // Cancel the big job while its first stage is in flight.
    let (sc, bc) = http(h.http_addr, "DELETE", &format!("/jobs/{id3}"), "");
    assert_eq!(sc, 200, "{bc}");
    assert_eq!(json_field(&bc, "status"), "cancelled");
    // A second cancel is a conflict: the job is already terminal.
    let (sc2, _) = http(h.http_addr, "DELETE", &format!("/jobs/{id3}"), "");
    assert_eq!(sc2, 409);

    // The survivors complete despite the mid-flight cancellation.
    assert_eq!(h.await_terminal(&id1), "completed");
    assert_eq!(h.await_terminal(&id2), "completed");

    // Per-job journals: completed jobs record every stage and task of
    // their own history, the cancelled one records where it stopped.
    let (sj, journal1) = http(h.http_addr, "GET", &format!("/jobs/{id1}/journal"), "");
    assert_eq!(sj, 200);
    assert!(journal1.contains("\"event\":\"submitted\""), "{journal1}");
    assert!(
        journal1.contains("\"event\":\"stage-end\",\"stage\":1"),
        "{journal1}"
    );
    assert!(journal1.contains("\"event\":\"completed\""), "{journal1}");
    assert_eq!(
        journal1.matches("\"event\":\"task\"").count(),
        8,
        "4 tasks x 2 stages: {journal1}"
    );
    let (_, journal3) = http(h.http_addr, "GET", &format!("/jobs/{id3}/journal"), "");
    assert!(journal3.contains("\"event\":\"cancelled\""), "{journal3}");
    assert!(!journal3.contains("\"event\":\"completed\""), "{journal3}");

    // The report endpoint knows stage structure and durations.
    let (sr, report) = http(h.http_addr, "GET", &format!("/jobs/{id2}/report"), "");
    assert_eq!(sr, 200);
    assert!(report.contains("\"kind\":\"spill\""), "{report}");
    assert!(report.contains("\"kind\":\"sort\""), "{report}");

    // Metrics carry per-tenant labels.
    let (sm, metrics) = http(h.http_addr, "GET", "/metrics", "");
    assert_eq!(sm, 200);
    assert!(
        metrics.contains("tenant=\"alice\""),
        "no tenant labels in:\n{metrics}"
    );

    let report = h.shutdown();
    assert_eq!(report.jobs.len(), 3);
    let cancelled = report
        .jobs
        .iter()
        .filter(|j| j.status == sae_live::JobStatus::Cancelled)
        .count();
    assert_eq!(cancelled, 1);
}

#[test]
fn same_submission_schedule_yields_bit_identical_journals() {
    let h = Harness::launch(ServerConfig::default(), 2);
    let spec = r#"{"name":"det","tenant":"alice","tasks":4,"records_per_task":1000,"seed":7}"#;
    let mut journals = Vec::new();
    for _ in 0..2 {
        let (s, b) = h.submit(spec);
        assert_eq!(s, 201, "{b}");
        let id = json_field(&b, "job");
        assert_eq!(h.await_terminal(&id), "completed");
        let (_, journal) = http(h.http_addr, "GET", &format!("/jobs/{id}/journal"), "");
        journals.push(journal);
    }
    assert_eq!(
        journals[0], journals[1],
        "journals must not depend on timing, placement, or job ids"
    );
    h.shutdown();
}

#[test]
fn admission_control_queues_then_rejects() {
    let cfg = ServerConfig {
        max_active: 1,
        max_queued: 1,
        ..ServerConfig::default()
    };
    let h = Harness::launch(cfg, 1);
    // Big enough to hold the single active slot while we probe admission.
    let big = r#"{"tasks":4,"records_per_task":200000}"#;
    let (s1, b1) = h.submit(big);
    assert_eq!(s1, 201);
    assert_eq!(json_field(&b1, "status"), "running");
    let (s2, b2) = h.submit(big);
    assert_eq!(s2, 201, "{b2}");
    assert_eq!(json_field(&b2, "status"), "queued", "{b2}");
    // Active slot taken, queue full: the third submission bounces.
    let (s3, b3) = h.submit(big);
    assert_eq!(s3, 429, "{b3}");
    h.shutdown();
}

#[test]
fn drain_stops_admission_and_serves_status_while_draining() {
    let cfg = ServerConfig {
        shutdown_drain: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let h = Harness::launch(cfg, 1);
    let (s1, b1) = h.submit(r#"{"tasks":4,"records_per_task":300000}"#);
    assert_eq!(s1, 201);
    let id = json_field(&b1, "job");
    // Flip the stop flag: the next tick begins the drain.
    h.stop.store(true, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http(h.http_addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        if body.contains("\"draining\":true") {
            break;
        }
        assert!(Instant::now() < deadline, "server never started draining");
        thread::sleep(Duration::from_millis(10));
    }
    // Draining: status queries still answered, submissions refused.
    let (sq, _) = http(h.http_addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(sq, 200);
    let (sp, bp) = h.submit(r#"{"tasks":1,"records_per_task":10}"#);
    assert_eq!(sp, 503, "{bp}");
    // The running job gets its drain window and finishes cleanly.
    let report = h.shutdown();
    let job = &report.jobs[0];
    assert_eq!(
        job.status,
        sae_live::JobStatus::Completed,
        "{:?}",
        job.status
    );
    assert!(job.journal.contains("\"event\":\"completed\""));
}

#[test]
fn unknown_routes_and_methods_are_mapped() {
    let h = Harness::launch(ServerConfig::default(), 1);
    assert_eq!(http(h.http_addr, "GET", "/nope", "").0, 404);
    assert_eq!(http(h.http_addr, "GET", "/jobs/999", "").0, 404);
    assert_eq!(http(h.http_addr, "PUT", "/jobs", "{}").0, 405);
    assert_eq!(http(h.http_addr, "POST", "/jobs", "not json").0, 400);
    let (s, body) = http(h.http_addr, "GET", "/healthz", "");
    assert_eq!(s, 200);
    assert!(body.contains("\"ok\""));
    h.shutdown();
}
