//! End-to-end job-server tests: real sockets, a real executor fleet, and
//! the HTTP control API exercised exactly as a client would.
//!
//! Each test binds a [`JobServer`] on ephemeral loopback ports, launches
//! in-thread [`LiveExecutor`]s against the wire port, runs the serve loop
//! on its own thread, and drives everything else through HTTP. The serve
//! loop is stopped with the config's programmatic stop flag (the same
//! path a SIGINT takes, minus the process-global signal latch).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sae_live::executor::LiveExecutorConfig;
use sae_live::server::{JobServer, ServerConfig, ServerReport};
use sae_live::{LiveExecutor, TempDir};
use sae_net::http::parse_response;
use sae_net::sse::{ChunkedDecoder, SseFrame, SseParser};

/// One HTTP request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control port");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: sae\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    let (resp, _) = parse_response(&buf)
        .expect("well-formed response")
        .expect("complete response");
    (resp.status, resp.body_str())
}

/// Crude field extraction from the server's flat JSON bodies.
fn json_field(body: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let start = body.find(&pat).unwrap_or_else(|| {
        panic!("no field {key} in {body}");
    }) + pat.len();
    let rest = &body[start..];
    let end = rest
        .char_indices()
        .find(|(i, c)| {
            if rest.starts_with('"') {
                *i > 0 && *c == '"'
            } else {
                *c == ',' || *c == '}'
            }
        })
        .map(|(i, _)| if rest.starts_with('"') { i + 1 } else { i })
        .unwrap_or(rest.len());
    rest[..end].trim_matches('"').to_string()
}

/// Opens `GET {path}` as a streaming SSE client and collects frames until
/// `done` returns true for one or the server closes the stream. The
/// request is written immediately; `done` runs on every frame as it
/// arrives, so a test can react mid-stream (e.g. submit a job once the
/// subscription is live).
fn sse_collect(
    addr: SocketAddr,
    path: &str,
    extra_headers: &str,
    mut done: impl FnMut(&SseFrame) -> bool,
) -> Vec<SseFrame> {
    let mut stream = TcpStream::connect(addr).expect("connect control port");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let req = format!(
        "GET {path} HTTP/1.1\r\nHost: sae\r\nAccept: text/event-stream\r\n{extra_headers}\r\n"
    );
    stream.write_all(req.as_bytes()).expect("write request");

    let deadline = Instant::now() + Duration::from_secs(60);
    let idle = |e: &std::io::Error| {
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
                | std::io::ErrorKind::Interrupted
        )
    };
    let mut raw = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(p) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        assert!(Instant::now() < deadline, "no response head for {path}");
        match stream.read(&mut buf) {
            Ok(0) => panic!("closed before head: {}", String::from_utf8_lossy(&raw)),
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e) if idle(&e) => {}
            Err(e) => panic!("read: {e}"),
        }
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).to_string();
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/event-stream"),
        "{head}"
    );

    let mut decoder = ChunkedDecoder::new();
    let mut parser = SseParser::new();
    decoder.extend(&raw[head_end..]);
    let mut frames = Vec::new();
    let mut eof = false;
    loop {
        while let Some(chunk) = decoder.next_chunk().expect("well-formed chunking") {
            parser.extend(&chunk);
        }
        while let Some(frame) = parser.next_frame() {
            let stop = done(&frame);
            frames.push(frame);
            if stop {
                return frames;
            }
        }
        if decoder.finished() || eof {
            return frames;
        }
        assert!(
            Instant::now() < deadline,
            "stream {path} never produced the awaited frame; got {frames:?}"
        );
        match stream.read(&mut buf) {
            Ok(0) => eof = true,
            Ok(n) => decoder.extend(&buf[..n]),
            Err(e) if idle(&e) => {}
            Err(e) => panic!("read: {e}"),
        }
    }
}

struct Harness {
    http_addr: SocketAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
    serve: thread::JoinHandle<std::io::Result<ServerReport>>,
    fleet: Vec<LiveExecutor>,
    _spill: TempDir,
}

impl Harness {
    fn launch(mut cfg: ServerConfig, executors: usize) -> Self {
        cfg.executors = executors;
        let stop = Arc::clone(&cfg.stop);
        let server = JobServer::bind(cfg).expect("bind server");
        let wire_addr = server.wire_addr().unwrap();
        let http_addr = server.http_addr().unwrap();
        let spill = TempDir::new("jobserver-e2e").unwrap();
        let fleet = (0..executors)
            .map(|id| {
                let dir = spill.path().join(format!("exec-{id}"));
                std::fs::create_dir_all(&dir).unwrap();
                LiveExecutor::launch(wire_addr, LiveExecutorConfig::new(id, dir))
            })
            .collect();
        let serve = thread::spawn(move || server.serve());
        Self {
            http_addr,
            stop,
            serve,
            fleet,
            _spill: spill,
        }
    }

    fn submit(&self, body: &str) -> (u16, String) {
        http(self.http_addr, "POST", "/jobs", body)
    }

    /// Polls `GET /jobs/:id` until the job reaches a terminal status.
    fn await_terminal(&self, id: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = http(self.http_addr, "GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "status poll failed: {body}");
            let state = json_field(&body, "status");
            if state != "queued" && state != "running" {
                return state;
            }
            assert!(Instant::now() < deadline, "job {id} never finished: {body}");
            thread::sleep(Duration::from_millis(20));
        }
    }

    fn shutdown(self) -> ServerReport {
        self.stop.store(true, Ordering::Relaxed);
        let report = self.serve.join().expect("serve thread").expect("serve ok");
        for exec in self.fleet {
            let _ = exec.join();
        }
        report
    }
}

#[test]
fn concurrent_jobs_complete_and_cancel_mid_stage() {
    let h = Harness::launch(ServerConfig::default(), 2);
    // Three concurrent jobs: two small ones that must complete, one big
    // enough to still be running when the DELETE lands.
    let (s1, b1) = h.submit(r#"{"tenant":"alice","tasks":4,"records_per_task":2000,"seed":1}"#);
    let (s2, b2) =
        h.submit(r#"{"tenant":"bob","weight":4,"tasks":4,"records_per_task":2000,"seed":2}"#);
    let (s3, b3) = h.submit(r#"{"tenant":"carol","tasks":8,"records_per_task":200000,"seed":3}"#);
    assert_eq!((s1, s2, s3), (201, 201, 201), "{b1} {b2} {b3}");
    let (id1, id2, id3) = (
        json_field(&b1, "job"),
        json_field(&b2, "job"),
        json_field(&b3, "job"),
    );

    // Cancel the big job while its first stage is in flight.
    let (sc, bc) = http(h.http_addr, "DELETE", &format!("/jobs/{id3}"), "");
    assert_eq!(sc, 200, "{bc}");
    assert_eq!(json_field(&bc, "status"), "cancelled");
    // A second cancel is a conflict: the job is already terminal.
    let (sc2, _) = http(h.http_addr, "DELETE", &format!("/jobs/{id3}"), "");
    assert_eq!(sc2, 409);

    // The survivors complete despite the mid-flight cancellation.
    assert_eq!(h.await_terminal(&id1), "completed");
    assert_eq!(h.await_terminal(&id2), "completed");

    // Per-job journals: completed jobs record every stage and task of
    // their own history, the cancelled one records where it stopped.
    let (sj, journal1) = http(h.http_addr, "GET", &format!("/jobs/{id1}/journal"), "");
    assert_eq!(sj, 200);
    assert!(journal1.contains("\"event\":\"submitted\""), "{journal1}");
    assert!(
        journal1.contains("\"event\":\"stage-end\",\"stage\":1"),
        "{journal1}"
    );
    assert!(journal1.contains("\"event\":\"completed\""), "{journal1}");
    assert_eq!(
        journal1.matches("\"event\":\"task\"").count(),
        8,
        "4 tasks x 2 stages: {journal1}"
    );
    let (_, journal3) = http(h.http_addr, "GET", &format!("/jobs/{id3}/journal"), "");
    assert!(journal3.contains("\"event\":\"cancelled\""), "{journal3}");
    assert!(!journal3.contains("\"event\":\"completed\""), "{journal3}");

    // The report endpoint knows stage structure and durations.
    let (sr, report) = http(h.http_addr, "GET", &format!("/jobs/{id2}/report"), "");
    assert_eq!(sr, 200);
    assert!(report.contains("\"kind\":\"spill\""), "{report}");
    assert!(report.contains("\"kind\":\"sort\""), "{report}");

    // Metrics carry per-tenant labels.
    let (sm, metrics) = http(h.http_addr, "GET", "/metrics", "");
    assert_eq!(sm, 200);
    assert!(
        metrics.contains("tenant=\"alice\""),
        "no tenant labels in:\n{metrics}"
    );

    let report = h.shutdown();
    assert_eq!(report.jobs.len(), 3);
    let cancelled = report
        .jobs
        .iter()
        .filter(|j| j.status == sae_live::JobStatus::Cancelled)
        .count();
    assert_eq!(cancelled, 1);
}

#[test]
fn same_submission_schedule_yields_bit_identical_journals() {
    let h = Harness::launch(ServerConfig::default(), 2);
    let spec = r#"{"name":"det","tenant":"alice","tasks":4,"records_per_task":1000,"seed":7}"#;
    let mut journals = Vec::new();
    for _ in 0..2 {
        let (s, b) = h.submit(spec);
        assert_eq!(s, 201, "{b}");
        let id = json_field(&b, "job");
        assert_eq!(h.await_terminal(&id), "completed");
        let (_, journal) = http(h.http_addr, "GET", &format!("/jobs/{id}/journal"), "");
        journals.push(journal);
    }
    assert_eq!(
        journals[0], journals[1],
        "journals must not depend on timing, placement, or job ids"
    );
    h.shutdown();
}

#[test]
fn admission_control_queues_then_rejects() {
    let cfg = ServerConfig {
        max_active: 1,
        max_queued: 1,
        ..ServerConfig::default()
    };
    let h = Harness::launch(cfg, 1);
    // Big enough to hold the single active slot while we probe admission.
    let big = r#"{"tasks":4,"records_per_task":200000}"#;
    let (s1, b1) = h.submit(big);
    assert_eq!(s1, 201);
    assert_eq!(json_field(&b1, "status"), "running");
    let (s2, b2) = h.submit(big);
    assert_eq!(s2, 201, "{b2}");
    assert_eq!(json_field(&b2, "status"), "queued", "{b2}");
    // Active slot taken, queue full: the third submission bounces.
    let (s3, b3) = h.submit(big);
    assert_eq!(s3, 429, "{b3}");
    h.shutdown();
}

#[test]
fn drain_stops_admission_and_serves_status_while_draining() {
    let cfg = ServerConfig {
        shutdown_drain: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let h = Harness::launch(cfg, 1);
    let (s1, b1) = h.submit(r#"{"tasks":4,"records_per_task":300000}"#);
    assert_eq!(s1, 201);
    let id = json_field(&b1, "job");
    // Flip the stop flag: the next tick begins the drain.
    h.stop.store(true, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http(h.http_addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        if body.contains("\"draining\":true") {
            break;
        }
        assert!(Instant::now() < deadline, "server never started draining");
        thread::sleep(Duration::from_millis(10));
    }
    // Draining: status queries still answered, submissions refused.
    let (sq, _) = http(h.http_addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(sq, 200);
    let (sp, bp) = h.submit(r#"{"tasks":1,"records_per_task":10}"#);
    assert_eq!(sp, 503, "{bp}");
    // The running job gets its drain window and finishes cleanly.
    let report = h.shutdown();
    let job = &report.jobs[0];
    assert_eq!(
        job.status,
        sae_live::JobStatus::Completed,
        "{:?}",
        job.status
    );
    assert!(job.journal.contains("\"event\":\"completed\""));
}

#[test]
fn streamed_job_events_match_the_final_journal() {
    let h = Harness::launch(ServerConfig::default(), 2);
    let (s, b) = h.submit(r#"{"tenant":"alice","tasks":4,"records_per_task":2000,"seed":11}"#);
    assert_eq!(s, 201, "{b}");
    let id = json_field(&b, "job");

    // Follow the job's stream to its `end` frame. The stream replays the
    // journal from line 0, follows it live, and closes after the job's
    // terminal record — so every line passes through exactly once.
    let path = format!("/jobs/{id}/events");
    let frames = sse_collect(h.http_addr, &path, "", |f| {
        f.event.as_deref() == Some("end")
    });
    let end = frames.last().expect("at least the end frame");
    assert_eq!(
        end.event.as_deref(),
        Some("end"),
        "no end frame: {frames:?}"
    );
    assert!(
        end.data.contains("\"status\":\"completed\""),
        "{}",
        end.data
    );

    // The `journal` frames, in id order, joined with the journal's own
    // newlines, must reproduce the journal bit for bit.
    let journal_frames: Vec<&SseFrame> = frames
        .iter()
        .filter(|f| f.event.as_deref() == Some("journal"))
        .collect();
    for (i, f) in journal_frames.iter().enumerate() {
        assert_eq!(
            f.id.as_deref(),
            Some(i.to_string().as_str()),
            "journal event ids must be dense line numbers"
        );
    }
    let streamed: String = journal_frames
        .iter()
        .map(|f| format!("{}\n", f.data))
        .collect();
    let (sj, journal) = http(h.http_addr, "GET", &format!("/jobs/{id}/journal"), "");
    assert_eq!(sj, 200);
    assert_eq!(
        streamed, journal,
        "streamed events must match the journal record for record"
    );

    // `Last-Event-ID: 2` resumes after line 2: the reconnect receives
    // exactly the remainder, ids picking up at 3.
    let resumed = sse_collect(h.http_addr, &path, "Last-Event-ID: 2\r\n", |f| {
        f.event.as_deref() == Some("end")
    });
    let tail_frames: Vec<&SseFrame> = resumed
        .iter()
        .filter(|f| f.event.as_deref() == Some("journal"))
        .collect();
    assert_eq!(tail_frames[0].id.as_deref(), Some("3"));
    let tail: String = tail_frames
        .iter()
        .map(|f| format!("{}\n", f.data))
        .collect();
    let skipped: usize = journal.lines().take(3).map(|l| l.len() + 1).sum();
    assert_eq!(tail, journal[skipped..], "resume must start at line 3");

    h.shutdown();
}

#[test]
fn cluster_stream_carries_lifecycle_journal_and_metrics() {
    let h = Harness::launch(ServerConfig::default(), 2);

    // Subscribe first, submit from inside the stream (on the snapshot
    // frame that arrives with the response head), and follow until the
    // job's `completed` status event goes by.
    let mut id = String::new();
    let frames = sse_collect(h.http_addr, "/events", "", |f| {
        if id.is_empty() {
            assert_eq!(
                f.event.as_deref(),
                Some("metrics"),
                "a fresh subscriber leads with a metrics snapshot: {f:?}"
            );
            let (s, b) = h.submit(r#"{"tenant":"bob","tasks":4,"records_per_task":2000,"seed":5}"#);
            assert_eq!(s, 201, "{b}");
            id = json_field(&b, "job");
        }
        f.event.as_deref() == Some("status") && f.data.contains("\"status\":\"completed\"")
    });

    // Lifecycle made it through with tenant attribution.
    let statuses: Vec<&str> = frames
        .iter()
        .filter(|f| f.event.as_deref() == Some("status"))
        .map(|f| f.data.as_str())
        .collect();
    assert!(
        statuses.iter().all(|d| d.contains("\"tenant\":\"bob\"")),
        "{statuses:?}"
    );
    assert!(
        statuses
            .last()
            .unwrap()
            .contains("\"status\":\"completed\""),
        "{statuses:?}"
    );

    // Task spans streamed in during the run (the incremental trace feed).
    let spans = frames
        .iter()
        .filter(|f| f.event.as_deref() == Some("span"))
        .count();
    assert!(
        spans >= 8,
        "4 tasks x 2 stages should stream spans: {spans}"
    );

    // The journal mirror: extracting `record` from every journal frame
    // for this job reproduces the journal the server kept.
    let prefix = format!("{{\"job\":{id},");
    let mirrored: String = frames
        .iter()
        .filter(|f| f.event.as_deref() == Some("journal") && f.data.starts_with(&prefix))
        .map(|f| {
            let rec = f.data.find("\"record\":").expect("record field") + "\"record\":".len();
            format!("{}\n", &f.data[rec..f.data.len() - 1])
        })
        .collect();
    let (sj, journal) = http(h.http_addr, "GET", &format!("/jobs/{id}/journal"), "");
    assert_eq!(sj, 200);
    assert_eq!(mirrored, journal, "cluster mirror must match the journal");

    // Recorder-fed frames carry its monotone sequence numbers as ids
    // (metrics frames are synthesised server-side and carry none).
    let ids: Vec<u64> = frames
        .iter()
        .filter_map(|f| f.id.as_deref())
        .map(|id| id.parse().unwrap())
        .collect();
    assert!(!ids.is_empty(), "no recorder-fed frames at all");
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "ids must be strictly increasing: {ids:?}"
    );

    h.shutdown();
}

#[test]
fn unknown_routes_and_methods_are_mapped() {
    let h = Harness::launch(ServerConfig::default(), 1);
    assert_eq!(http(h.http_addr, "GET", "/nope", "").0, 404);
    assert_eq!(http(h.http_addr, "GET", "/jobs/999", "").0, 404);
    assert_eq!(http(h.http_addr, "PUT", "/jobs", "{}").0, 405);
    assert_eq!(http(h.http_addr, "POST", "/jobs", "not json").0, 400);
    let (s, body) = http(h.http_addr, "GET", "/healthz", "");
    assert_eq!(s, 200);
    assert!(body.contains("\"ok\""));
    h.shutdown();
}
