//! The live runtime's control envelope over the `sae-dag` frame codec.
//!
//! Core protocol traffic ([`Message`]) is carried verbatim: a [`Frame::Core`]
//! body is one envelope tag byte followed by exactly the bytes
//! [`sae_dag::codec::encode_body`] produces, so the §5.4 messages have one
//! encoding whether they travel through the simulator's mailboxes or a TCP
//! socket. The envelope adds only what a real cluster needs around them —
//! executor registration, stage dissemination, task completion, shutdown —
//! in the same `[tag u8][u64 BE]*` style, framed by the same
//! `[u32 BE length]` prefix ([`sae_dag::codec::split_frame`]).
//!
//! Like the core codec, decoding is total: malformed bytes produce a
//! [`FrameError`], never a panic, and a partial buffer reports "need more
//! bytes" so [`FrameReader`] can keep streaming.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use sae_dag::codec::{self, FrameError, TraceKey, LEN_PREFIX};
use sae_dag::Message;

use crate::job::LiveStageKind;

/// Envelope tag: a core [`Message`] body follows.
const TAG_CORE: u8 = 0x10;
/// Envelope tag: executor registration.
const TAG_REGISTER: u8 = 0x11;
/// Envelope tag: stage dissemination from the driver.
const TAG_STAGE_START: u8 = 0x12;
/// Envelope tag: successful task completion.
const TAG_TASK_FINISHED: u8 = 0x13;
/// Envelope tag: driver tells executors the job is over.
const TAG_SHUTDOWN: u8 = 0x14;
/// Envelope tag: driver tells executors a peer was declared lost.
const TAG_FAULT_NOTICE: u8 = 0x15;
/// Envelope tag: the job server announces one job's stage.
const TAG_JOB_STAGE_START: u8 = 0x16;
/// Envelope tag: the job server assigns one task of one job.
const TAG_ASSIGN_JOB_TASK: u8 = 0x17;
/// Envelope tag: an executor reports a job-task attempt's outcome.
const TAG_JOB_TASK_OUTCOME: u8 = 0x18;
/// Envelope tag: the job server retires a job (completed or cancelled).
const TAG_JOB_END: u8 = 0x19;
/// Envelope tag: an executor reports one task attempt's execution span,
/// stamped with its full trace key.
const TAG_TASK_SPAN: u8 = 0x1A;
/// Envelope tag: an executor streams one closed MAPE-K interval's ζ.
const TAG_ZETA_SAMPLE: u8 = 0x1B;

/// One unit of driver↔executor traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// A core protocol message, exactly as the simulated engine sends it.
    Core(Message),
    /// First frame on every executor connection: who I am, how many slots
    /// I start with (the pool's initial thread count).
    Register {
        /// Executor id (dense, `0..n`).
        executor: usize,
        /// Initial slot count.
        slots: usize,
    },
    /// The driver announces a stage; executors reset probes and pools.
    StageStart {
        /// Stage index within the job.
        stage: usize,
        /// What the stage's tasks do.
        kind: LiveStageKind,
        /// Number of tasks in the stage.
        tasks: usize,
        /// Records each task generates or sorts.
        records_per_task: usize,
        /// Base RNG seed for the stage's data.
        seed: u64,
        /// Per-executor task-count hint fed to the MAPE-K controller.
        hint: usize,
    },
    /// An executor reports a task attempt succeeded.
    TaskFinished {
        /// Task id.
        task: usize,
        /// Reporting executor.
        executor: usize,
        /// Attempt ordinal (0-based).
        attempt: usize,
    },
    /// The driver is done; executors drain and exit.
    Shutdown,
    /// The driver declared an executor lost and is redistributing its
    /// work. Surviving executors poison their current MAPE-K monitoring
    /// interval on receipt: measurements taken while a peer's tasks flood
    /// in do not describe the configured workload, so ζ comparisons over
    /// them would mislead the climb.
    FaultNotice {
        /// The executor that was declared lost.
        executor: usize,
    },
    /// The job server announces one job's current stage. Unlike
    /// [`Frame::StageStart`] this does not reset the executor's pool or
    /// probes — many jobs run interleaved on one fleet, so per-stage
    /// resets would thrash the MAPE-K controller; it only installs the
    /// stage parameters task assignments for `job` will reference.
    JobStageStart {
        /// Server-assigned job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// What the stage's tasks do.
        kind: LiveStageKind,
        /// Number of tasks in the stage.
        tasks: usize,
        /// Records each task generates or sorts.
        records_per_task: usize,
        /// Base RNG seed for the stage's data.
        seed: u64,
    },
    /// The job server assigns one task of one job's current stage.
    AssignJobTask {
        /// Job the task belongs to.
        job: u64,
        /// Task id within the job's current stage.
        task: usize,
    },
    /// An executor reports a job-task attempt finished (success or
    /// failure — the multi-job analogue of [`Frame::TaskFinished`] and
    /// `Message::TaskFailed` in one frame).
    JobTaskOutcome {
        /// Job the task belongs to.
        job: u64,
        /// Task id within the job's stage.
        task: usize,
        /// Reporting executor.
        executor: usize,
        /// Attempt ordinal (0-based).
        attempt: usize,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// The job server retires a job: completed, failed, or cancelled.
    /// Executors drop the job's stage entry; in-flight attempts of the
    /// job report their outcome and are ignored server-side.
    JobEnd {
        /// The retired job.
        job: u64,
    },
    /// An executor reports one task attempt's execution span, stamped
    /// with the full cross-process trace key. Pure telemetry: the
    /// receiver merges it into the live Perfetto timeline but never
    /// schedules off it (outcome frames remain the control path).
    TaskSpan {
        /// The (job, stage, task, attempt, epoch) correlation key.
        key: TraceKey,
        /// The executor that ran the attempt.
        executor: usize,
        /// Span start as [`f64::to_bits`] seconds since the executor's
        /// recorder epoch (bits, so the frame stays `Eq` and the value
        /// round-trips exactly).
        start_bits: u64,
        /// Span end, encoded like `start_bits`.
        end_bits: u64,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// An executor streams one closed MAPE-K monitoring interval's ζ
    /// decision record as it happens, instead of (only) replaying the
    /// whole decision journal at shutdown. Receivers count admitted
    /// samples per executor so the shutdown-time replay skips what
    /// already streamed.
    ZetaSample {
        /// The reporting executor.
        executor: usize,
        /// Pool threads when the interval closed.
        threads: usize,
        /// ζ for the interval, as [`f64::to_bits`].
        zeta_bits: u64,
        /// Interval close time (seconds since the executor's recorder
        /// epoch), as [`f64::to_bits`].
        at_bits: u64,
    },
}

impl Frame {
    /// A short static name for the frame kind, used as the label of
    /// wire-level flight-recorder events and metrics.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Frame::Core(Message::AssignTask { .. }) => "assign-task",
            Frame::Core(Message::PoolSizeChanged { .. }) => "pool-size-changed",
            Frame::Core(Message::Heartbeat { .. }) => "heartbeat",
            Frame::Core(Message::TaskFailed { .. }) => "task-failed",
            Frame::Register { .. } => "register",
            Frame::StageStart { .. } => "stage-start",
            Frame::TaskFinished { .. } => "task-finished",
            Frame::Shutdown => "shutdown",
            Frame::FaultNotice { .. } => "fault-notice",
            Frame::JobStageStart { .. } => "job-stage-start",
            Frame::AssignJobTask { .. } => "assign-job-task",
            Frame::JobTaskOutcome { .. } => "job-task-outcome",
            Frame::JobEnd { .. } => "job-end",
            Frame::TaskSpan { .. } => "task-span",
            Frame::ZetaSample { .. } => "zeta-sample",
        }
    }

    /// Appends this frame, length prefix included, to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let len_at = out.len();
        out.extend_from_slice(&[0; LEN_PREFIX]);
        self.encode_body(out);
        let body_len = out.len() - len_at - LEN_PREFIX;
        out[len_at..len_at + LEN_PREFIX].copy_from_slice(&(body_len as u32).to_be_bytes());
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match *self {
            Frame::Core(msg) => {
                out.push(TAG_CORE);
                codec::encode_body(&msg, out);
            }
            Frame::Register { executor, slots } => {
                out.push(TAG_REGISTER);
                codec::put_u64(out, executor as u64);
                codec::put_u64(out, slots as u64);
            }
            Frame::StageStart {
                stage,
                kind,
                tasks,
                records_per_task,
                seed,
                hint,
            } => {
                out.push(TAG_STAGE_START);
                codec::put_u64(out, stage as u64);
                codec::put_u64(out, kind.to_wire());
                codec::put_u64(out, tasks as u64);
                codec::put_u64(out, records_per_task as u64);
                codec::put_u64(out, seed);
                codec::put_u64(out, hint as u64);
            }
            Frame::TaskFinished {
                task,
                executor,
                attempt,
            } => {
                out.push(TAG_TASK_FINISHED);
                codec::put_u64(out, task as u64);
                codec::put_u64(out, executor as u64);
                codec::put_u64(out, attempt as u64);
            }
            Frame::Shutdown => out.push(TAG_SHUTDOWN),
            Frame::FaultNotice { executor } => {
                out.push(TAG_FAULT_NOTICE);
                codec::put_u64(out, executor as u64);
            }
            Frame::JobStageStart {
                job,
                stage,
                kind,
                tasks,
                records_per_task,
                seed,
            } => {
                out.push(TAG_JOB_STAGE_START);
                codec::put_u64(out, job);
                codec::put_u64(out, stage as u64);
                codec::put_u64(out, kind.to_wire());
                codec::put_u64(out, tasks as u64);
                codec::put_u64(out, records_per_task as u64);
                codec::put_u64(out, seed);
            }
            Frame::AssignJobTask { job, task } => {
                out.push(TAG_ASSIGN_JOB_TASK);
                codec::put_u64(out, job);
                codec::put_u64(out, task as u64);
            }
            Frame::JobTaskOutcome {
                job,
                task,
                executor,
                attempt,
                ok,
            } => {
                out.push(TAG_JOB_TASK_OUTCOME);
                codec::put_u64(out, job);
                codec::put_u64(out, task as u64);
                codec::put_u64(out, executor as u64);
                codec::put_u64(out, attempt as u64);
                codec::put_u64(out, ok as u64);
            }
            Frame::JobEnd { job } => {
                out.push(TAG_JOB_END);
                codec::put_u64(out, job);
            }
            Frame::TaskSpan {
                key,
                executor,
                start_bits,
                end_bits,
                ok,
            } => {
                out.push(TAG_TASK_SPAN);
                key.encode(out);
                codec::put_u64(out, executor as u64);
                codec::put_u64(out, start_bits);
                codec::put_u64(out, end_bits);
                codec::put_u64(out, ok as u64);
            }
            Frame::ZetaSample {
                executor,
                threads,
                zeta_bits,
                at_bits,
            } => {
                out.push(TAG_ZETA_SAMPLE);
                codec::put_u64(out, executor as u64);
                codec::put_u64(out, threads as u64);
                codec::put_u64(out, zeta_bits);
                codec::put_u64(out, at_bits);
            }
        }
    }

    /// Decodes the first complete frame in `buf`, returning it and the
    /// bytes consumed, or `Ok(None)` when more bytes are needed.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, FrameError> {
        match codec::split_frame(buf)? {
            Some((body, consumed)) => Ok(Some((Self::decode_body(body)?, consumed))),
            None => Ok(None),
        }
    }

    fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let &tag = body
            .first()
            .ok_or(FrameError::Truncated { needed: 1, got: 0 })?;
        match tag {
            TAG_CORE => Ok(Frame::Core(codec::decode_body(&body[1..])?)),
            TAG_REGISTER => {
                expect_len(body, 2)?;
                Ok(Frame::Register {
                    executor: codec::get_usize(body, 1)?,
                    slots: codec::get_usize(body, 9)?,
                })
            }
            TAG_STAGE_START => {
                expect_len(body, 6)?;
                Ok(Frame::StageStart {
                    stage: codec::get_usize(body, 1)?,
                    kind: LiveStageKind::from_wire(codec::get_u64(body, 9)?)?,
                    tasks: codec::get_usize(body, 17)?,
                    records_per_task: codec::get_usize(body, 25)?,
                    seed: codec::get_u64(body, 33)?,
                    hint: codec::get_usize(body, 41)?,
                })
            }
            TAG_TASK_FINISHED => {
                expect_len(body, 3)?;
                Ok(Frame::TaskFinished {
                    task: codec::get_usize(body, 1)?,
                    executor: codec::get_usize(body, 9)?,
                    attempt: codec::get_usize(body, 17)?,
                })
            }
            TAG_SHUTDOWN => {
                expect_len(body, 0)?;
                Ok(Frame::Shutdown)
            }
            TAG_FAULT_NOTICE => {
                expect_len(body, 1)?;
                Ok(Frame::FaultNotice {
                    executor: codec::get_usize(body, 1)?,
                })
            }
            TAG_JOB_STAGE_START => {
                expect_len(body, 6)?;
                Ok(Frame::JobStageStart {
                    job: codec::get_u64(body, 1)?,
                    stage: codec::get_usize(body, 9)?,
                    kind: LiveStageKind::from_wire(codec::get_u64(body, 17)?)?,
                    tasks: codec::get_usize(body, 25)?,
                    records_per_task: codec::get_usize(body, 33)?,
                    seed: codec::get_u64(body, 41)?,
                })
            }
            TAG_ASSIGN_JOB_TASK => {
                expect_len(body, 2)?;
                Ok(Frame::AssignJobTask {
                    job: codec::get_u64(body, 1)?,
                    task: codec::get_usize(body, 9)?,
                })
            }
            TAG_JOB_TASK_OUTCOME => {
                expect_len(body, 5)?;
                Ok(Frame::JobTaskOutcome {
                    job: codec::get_u64(body, 1)?,
                    task: codec::get_usize(body, 9)?,
                    executor: codec::get_usize(body, 17)?,
                    attempt: codec::get_usize(body, 25)?,
                    ok: codec::get_u64(body, 33)? != 0,
                })
            }
            TAG_JOB_END => {
                expect_len(body, 1)?;
                Ok(Frame::JobEnd {
                    job: codec::get_u64(body, 1)?,
                })
            }
            TAG_TASK_SPAN => {
                expect_len(body, TraceKey::FIELDS + 4)?;
                let after_key = 1 + 8 * TraceKey::FIELDS;
                Ok(Frame::TaskSpan {
                    key: TraceKey::decode(body, 1)?,
                    executor: codec::get_usize(body, after_key)?,
                    start_bits: codec::get_u64(body, after_key + 8)?,
                    end_bits: codec::get_u64(body, after_key + 16)?,
                    ok: codec::get_u64(body, after_key + 24)? != 0,
                })
            }
            TAG_ZETA_SAMPLE => {
                expect_len(body, 4)?;
                Ok(Frame::ZetaSample {
                    executor: codec::get_usize(body, 1)?,
                    threads: codec::get_usize(body, 9)?,
                    zeta_bits: codec::get_u64(body, 17)?,
                    at_bits: codec::get_u64(body, 25)?,
                })
            }
            other => Err(FrameError::UnknownTag(other)),
        }
    }
}

/// Checks that an envelope body is exactly `1 + 8 * fields` bytes.
fn expect_len(body: &[u8], fields: usize) -> Result<(), FrameError> {
    let needed = 1 + 8 * fields;
    match body.len() {
        got if got < needed => Err(FrameError::Truncated { needed, got }),
        got if got > needed => Err(FrameError::TrailingBytes {
            extra: got - needed,
        }),
        _ => Ok(()),
    }
}

/// Writes frames to a socket. Not internally synchronised — wrap in a
/// mutex when several threads (heartbeat, workers, control) share it.
#[derive(Debug)]
pub struct FrameWriter {
    stream: TcpStream,
    scratch: Vec<u8>,
}

impl FrameWriter {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            scratch: Vec::with_capacity(64),
        }
    }

    /// Encodes and sends one frame, returning its size on the wire
    /// (length prefix included).
    pub fn send(&mut self, frame: &Frame) -> io::Result<usize> {
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        self.stream.write_all(&self.scratch)?;
        Ok(self.scratch.len())
    }

    /// Encodes and sends several frames in one coalesced write — one
    /// syscall and one TCP segment train instead of a write per frame.
    /// Returns the total bytes put on the wire.
    pub fn send_batch(&mut self, frames: &[Frame]) -> io::Result<usize> {
        self.scratch.clear();
        for frame in frames {
            frame.encode(&mut self.scratch);
        }
        self.stream.write_all(&self.scratch)?;
        Ok(self.scratch.len())
    }
}

/// Pure (sans-io) frame reassembly buffer.
///
/// Feed it raw bytes as they arrive — at arbitrary boundaries, split
/// mid-header or mid-body, or with several frames merged into one read —
/// and pull complete [`Frame`]s out. Both the blocking [`FrameReader`]
/// and the reactor's per-connection state are thin shells over this
/// type, which is what lets a property test assert the two decode
/// identical frame sequences from identical byte streams.
#[derive(Debug, Default)]
pub struct FrameCursor {
    buf: Vec<u8>,
    start: usize,
    last_len: usize,
}

/// Consumed-prefix length beyond which the cursor compacts its buffer.
const COMPACT_AT: usize = 8192;

impl FrameCursor {
    /// Creates an empty cursor.
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(1024),
            start: 0,
            last_len: 0,
        }
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, or `Ok(None)` if more bytes are
    /// needed. Malformed bytes are a hard error: once framing is lost
    /// the connection is unusable.
    ///
    /// Not an [`Iterator`]: `None` means "need more bytes", not "done",
    /// and decode errors must stay first-class.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, FrameError> {
        match Frame::decode(&self.buf[self.start..])? {
            Some((frame, consumed)) => {
                self.start += consumed;
                self.last_len = consumed;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                } else if self.start > COMPACT_AT {
                    self.buf.drain(..self.start);
                    self.start = 0;
                }
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Wire size (length prefix included) of the frame the most recent
    /// [`FrameCursor::next`] returned; 0 before any frame.
    pub fn last_frame_len(&self) -> usize {
        self.last_len
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

/// What a [`FrameReader::next`] call produced.
#[derive(Debug)]
pub enum Next {
    /// A complete frame arrived.
    Frame(Frame),
    /// The peer closed the connection.
    Eof,
    /// The read timed out with no complete frame — the caller's chance to
    /// check deadlines and kill flags before blocking again.
    Idle,
}

/// Buffered frame reader over a socket.
///
/// Honours the stream's read timeout: a `WouldBlock`/`TimedOut` read
/// surfaces as [`Next::Idle`] rather than an error, so callers can poll
/// control state between frames. An abortive close (`ECONNRESET` /
/// `ECONNABORTED` — e.g. the peer dropped the socket with unread data
/// queued, which turns the close into an RST) surfaces as [`Next::Eof`],
/// the same as an orderly FIN: either way the peer is gone, and both
/// ends already treat that as connection loss. Malformed bytes surface
/// as `InvalidData` errors (the connection is unusable once framing is
/// lost).
#[derive(Debug)]
pub struct FrameReader {
    stream: TcpStream,
    cursor: FrameCursor,
    chunk: Vec<u8>,
}

/// Per-read chunk size — how many bytes one socket read may pull in.
const READ_CHUNK: usize = 4096;

impl FrameReader {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            cursor: FrameCursor::new(),
            chunk: vec![0u8; READ_CHUNK],
        }
    }

    /// Wire size (length prefix included) of the frame the most recent
    /// [`FrameReader::next_frame`] returned; 0 before any frame.
    pub fn last_frame_len(&self) -> usize {
        self.cursor.last_frame_len()
    }

    /// Reads until one frame, EOF, or a read timeout.
    pub fn next_frame(&mut self) -> io::Result<Next> {
        loop {
            match self.cursor.next() {
                Ok(Some(frame)) => return Ok(Next::Frame(frame)),
                Ok(None) => {}
                Err(e) => {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, e));
                }
            }
            match self.stream.read(&mut self.chunk) {
                Ok(0) => return Ok(Next::Eof),
                Ok(n) => self.cursor.extend(&self.chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Next::Idle);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::ConnectionAborted =>
                {
                    return Ok(Next::Eof);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Core(Message::AssignTask {
                task: 3,
                executor: 1,
            }),
            Frame::Core(Message::PoolSizeChanged {
                executor: 2,
                size: 4,
            }),
            Frame::Core(Message::Heartbeat { executor: 0 }),
            Frame::Core(Message::TaskFailed {
                task: 9,
                executor: 1,
                attempt: 2,
            }),
            Frame::Register {
                executor: 1,
                slots: 8,
            },
            Frame::StageStart {
                stage: 1,
                kind: LiveStageKind::Sort,
                tasks: 24,
                records_per_task: 20_000,
                seed: 0xDEAD_BEEF,
                hint: 8,
            },
            Frame::StageStart {
                stage: 0,
                kind: LiveStageKind::Spill,
                tasks: 24,
                records_per_task: 20_000,
                seed: 7,
                hint: 8,
            },
            Frame::TaskFinished {
                task: 5,
                executor: 2,
                attempt: 0,
            },
            Frame::Shutdown,
            Frame::FaultNotice { executor: 1 },
            Frame::JobStageStart {
                job: 12,
                stage: 1,
                kind: LiveStageKind::Sort,
                tasks: 16,
                records_per_task: 5_000,
                seed: 0xFEED,
            },
            Frame::AssignJobTask { job: 12, task: 7 },
            Frame::JobTaskOutcome {
                job: 12,
                task: 7,
                executor: 3,
                attempt: 1,
                ok: true,
            },
            Frame::JobTaskOutcome {
                job: 13,
                task: 0,
                executor: 0,
                attempt: 0,
                ok: false,
            },
            Frame::JobEnd { job: 12 },
            Frame::TaskSpan {
                key: TraceKey {
                    job: 12,
                    stage: 1,
                    task: 7,
                    attempt: 0,
                    epoch: 3,
                },
                executor: 3,
                start_bits: 0.25f64.to_bits(),
                end_bits: 0.75f64.to_bits(),
                ok: true,
            },
            Frame::ZetaSample {
                executor: 2,
                threads: 4,
                zeta_bits: 0.87f64.to_bits(),
                at_bits: 1.5f64.to_bits(),
            },
        ]
    }

    #[test]
    fn envelope_round_trips_every_variant() {
        for frame in all_frames() {
            let mut buf = Vec::new();
            frame.encode(&mut buf);
            let (decoded, consumed) = Frame::decode(&buf).unwrap().unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn envelope_stream_decodes_in_order() {
        let mut buf = Vec::new();
        for frame in all_frames() {
            frame.encode(&mut buf);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((frame, consumed)) = Frame::decode(&buf[offset..]).unwrap() {
            decoded.push(frame);
            offset += consumed;
        }
        assert_eq!(decoded, all_frames());
        assert_eq!(offset, buf.len());
    }

    #[test]
    fn every_prefix_is_incomplete_not_an_error() {
        let mut buf = Vec::new();
        Frame::StageStart {
            stage: 0,
            kind: LiveStageKind::Spill,
            tasks: 4,
            records_per_task: 100,
            seed: 1,
            hint: 2,
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(matches!(Frame::decode(&buf[..cut]), Ok(None)), "cut {cut}");
        }
    }

    #[test]
    fn unknown_envelope_tag_rejected() {
        let body = [0xEEu8; 9];
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(Frame::decode(&buf), Err(FrameError::UnknownTag(0xEE)));
    }

    #[test]
    fn bad_stage_kind_rejected() {
        let mut buf = Vec::new();
        Frame::StageStart {
            stage: 0,
            kind: LiveStageKind::Sort,
            tasks: 1,
            records_per_task: 1,
            seed: 0,
            hint: 1,
        }
        .encode(&mut buf);
        // Corrupt the kind field (bytes 9..17 of the body, after the prefix
        // and envelope tag) to an undefined discriminant.
        let kind_at = LEN_PREFIX + 1 + 8;
        buf[kind_at..kind_at + 8].copy_from_slice(&99u64.to_be_bytes());
        assert!(Frame::decode(&buf).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        // A Shutdown body with surplus bytes.
        let body = [TAG_SHUTDOWN, 0, 0];
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(
            Frame::decode(&buf),
            Err(FrameError::TrailingBytes { extra: 2 })
        );
        // A Register body missing its second field.
        let mut body = vec![TAG_REGISTER];
        body.extend_from_slice(&1u64.to_be_bytes());
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&body);
        assert_eq!(
            Frame::decode(&buf),
            Err(FrameError::Truncated { needed: 17, got: 9 })
        );
    }

    #[test]
    fn frame_kinds_are_distinct_labels() {
        let mut kinds: Vec<&str> = all_frames().iter().map(Frame::kind_str).collect();
        kinds.sort_unstable();
        kinds.dedup();
        // all_frames carries two StageStart and two JobTaskOutcome samples,
        // each pair sharing one label.
        assert_eq!(kinds.len(), all_frames().len() - 2);
    }

    #[test]
    fn cursor_reassembles_one_byte_at_a_time() {
        let mut wire = Vec::new();
        for frame in all_frames() {
            frame.encode(&mut wire);
        }
        let mut cursor = FrameCursor::new();
        let mut decoded = Vec::new();
        for &byte in &wire {
            cursor.extend(&[byte]);
            while let Some(frame) = cursor.next().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, all_frames());
        assert_eq!(cursor.pending_bytes(), 0);
    }

    #[test]
    fn cursor_handles_merged_frames_in_one_extend() {
        let mut wire = Vec::new();
        for frame in all_frames() {
            frame.encode(&mut wire);
        }
        let mut cursor = FrameCursor::new();
        cursor.extend(&wire);
        let mut decoded = Vec::new();
        while let Some(frame) = cursor.next().unwrap() {
            decoded.push(frame);
        }
        assert_eq!(decoded, all_frames());
    }

    #[test]
    fn cursor_compacts_without_losing_partial_frames() {
        // Push far past COMPACT_AT with a partial frame straddling the
        // compaction point; every frame must still come out intact.
        let frame = Frame::TaskFinished {
            task: 1,
            executor: 2,
            attempt: 0,
        };
        let mut one = Vec::new();
        frame.encode(&mut one);
        let mut cursor = FrameCursor::new();
        let mut got = 0usize;
        let total = (2 * COMPACT_AT) / one.len() + 3;
        for _ in 0..total {
            // Feed all but the last byte, drain, then the last byte.
            cursor.extend(&one[..one.len() - 1]);
            while let Some(f) = cursor.next().unwrap() {
                assert_eq!(f, frame);
                got += 1;
            }
            cursor.extend(&one[one.len() - 1..]);
            while let Some(f) = cursor.next().unwrap() {
                assert_eq!(f, frame);
                got += 1;
            }
        }
        assert_eq!(got, total);
    }

    #[test]
    fn send_batch_coalesces_and_round_trips() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut writer = FrameWriter::new(client);
        let frames = all_frames();
        let sent = writer.send_batch(&frames).unwrap();
        let mut expected = Vec::new();
        for f in &frames {
            f.encode(&mut expected);
        }
        assert_eq!(sent, expected.len());
        let mut reader = FrameReader::new(server);
        for want in &frames {
            match reader.next_frame().unwrap() {
                Next::Frame(got) => assert_eq!(&got, want),
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn core_bodies_are_bit_identical_to_the_dag_codec() {
        // The live envelope must not re-encode core messages differently:
        // Frame::Core's body is one tag byte + the sae-dag body, verbatim.
        let msg = Message::PoolSizeChanged {
            executor: 3,
            size: 6,
        };
        let mut envelope = Vec::new();
        Frame::Core(msg).encode(&mut envelope);
        let mut dag_body = Vec::new();
        codec::encode_body(&msg, &mut dag_body);
        assert_eq!(&envelope[LEN_PREFIX + 1..], &dag_body[..]);
    }
}
