//! One-call setup of a whole loopback cluster: driver + N executors +
//! a shared scratch directory for spills — plus the cluster's shared
//! observability plane: one [`FlightRecorder`], one [`MetricRegistry`]
//! and one [`DecisionJournal`] per executor, all on one clock.
//!
//! Artifacts: set [`ClusterConfig::trace_out`] to get the merged Chrome
//! trace on shutdown, [`ClusterConfig::journal_out`] for the decision
//! journal as JSONL, [`ClusterConfig::metrics_out`] for a Prometheus text
//! exposition, and [`ClusterConfig::metrics_jsonl`] for a periodic
//! snapshot stream sampled every [`ClusterConfig::metrics_interval`].
//! When a job *fails*, the flight recorder is dumped immediately (to
//! `trace_out`, or a fresh file under the system temp dir) so the
//! post-mortem survives even if shutdown never happens.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sae_core::{DecisionJournal, DecisionRecord, MapeConfig};
use sae_metrics::{render_prometheus, snapshot_jsonl_line, MetricRegistry};

use crate::driver::{Driver, DriverConfig, LiveError, LiveReport, PoolDecision, SlotInfo};
use crate::executor::{LiveExecutor, LiveExecutorConfig};
use crate::job::LiveJob;
use crate::log::Logger;
use crate::recorder::FlightRecorder;

/// Cluster-level configuration: driver knobs plus what every executor
/// shares.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of executors to launch.
    pub executors: usize,
    /// MAPE-K bounds for every executor's pool.
    pub mape: MapeConfig,
    /// Executor heartbeat period.
    pub heartbeat_interval: Duration,
    /// Driver silence threshold before declaring an executor lost.
    pub heartbeat_timeout: Duration,
    /// Driver event-loop wakeup period.
    pub check_interval: Duration,
    /// Per-task attempt budget.
    pub max_task_attempts: usize,
    /// Per-stage executor failure budget before blacklisting.
    pub blacklist_after: usize,
    /// Wall-clock bound on the whole job.
    pub deadline: Duration,
    /// Fault injection: `(executor, n)` makes that executor go silent
    /// after completing `n` tasks.
    pub kill_after_tasks: Vec<(usize, usize)>,
    /// Flight-recorder ring capacity in events; 0 disables recording.
    pub recorder_capacity: usize,
    /// Where to write the merged Chrome trace on shutdown (and
    /// immediately on job failure).
    pub trace_out: Option<PathBuf>,
    /// Where to write every executor's decision journal as JSONL on
    /// shutdown.
    pub journal_out: Option<PathBuf>,
    /// Where to write the final Prometheus text exposition on shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Where to append periodic metric snapshots as JSONL while the
    /// cluster is up.
    pub metrics_jsonl: Option<PathBuf>,
    /// Sampling period of the JSONL metrics sink.
    pub metrics_interval: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            executors: 3,
            mape: MapeConfig::new(2, 8),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(800),
            check_interval: Duration::from_millis(50),
            max_task_attempts: 4,
            blacklist_after: 3,
            deadline: Duration::from_secs(120),
            kill_after_tasks: Vec::new(),
            recorder_capacity: 16_384,
            trace_out: None,
            journal_out: None,
            metrics_out: None,
            metrics_jsonl: None,
            metrics_interval: Duration::from_millis(250),
        }
    }
}

/// A scratch directory removed on drop. Hand-rolled (no `tempfile`
/// dependency): uniqueness comes from the pid plus a process-wide counter.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> io::Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A running loopback cluster.
///
/// # Examples
///
/// ```no_run
/// use sae_live::{ClusterConfig, LiveCluster};
///
/// let mut cluster = LiveCluster::launch(ClusterConfig::default()).unwrap();
/// let report = cluster.run(&sae_live::terasort(12, 5_000, 1)).unwrap();
/// assert_eq!(report.stages.len(), 2);
/// cluster.shutdown().unwrap();
/// ```
#[derive(Debug)]
pub struct LiveCluster {
    driver: Option<Driver>,
    executors: Vec<LiveExecutor>,
    _scratch: TempDir,
    cfg: ClusterConfig,
    recorder: FlightRecorder,
    metrics: MetricRegistry,
    journals: Vec<DecisionJournal>,
    log: Logger,
    sampler_stop: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
    last_trace_path: Option<PathBuf>,
}

impl LiveCluster {
    /// Binds a driver and launches `cfg.executors` executors against it.
    pub fn launch(cfg: ClusterConfig) -> io::Result<Self> {
        let scratch = TempDir::new("sae-live")?;
        // One recorder, one registry, one clock for the whole cluster.
        let recorder = FlightRecorder::new(cfg.recorder_capacity);
        let metrics = MetricRegistry::new();
        let journals: Vec<DecisionJournal> =
            (0..cfg.executors).map(|_| DecisionJournal::new()).collect();
        let driver = Driver::bind(DriverConfig {
            executors: cfg.executors,
            heartbeat_timeout: cfg.heartbeat_timeout,
            check_interval: cfg.check_interval,
            max_task_attempts: cfg.max_task_attempts,
            blacklist_after: cfg.blacklist_after,
            deadline: cfg.deadline,
            recorder: recorder.clone(),
            metrics: metrics.clone(),
        })?;
        let addr = driver.addr()?;
        let executors = (0..cfg.executors)
            .map(|id| {
                let mut ecfg = LiveExecutorConfig::new(id, scratch.path().to_path_buf());
                ecfg.mape = cfg.mape;
                ecfg.heartbeat_interval = cfg.heartbeat_interval;
                ecfg.kill_after_tasks = cfg
                    .kill_after_tasks
                    .iter()
                    .find(|&&(e, _)| e == id)
                    .map(|&(_, n)| n);
                ecfg.recorder = recorder.clone();
                ecfg.metrics = metrics.clone();
                ecfg.journal = journals[id].clone();
                LiveExecutor::launch(addr, ecfg)
            })
            .collect();
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let sampler = cfg.metrics_jsonl.clone().map(|path| {
            spawn_metrics_sampler(
                path,
                metrics.clone(),
                recorder.clone(),
                cfg.metrics_interval,
                Arc::clone(&sampler_stop),
            )
        });
        let log = Logger::new("cluster", recorder.clone());
        Ok(Self {
            driver: Some(driver),
            executors,
            _scratch: scratch,
            cfg,
            recorder,
            metrics,
            journals,
            log,
            sampler_stop,
            sampler,
            last_trace_path: None,
        })
    }

    /// The cluster's shared metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The cluster's shared flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Per-executor decision journals (shared handles; complete once
    /// [`LiveCluster::shutdown`] has joined the executors).
    pub fn journals(&self) -> &[DecisionJournal] {
        &self.journals
    }

    /// Every executor's journal records, executor order then record order.
    pub fn journal_records(&self) -> Vec<DecisionRecord> {
        self.journals.iter().flat_map(|j| j.records()).collect()
    }

    /// Where the last flight-recorder dump was written, if any.
    pub fn last_trace_path(&self) -> Option<&Path> {
        self.last_trace_path.as_deref()
    }

    /// Runs one job on the cluster's driver. The driver is single-shot:
    /// a second call reports [`LiveError::AlreadyRan`].
    pub fn run(&mut self, job: &LiveJob) -> Result<LiveReport, LiveError> {
        self.run_with_observer(job, |_, _| {})
    }

    /// Like [`LiveCluster::run`] with a `PoolSizeChanged` observer.
    pub fn run_with_observer(
        &mut self,
        job: &LiveJob,
        observer: impl FnMut(&PoolDecision, &[SlotInfo]),
    ) -> Result<LiveReport, LiveError> {
        let result = self
            .driver
            .take()
            .ok_or(LiveError::AlreadyRan)?
            .run_with_observer(job, observer);
        if let Err(e) = &result {
            // Post-mortem: dump the black box while the evidence is hot.
            let why = e.to_string();
            if let Some(path) = self.dump_trace() {
                self.log
                    .error(|| format!("job failed ({why}); flight recorder dumped to {path:?}"));
            }
        }
        result
    }

    /// Makes executor `id` go silent (see [`LiveExecutor::kill`]).
    pub fn kill_executor(&self, id: usize) {
        if let Some(ex) = self.executors.get(id) {
            ex.kill();
        }
    }

    /// Writes the merged Chrome trace to [`ClusterConfig::trace_out`] (or
    /// a fresh file under the system temp dir) and returns the path.
    fn dump_trace(&mut self) -> Option<PathBuf> {
        if !self.recorder.enabled() && self.cfg.trace_out.is_none() {
            return None;
        }
        let path = self.cfg.trace_out.clone().unwrap_or_else(|| {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("sae-live-flight-{}-{n}.json", std::process::id()))
        });
        match std::fs::write(&path, self.recorder.chrome_trace()) {
            Ok(()) => {
                self.last_trace_path = Some(path.clone());
                Some(path)
            }
            Err(_) => None,
        }
    }

    /// Joins every executor thread, then writes the configured artifacts:
    /// the merged Chrome trace, the decision-journal JSONL and the final
    /// Prometheus exposition. The scratch directory is removed when the
    /// cluster drops.
    pub fn shutdown(mut self) -> io::Result<()> {
        let mut first_err = None;
        for ex in self.executors.drain(..) {
            if let Err(e) = ex.join() {
                first_err.get_or_insert(e);
            }
        }
        // Executors are drained: journals carry their terminal records and
        // the recorder holds the replayed ζ samples. Now the artifacts.
        self.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        self.dump_trace();
        if let Some(path) = self.cfg.journal_out.clone() {
            if let Err(e) = std::fs::write(&path, sae_core::to_jsonl(&self.journal_records())) {
                first_err.get_or_insert(e);
            }
        }
        if let Some(path) = self.cfg.metrics_out.clone() {
            if let Err(e) = std::fs::write(&path, render_prometheus(&self.metrics)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Appends one metric snapshot as JSONL every `interval` until stopped,
/// plus a final snapshot on the way out.
fn spawn_metrics_sampler(
    path: PathBuf,
    metrics: MetricRegistry,
    recorder: FlightRecorder,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let Ok(mut out) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            return;
        };
        loop {
            let line = snapshot_jsonl_line(&metrics.snapshot(), recorder.now());
            if writeln!(out, "{line}").is_err() {
                return;
            }
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(interval);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("sae-live-test").unwrap();
        let b = TempDir::new("sae-live-test").unwrap();
        assert_ne!(a.path(), b.path());
        let path = a.path().to_path_buf();
        assert!(path.is_dir());
        drop(a);
        assert!(!path.exists());
        assert!(b.path().is_dir());
    }
}
