//! One-call setup of a whole loopback cluster: driver + N executors +
//! a shared scratch directory for spills — plus the cluster's shared
//! observability plane: one [`FlightRecorder`], one [`MetricRegistry`]
//! and one [`DecisionJournal`] per executor, all on one clock.
//!
//! Artifacts: set [`ClusterConfig::trace_out`] to get the merged Chrome
//! trace on shutdown, [`ClusterConfig::journal_out`] for the decision
//! journal as JSONL, [`ClusterConfig::metrics_out`] for a Prometheus text
//! exposition, and [`ClusterConfig::metrics_jsonl`] for a periodic
//! snapshot stream sampled every [`ClusterConfig::metrics_interval`].
//! When a job *fails* — including by panic, which is caught and turned
//! into [`LiveError::DriverPanicked`] — the flight recorder is dumped
//! immediately (to `trace_out`, or a fresh file under the system temp
//! dir) so the post-mortem survives even if shutdown never happens.
//!
//! # Chaos
//!
//! Give [`ClusterConfig::fault_plan`] a seeded [`FaultPlan`] and the
//! cluster arms the full live fault model:
//!
//! * `plan.wire` interposes a [`Nemesis`] proxy between the executors and
//!   the driver, perturbing scheduled frames (delay, throttle, drop,
//!   duplicate, mid-frame reset, partition);
//! * `plan.crashes` drives a chaos-agent thread that flips executor kill
//!   switches on schedule; each crashed executor reincarnates after the
//!   crash's `downtime` (or per [`ClusterConfig::respawn`] if set);
//! * `plan.disk` makes the same agent corrupt spill files once they land,
//!   exercising the checksum → quarantine → lineage-rebuild path.
//!
//! The same plan validates under the simulator's `FaultPlan` rules, so one
//! seeded schedule drives both runtimes.

use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sae_core::{DecisionJournal, DecisionRecord, MapeConfig};
use sae_dag::{FaultPlan, TraceEvent};
use sae_metrics::{render_prometheus, snapshot_jsonl_line, MetricRegistry};

use crate::driver::{
    Driver, DriverConfig, DriverTransport, LiveError, LiveReport, PoolDecision, SlotInfo,
};
use crate::executor::{LiveExecutor, LiveExecutorConfig, RespawnConfig};
use crate::job::LiveJob;
use crate::log::Logger;
use crate::nemesis::Nemesis;
use crate::recorder::{FlightRecorder, LiveEvent};

/// Cluster-level configuration: driver knobs plus what every executor
/// shares.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of executors to launch.
    pub executors: usize,
    /// MAPE-K bounds for every executor's pool.
    pub mape: MapeConfig,
    /// Executor heartbeat period.
    pub heartbeat_interval: Duration,
    /// Driver silence threshold before declaring an executor lost.
    pub heartbeat_timeout: Duration,
    /// Driver event-loop wakeup period.
    pub check_interval: Duration,
    /// Per-task attempt budget.
    pub max_task_attempts: usize,
    /// Per-stage executor failure budget before blacklisting.
    pub blacklist_after: usize,
    /// How long a blacklisted executor sits out before probation ends.
    pub probation: Duration,
    /// Wall-clock bound on the whole job.
    pub deadline: Duration,
    /// Per-task wall-clock bound; overrunning assignments are revoked and
    /// retried. `None` disables the check.
    pub task_deadline: Option<Duration>,
    /// Fleet floor for graceful degradation: below this many usable
    /// executors the driver parks in `Degraded` instead of failing fast.
    pub min_live_executors: usize,
    /// How long the driver tolerates being below the floor before the job
    /// fails.
    pub degraded_wait: Duration,
    /// Which wire transport the driver runs (reactor by default;
    /// `SAE_REFERENCE_DRIVER=1` forces the blocking reference).
    pub transport: DriverTransport,
    /// Reactor-only: drain budget for queued frames on exit.
    pub shutdown_drain: Duration,
    /// Run executors as separate OS processes (`sae-executor` children)
    /// instead of in-process threads. The in-thread mode stays the fast
    /// test path; process mode is the real fleet — each executor owns
    /// its own address space, procfs view and crash domain. Chaos
    /// crashes are delivered to children as `--crash-at-ms` arguments
    /// (the parent cannot flip a kill switch across the boundary);
    /// disk faults stay with the parent, which owns the shared spill
    /// directory. Child decision journals are merged back on
    /// [`LiveCluster::shutdown`].
    pub process_executors: bool,
    /// Path to the `sae-executor` binary for process mode. `None` tries
    /// the `SAE_EXECUTOR_BIN` environment variable, then looks next to
    /// the current executable (tests pass
    /// `env!("CARGO_BIN_EXE_sae-executor")`).
    pub executor_binary: Option<PathBuf>,
    /// Fault injection: `(executor, n)` makes that executor go silent
    /// after completing `n` tasks.
    pub kill_after_tasks: Vec<(usize, usize)>,
    /// The seeded fault schedule (see the module docs). An empty plan —
    /// the default — arms nothing and interposes nothing.
    pub fault_plan: FaultPlan,
    /// Reincarnation policy for every executor. `None` keeps death final
    /// except for plan crashes, which derive a policy from their
    /// `downtime`.
    pub respawn: Option<RespawnConfig>,
    /// Flight-recorder ring capacity in events; 0 disables recording.
    pub recorder_capacity: usize,
    /// Where to write the merged Chrome trace on shutdown (and
    /// immediately on job failure).
    pub trace_out: Option<PathBuf>,
    /// Where to write every executor's decision journal as JSONL on
    /// shutdown.
    pub journal_out: Option<PathBuf>,
    /// Where to write the final Prometheus text exposition on shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Where to append periodic metric snapshots as JSONL while the
    /// cluster is up.
    pub metrics_jsonl: Option<PathBuf>,
    /// Sampling period of the JSONL metrics sink.
    pub metrics_interval: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            executors: 3,
            mape: MapeConfig::new(2, 8),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(800),
            check_interval: Duration::from_millis(50),
            max_task_attempts: 4,
            blacklist_after: 3,
            probation: Duration::from_secs(2),
            deadline: Duration::from_secs(120),
            task_deadline: None,
            min_live_executors: 1,
            degraded_wait: Duration::from_secs(5),
            transport: DriverTransport::default(),
            shutdown_drain: Duration::from_millis(500),
            process_executors: false,
            executor_binary: None,
            kill_after_tasks: Vec::new(),
            fault_plan: FaultPlan::default(),
            respawn: None,
            recorder_capacity: 16_384,
            trace_out: None,
            journal_out: None,
            metrics_out: None,
            metrics_jsonl: None,
            metrics_interval: Duration::from_millis(250),
        }
    }
}

/// A scratch directory removed on drop. Hand-rolled (no `tempfile`
/// dependency): uniqueness comes from the pid plus a process-wide counter.
///
/// Cleanup is panic-safe: drop glue runs during unwinding, so a test or
/// driver panic still removes the directory — and the cluster additionally
/// catches driver panics before they can poison the caller's stack (see
/// [`LiveCluster::run_with_observer`]).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> io::Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A process-mode executor: the child process plus where it will leave
/// its decision journal for the shutdown-time merge.
#[derive(Debug)]
struct ChildExecutor {
    id: usize,
    child: std::process::Child,
    journal_path: PathBuf,
}

impl Drop for ChildExecutor {
    fn drop(&mut self) {
        // The panic path: a cluster dropped without `shutdown` must not
        // leak executor processes.
        if matches!(self.child.try_wait(), Ok(None)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// A running loopback cluster.
///
/// # Examples
///
/// ```no_run
/// use sae_live::{ClusterConfig, LiveCluster};
///
/// let mut cluster = LiveCluster::launch(ClusterConfig::default()).unwrap();
/// let report = cluster.run(&sae_live::terasort(12, 5_000, 1)).unwrap();
/// assert_eq!(report.stages.len(), 2);
/// cluster.shutdown().unwrap();
/// ```
#[derive(Debug)]
pub struct LiveCluster {
    driver: Option<Driver>,
    executors: Vec<LiveExecutor>,
    children: Vec<ChildExecutor>,
    _scratch: TempDir,
    cfg: ClusterConfig,
    recorder: FlightRecorder,
    metrics: MetricRegistry,
    journals: Vec<DecisionJournal>,
    log: Logger,
    sampler_stop: Arc<AtomicBool>,
    sampler: Option<JoinHandle<()>>,
    nemesis: Option<Nemesis>,
    chaos_stop: Arc<AtomicBool>,
    chaos: Option<JoinHandle<()>>,
    last_trace_path: Option<PathBuf>,
}

impl LiveCluster {
    /// Binds a driver and launches `cfg.executors` executors against it
    /// (through a [`Nemesis`] proxy when the fault plan has wire faults).
    pub fn launch(cfg: ClusterConfig) -> io::Result<Self> {
        let scratch = TempDir::new("sae-live")?;
        // One recorder, one registry, one clock for the whole cluster.
        let recorder = FlightRecorder::new(cfg.recorder_capacity);
        let metrics = MetricRegistry::new();
        let journals: Vec<DecisionJournal> =
            (0..cfg.executors).map(|_| DecisionJournal::new()).collect();
        let driver = Driver::bind(DriverConfig {
            executors: cfg.executors,
            heartbeat_timeout: cfg.heartbeat_timeout,
            check_interval: cfg.check_interval,
            max_task_attempts: cfg.max_task_attempts,
            blacklist_after: cfg.blacklist_after,
            probation: cfg.probation,
            deadline: cfg.deadline,
            task_deadline: cfg.task_deadline,
            min_live_executors: cfg.min_live_executors,
            degraded_wait: cfg.degraded_wait,
            transport: cfg.transport,
            shutdown_drain: cfg.shutdown_drain,
            recorder: recorder.clone(),
            metrics: metrics.clone(),
        })?;
        let driver_addr = driver.addr()?;
        // Wire faults interpose the nemesis; executors then connect to it
        // instead of the driver and every frame crosses the fault layer.
        let nemesis = if cfg.fault_plan.wire.is_empty() {
            None
        } else {
            Some(Nemesis::launch(
                driver_addr,
                &cfg.fault_plan,
                recorder.clone(),
                &metrics,
            )?)
        };
        let addr = nemesis.as_ref().map_or(driver_addr, |n| n.addr());
        let (executors, children) = if cfg.process_executors {
            let bin = executor_binary(&cfg)?;
            let children = (0..cfg.executors)
                .map(|id| spawn_process_executor(&cfg, &bin, addr, scratch.path(), id))
                .collect::<io::Result<Vec<_>>>()?;
            (Vec::new(), children)
        } else {
            let executors: Vec<LiveExecutor> = (0..cfg.executors)
                .map(|id| {
                    let mut ecfg = LiveExecutorConfig::new(id, scratch.path().to_path_buf());
                    ecfg.mape = cfg.mape;
                    ecfg.heartbeat_interval = cfg.heartbeat_interval;
                    ecfg.kill_after_tasks = cfg
                        .kill_after_tasks
                        .iter()
                        .find(|&&(e, _)| e == id)
                        .map(|&(_, n)| n);
                    ecfg.respawn = respawn_for(&cfg, id);
                    ecfg.recorder = recorder.clone();
                    ecfg.metrics = metrics.clone();
                    ecfg.journal = journals[id].clone();
                    LiveExecutor::launch(addr, ecfg)
                })
                .collect();
            (executors, Vec::new())
        };
        let chaos_stop = Arc::new(AtomicBool::new(false));
        // Process-mode crashes ride the children's command lines; the
        // parent's agent keeps only what it can still reach — the
        // spill directory.
        let mut agent_plan = cfg.fault_plan.clone();
        if cfg.process_executors {
            agent_plan.crashes.clear();
        }
        let chaos = if agent_plan.crashes.is_empty() && agent_plan.disk.is_empty() {
            None
        } else {
            let kills = executors.iter().map(|e| e.kill_handle()).collect();
            Some(spawn_chaos_agent(
                agent_plan,
                kills,
                scratch.path().to_path_buf(),
                recorder.clone(),
                Arc::clone(&chaos_stop),
            ))
        };
        let sampler_stop = Arc::new(AtomicBool::new(false));
        let sampler = cfg.metrics_jsonl.clone().map(|path| {
            spawn_metrics_sampler(
                path,
                metrics.clone(),
                recorder.clone(),
                cfg.metrics_interval,
                Arc::clone(&sampler_stop),
            )
        });
        let log = Logger::new("cluster", recorder.clone());
        Ok(Self {
            driver: Some(driver),
            executors,
            children,
            _scratch: scratch,
            cfg,
            recorder,
            metrics,
            journals,
            log,
            sampler_stop,
            sampler,
            nemesis,
            chaos_stop,
            chaos,
            last_trace_path: None,
        })
    }

    /// The cluster's shared metric registry.
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// The cluster's shared flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Per-executor decision journals (shared handles; complete once
    /// [`LiveCluster::shutdown`] has joined the executors).
    pub fn journals(&self) -> &[DecisionJournal] {
        &self.journals
    }

    /// Every executor's journal records, executor order then record order.
    pub fn journal_records(&self) -> Vec<DecisionRecord> {
        self.journals.iter().flat_map(|j| j.records()).collect()
    }

    /// Where the last flight-recorder dump was written, if any.
    pub fn last_trace_path(&self) -> Option<&Path> {
        self.last_trace_path.as_deref()
    }

    /// Runs one job on the cluster's driver. The driver is single-shot:
    /// a second call reports [`LiveError::AlreadyRan`].
    pub fn run(&mut self, job: &LiveJob) -> Result<LiveReport, LiveError> {
        self.run_with_observer(job, |_, _| {})
    }

    /// Like [`LiveCluster::run`] with a `PoolSizeChanged` observer.
    ///
    /// A panic anywhere in the driver's event loop (including inside the
    /// observer) is caught, converted to [`LiveError::DriverPanicked`],
    /// and treated like any other failure: the flight recorder is dumped
    /// for post-mortem and the cluster stays joinable — the unwinding
    /// driver drops its sockets, so executors see EOF and exit cleanly.
    pub fn run_with_observer(
        &mut self,
        job: &LiveJob,
        observer: impl FnMut(&PoolDecision, &[SlotInfo]),
    ) -> Result<LiveReport, LiveError> {
        let driver = self.driver.take().ok_or(LiveError::AlreadyRan)?;
        let result = catch_unwind(AssertUnwindSafe(move || {
            driver.run_with_observer(job, observer)
        }))
        .unwrap_or_else(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(LiveError::DriverPanicked { message })
        });
        if let Err(e) = &result {
            // Post-mortem: dump the black box while the evidence is hot.
            let why = e.to_string();
            if let Some(path) = self.dump_trace() {
                self.log
                    .error(|| format!("job failed ({why}); flight recorder dumped to {path:?}"));
            }
        }
        result
    }

    /// Makes executor `id` go silent (see [`LiveExecutor::kill`]).
    ///
    /// In-thread mode only: a process-mode child is beyond the parent's
    /// reach, so its chaos arrives through the fault plan's crash
    /// schedule (`--crash-at-ms` arguments) instead.
    pub fn kill_executor(&self, id: usize) {
        if let Some(ex) = self.executors.get(id) {
            ex.kill();
        }
    }

    /// Writes the merged Chrome trace to [`ClusterConfig::trace_out`] (or
    /// a fresh file under the system temp dir) and returns the path.
    fn dump_trace(&mut self) -> Option<PathBuf> {
        if !self.recorder.enabled() && self.cfg.trace_out.is_none() {
            return None;
        }
        let path = self.cfg.trace_out.clone().unwrap_or_else(|| {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("sae-live-flight-{}-{n}.json", std::process::id()))
        });
        match std::fs::write(&path, self.recorder.chrome_trace()) {
            Ok(()) => {
                self.last_trace_path = Some(path.clone());
                Some(path)
            }
            Err(_) => None,
        }
    }

    /// Reaps process-mode children: waits out a grace window (they exit
    /// on the driver's `Shutdown` frame or on EOF), kills stragglers,
    /// then merges each child's journal back into the shared
    /// observability plane — records land on the per-executor
    /// [`DecisionJournal`] handles and their ζ samples replay onto the
    /// recorder, exactly what an in-thread executor does as it exits.
    fn reap_children(&mut self, first_err: &mut Option<io::Error>) {
        let deadline = Instant::now() + Duration::from_secs(10);
        for mut child in std::mem::take(&mut self.children) {
            loop {
                match child.child.try_wait() {
                    Ok(Some(status)) => {
                        if !status.success() {
                            first_err.get_or_insert_with(|| {
                                io::Error::other(format!(
                                    "executor {} exited with {status}",
                                    child.id
                                ))
                            });
                        }
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Ok(None) => {
                        let _ = child.child.kill();
                        let _ = child.child.wait();
                        first_err.get_or_insert_with(|| {
                            io::Error::other(format!(
                                "executor {} hung past the reap deadline and was killed",
                                child.id
                            ))
                        });
                        break;
                    }
                    Err(e) => {
                        first_err.get_or_insert(e);
                        break;
                    }
                }
            }
            let text = match std::fs::read_to_string(&child.journal_path) {
                Ok(text) => text,
                Err(_) => continue, // died before writing: nothing to merge
            };
            match sae_core::parse_jsonl(&text) {
                Ok(records) => {
                    // The journal file is the complete record; the cluster's
                    // per-child journal handle gets every entry. The merged
                    // trace, though, already holds whatever the driver
                    // admitted as live ZetaSample frames — push only the
                    // unstreamed tail so the incremental merge and the
                    // shutdown merge together cover each record exactly once.
                    let streamed = self.recorder.zeta_streamed(child.id) as usize;
                    for (i, rec) in records.into_iter().enumerate() {
                        if i >= streamed {
                            self.recorder
                                .push(LiveEvent::Trace(TraceEvent::IntervalClosed {
                                    executor: rec.executor,
                                    threads: rec.threads,
                                    zeta: rec.zeta,
                                    at: rec.at,
                                }));
                        }
                        if let Some(journal) = self.journals.get(child.id) {
                            journal.push(rec);
                        }
                    }
                }
                Err(e) => {
                    first_err.get_or_insert_with(|| {
                        io::Error::other(format!("executor {} journal unreadable: {e}", child.id))
                    });
                }
            }
        }
    }

    /// Joins every executor thread, then writes the configured artifacts:
    /// the merged Chrome trace, the decision-journal JSONL and the final
    /// Prometheus exposition. The scratch directory is removed when the
    /// cluster drops.
    pub fn shutdown(mut self) -> io::Result<()> {
        // Chaos off first: no kills or corruptions while draining.
        self.chaos_stop.store(true, Ordering::Relaxed);
        if let Some(chaos) = self.chaos.take() {
            let _ = chaos.join();
        }
        let mut first_err = None;
        for ex in self.executors.drain(..) {
            if let Err(e) = ex.join() {
                first_err.get_or_insert(e);
            }
        }
        self.reap_children(&mut first_err);
        if let Some(mut nemesis) = self.nemesis.take() {
            nemesis.shutdown();
        }
        // Executors are drained: journals carry their terminal records and
        // the recorder holds the replayed ζ samples. Now the artifacts.
        self.sampler_stop.store(true, Ordering::Relaxed);
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        self.dump_trace();
        if let Some(path) = self.cfg.journal_out.clone() {
            if let Err(e) = std::fs::write(&path, sae_core::to_jsonl(&self.journal_records())) {
                first_err.get_or_insert(e);
            }
        }
        if let Some(path) = self.cfg.metrics_out.clone() {
            if let Err(e) = std::fs::write(&path, render_prometheus(&self.metrics)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Finds the `sae-executor` binary for process mode: the configured
/// path, the `SAE_EXECUTOR_BIN` environment variable, or a sibling of
/// the current executable. Cargo puts test harnesses in
/// `target/<profile>/deps` and the binary one level up, so both the
/// executable's own directory and its parent are checked.
fn executor_binary(cfg: &ClusterConfig) -> io::Result<PathBuf> {
    if let Some(path) = &cfg.executor_binary {
        return Ok(path.clone());
    }
    if let Some(path) = std::env::var_os("SAE_EXECUTOR_BIN") {
        return Ok(PathBuf::from(path));
    }
    let exe = std::env::current_exe()?;
    let name = format!("sae-executor{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    for _ in 0..2 {
        let Some(d) = dir else { break };
        let candidate = d.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "sae-executor binary not found; set ClusterConfig::executor_binary or SAE_EXECUTOR_BIN",
    ))
}

/// Spawns one process-mode executor, translating the cluster's shared
/// knobs — MAPE-K bounds, heartbeat period, deterministic kills, the
/// respawn policy and the fault plan's crash schedule — into
/// `sae-executor` arguments.
fn spawn_process_executor(
    cfg: &ClusterConfig,
    bin: &Path,
    addr: std::net::SocketAddr,
    spill: &Path,
    id: usize,
) -> io::Result<ChildExecutor> {
    let journal_path = spill.join(format!("journal-e{id}.jsonl"));
    let mut cmd = std::process::Command::new(bin);
    cmd.arg("--driver")
        .arg(addr.to_string())
        .arg("--id")
        .arg(id.to_string())
        .arg("--spill")
        .arg(spill)
        .arg("--c-min")
        .arg(cfg.mape.c_min.to_string())
        .arg("--c-max")
        .arg(cfg.mape.c_max.to_string())
        .arg("--heartbeat-ms")
        .arg(cfg.heartbeat_interval.as_millis().to_string())
        .arg("--journal-out")
        .arg(&journal_path);
    if let Some(&(_, n)) = cfg.kill_after_tasks.iter().find(|&&(e, _)| e == id) {
        cmd.arg("--kill-after").arg(n.to_string());
    }
    // `respawn_for` already derives the policy (and its seed) from the
    // crash schedule when no explicit one is set, so the child gets the
    // exact policy its in-thread twin would run with.
    if let Some(r) = respawn_for(cfg, id) {
        cmd.arg("--respawn-delay-ms")
            .arg(r.delay.as_millis().to_string())
            .arg("--respawn-max")
            .arg(r.max_respawns.to_string())
            .arg("--respawn-seed")
            .arg(r.seed.to_string());
    }
    for crash in cfg.fault_plan.crashes.iter().filter(|c| c.executor == id) {
        cmd.arg("--crash-at-ms")
            .arg(((crash.at * 1000.0) as u64).to_string())
            .arg("--crash-downtime-ms")
            .arg(((crash.downtime * 1000.0) as u64).to_string());
    }
    let child = cmd
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .spawn()?;
    Ok(ChildExecutor {
        id,
        child,
        journal_path,
    })
}

/// The reincarnation policy executor `id` launches with: the explicit
/// cluster-wide policy if set, else one derived from the executor's
/// scheduled crash (its `downtime` becomes the respawn delay — the same
/// number the simulator uses for the replacement's registration delay).
fn respawn_for(cfg: &ClusterConfig, id: usize) -> Option<RespawnConfig> {
    if cfg.respawn.is_some() {
        return cfg.respawn.clone();
    }
    cfg.fault_plan
        .crashes
        .iter()
        .find(|c| c.executor == id)
        .map(|c| {
            let mut r = RespawnConfig::new(Duration::from_secs_f64(c.downtime));
            r.seed = cfg.fault_plan.seed ^ id as u64;
            r
        })
}

/// The chaos agent: walks the plan's crash and disk schedules on the
/// recorder clock, flipping kill switches and corrupting spill files as
/// their times come due. Disk corruptions flip one seeded byte of the
/// spill once the file exists with a stable size; the recorder's
/// `FaultInjected{kind:"disk"}` event carries the *task* id in its
/// executor field (spills belong to tasks, not executors).
fn spawn_chaos_agent(
    plan: FaultPlan,
    kills: Vec<Arc<AtomicBool>>,
    spill_dir: PathBuf,
    recorder: FlightRecorder,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let log = Logger::new("chaos", recorder.clone());
        let mut crash_fired = vec![false; plan.crashes.len()];
        let mut disk_fired = vec![false; plan.disk.len()];
        let mut disk_seen_len: Vec<Option<u64>> = vec![None; plan.disk.len()];
        while !stop.load(Ordering::Relaxed) {
            let now = recorder.now();
            for (i, crash) in plan.crashes.iter().enumerate() {
                if crash_fired[i] || now < crash.at {
                    continue;
                }
                crash_fired[i] = true;
                if let Some(kill) = kills.get(crash.executor) {
                    kill.store(true, Ordering::Relaxed);
                    recorder.push(LiveEvent::FaultInjected {
                        executor: crash.executor,
                        kind: "crash",
                        at: now,
                    });
                    log.info(|| {
                        format!(
                            "killed executor {} at t={now:.2}s (downtime {:.2}s)",
                            crash.executor, crash.downtime
                        )
                    });
                }
            }
            for (i, fault) in plan.disk.iter().enumerate() {
                if disk_fired[i] || now < fault.at {
                    continue;
                }
                let path = crate::task::spill_path(&spill_dir, crate::task::SINGLE_JOB, fault.task);
                let Ok(meta) = std::fs::metadata(&path) else {
                    continue; // not spilled yet; retry next tick
                };
                // Wait for two ticks of stable size so we corrupt a
                // finished spill, not one mid-write.
                if disk_seen_len[i] != Some(meta.len()) {
                    disk_seen_len[i] = Some(meta.len());
                    continue;
                }
                if let Ok(mut bytes) = std::fs::read(&path) {
                    if bytes.is_empty() {
                        continue;
                    }
                    let pos = (plan.seed ^ fault.task as u64) as usize % bytes.len();
                    bytes[pos] ^= 0xFF;
                    if std::fs::write(&path, &bytes).is_ok() {
                        disk_fired[i] = true;
                        recorder.push(LiveEvent::FaultInjected {
                            executor: fault.task,
                            kind: "disk",
                            at: now,
                        });
                        log.info(|| {
                            format!(
                                "corrupted spill of task {} (byte {pos}) at t={now:.2}s",
                                fault.task
                            )
                        });
                    }
                }
            }
            if crash_fired.iter().all(|&f| f) && disk_fired.iter().all(|&f| f) {
                return; // schedule exhausted
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    })
}

/// Appends one metric snapshot as JSONL every `interval` until stopped,
/// plus a final snapshot on the way out.
fn spawn_metrics_sampler(
    path: PathBuf,
    metrics: MetricRegistry,
    recorder: FlightRecorder,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let Ok(mut out) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            return;
        };
        loop {
            let line = snapshot_jsonl_line(&metrics.snapshot(), recorder.now());
            if writeln!(out, "{line}").is_err() {
                return;
            }
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(interval);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::terasort;

    #[test]
    fn temp_dirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("sae-live-test").unwrap();
        let b = TempDir::new("sae-live-test").unwrap();
        assert_ne!(a.path(), b.path());
        let path = a.path().to_path_buf();
        assert!(path.is_dir());
        drop(a);
        assert!(!path.exists());
        assert!(b.path().is_dir());
    }

    #[test]
    fn driver_panic_is_contained_and_leaves_a_post_mortem() {
        let mut cluster = LiveCluster::launch(ClusterConfig {
            executors: 1,
            ..ClusterConfig::default()
        })
        .unwrap();
        let scratch = cluster._scratch.path().to_path_buf();
        // 8 tasks/stage on one executor clears min_stage_tasks, so the pool
        // resets to c_min at stage start — a guaranteed PoolSizeChanged
        // round-trip, and thus a guaranteed observer call.
        let err = cluster
            .run_with_observer(&terasort(8, 2_000, 7), |_, _| {
                panic!("observer exploded on purpose")
            })
            .unwrap_err();
        match &err {
            LiveError::DriverPanicked { message } => {
                assert!(message.contains("observer exploded"), "got: {message}");
            }
            other => panic!("expected DriverPanicked, got {other:?}"),
        }
        // The black box was dumped while the evidence was hot…
        let trace = cluster
            .last_trace_path()
            .expect("post-mortem dump")
            .to_path_buf();
        assert!(trace.is_file());
        // …the cluster is still joinable, and the scratch dir is
        // panic-safe: gone once the cluster drops.
        cluster.shutdown().unwrap();
        assert!(!scratch.exists());
        let _ = std::fs::remove_file(trace);
    }
}
