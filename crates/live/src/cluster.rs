//! One-call setup of a whole loopback cluster: driver + N executors +
//! a shared scratch directory for spills.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sae_core::MapeConfig;

use crate::driver::{Driver, DriverConfig, LiveError, LiveReport, PoolDecision, SlotInfo};
use crate::executor::{LiveExecutor, LiveExecutorConfig};
use crate::job::LiveJob;

/// Cluster-level configuration: driver knobs plus what every executor
/// shares.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of executors to launch.
    pub executors: usize,
    /// MAPE-K bounds for every executor's pool.
    pub mape: MapeConfig,
    /// Executor heartbeat period.
    pub heartbeat_interval: Duration,
    /// Driver silence threshold before declaring an executor lost.
    pub heartbeat_timeout: Duration,
    /// Driver event-loop wakeup period.
    pub check_interval: Duration,
    /// Per-task attempt budget.
    pub max_task_attempts: usize,
    /// Per-stage executor failure budget before blacklisting.
    pub blacklist_after: usize,
    /// Wall-clock bound on the whole job.
    pub deadline: Duration,
    /// Fault injection: `(executor, n)` makes that executor go silent
    /// after completing `n` tasks.
    pub kill_after_tasks: Vec<(usize, usize)>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            executors: 3,
            mape: MapeConfig::new(2, 8),
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(800),
            check_interval: Duration::from_millis(50),
            max_task_attempts: 4,
            blacklist_after: 3,
            deadline: Duration::from_secs(120),
            kill_after_tasks: Vec::new(),
        }
    }
}

/// A scratch directory removed on drop. Hand-rolled (no `tempfile`
/// dependency): uniqueness comes from the pid plus a process-wide counter.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh directory under the system temp dir.
    pub fn new(prefix: &str) -> io::Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path)?;
        Ok(Self { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A running loopback cluster.
///
/// # Examples
///
/// ```no_run
/// use sae_live::{ClusterConfig, LiveCluster};
///
/// let mut cluster = LiveCluster::launch(ClusterConfig::default()).unwrap();
/// let report = cluster.run(&sae_live::terasort(12, 5_000, 1)).unwrap();
/// assert_eq!(report.stages.len(), 2);
/// cluster.shutdown().unwrap();
/// ```
#[derive(Debug)]
pub struct LiveCluster {
    driver: Option<Driver>,
    executors: Vec<LiveExecutor>,
    _scratch: TempDir,
}

impl LiveCluster {
    /// Binds a driver and launches `cfg.executors` executors against it.
    pub fn launch(cfg: ClusterConfig) -> io::Result<Self> {
        let scratch = TempDir::new("sae-live")?;
        let driver = Driver::bind(DriverConfig {
            executors: cfg.executors,
            heartbeat_timeout: cfg.heartbeat_timeout,
            check_interval: cfg.check_interval,
            max_task_attempts: cfg.max_task_attempts,
            blacklist_after: cfg.blacklist_after,
            deadline: cfg.deadline,
        })?;
        let addr = driver.addr()?;
        let executors = (0..cfg.executors)
            .map(|id| {
                let mut ecfg = LiveExecutorConfig::new(id, scratch.path().to_path_buf());
                ecfg.mape = cfg.mape;
                ecfg.heartbeat_interval = cfg.heartbeat_interval;
                ecfg.kill_after_tasks = cfg
                    .kill_after_tasks
                    .iter()
                    .find(|&&(e, _)| e == id)
                    .map(|&(_, n)| n);
                LiveExecutor::launch(addr, ecfg)
            })
            .collect();
        Ok(Self {
            driver: Some(driver),
            executors,
            _scratch: scratch,
        })
    }

    /// Runs one job on the cluster's driver. The driver is single-shot:
    /// a second call reports [`LiveError::AlreadyRan`].
    pub fn run(&mut self, job: &LiveJob) -> Result<LiveReport, LiveError> {
        self.run_with_observer(job, |_, _| {})
    }

    /// Like [`LiveCluster::run`] with a `PoolSizeChanged` observer.
    pub fn run_with_observer(
        &mut self,
        job: &LiveJob,
        observer: impl FnMut(&PoolDecision, &[SlotInfo]),
    ) -> Result<LiveReport, LiveError> {
        self.driver
            .take()
            .ok_or(LiveError::AlreadyRan)?
            .run_with_observer(job, observer)
    }

    /// Makes executor `id` go silent (see [`LiveExecutor::kill`]).
    pub fn kill_executor(&self, id: usize) {
        if let Some(ex) = self.executors.get(id) {
            ex.kill();
        }
    }

    /// Joins every executor thread; the scratch directory is removed when
    /// the cluster drops.
    pub fn shutdown(self) -> io::Result<()> {
        let mut first_err = None;
        for ex in self.executors {
            if let Err(e) = ex.join() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_dirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("sae-live-test").unwrap();
        let b = TempDir::new("sae-live-test").unwrap();
        assert_ne!(a.path(), b.path());
        let path = a.path().to_path_buf();
        assert!(path.is_dir());
        drop(a);
        assert!(!path.exists());
        assert!(b.path().is_dir());
    }
}
