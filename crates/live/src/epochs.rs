//! Registration epochs: fencing stale incarnations of an executor.
//!
//! When executors can die and *reincarnate* mid-job, the driver needs a
//! way to tell frames from the current incarnation apart from frames a
//! zombie predecessor left in flight — the classic fencing-token problem.
//! [`EpochRegistry`] is that bookkeeping as a pure state machine: no
//! sockets, no clocks, no locks, so it can be driven exhaustively by
//! property tests.
//!
//! The model: each executor id has a monotonically increasing **epoch**,
//! bumped on every (re-)registration and on every driver-side
//! resurrection, and at most one **current connection** (an opaque id
//! minted by the acceptor, unique per accepted socket for the lifetime of
//! a run). A frame is admitted only when it arrives on the connection the
//! registry currently believes in; everything else is [`Admission::Stale`]
//! and must be dropped by the caller.

/// Verdict on a frame's provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The frame arrived on the executor's current connection.
    Current,
    /// The frame belongs to a superseded incarnation: drop it.
    Stale,
}

/// Outcome of a (re-)registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// The incarnation's epoch (1 for the first registration).
    pub epoch: u64,
    /// Whether this registration superseded a previous incarnation.
    pub reincarnation: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    epoch: u64,
    conn: Option<u64>,
}

/// Per-executor registration epochs and current-connection tracking.
///
/// # Examples
///
/// ```
/// use sae_live::epochs::{Admission, EpochRegistry};
///
/// let mut reg = EpochRegistry::new(2);
/// let first = reg.register(0, 7);
/// assert_eq!((first.epoch, first.reincarnation), (1, false));
/// assert_eq!(reg.admit(0, 7), Admission::Current);
/// // The executor reconnects on a new socket: the old one is fenced.
/// let second = reg.register(0, 9);
/// assert_eq!((second.epoch, second.reincarnation), (2, true));
/// assert_eq!(reg.admit(0, 7), Admission::Stale);
/// assert_eq!(reg.admit(0, 9), Admission::Current);
/// ```
#[derive(Debug, Clone)]
pub struct EpochRegistry {
    entries: Vec<Entry>,
}

impl EpochRegistry {
    /// A registry for executors `0..n`, all unregistered (epoch 0).
    pub fn new(n: usize) -> Self {
        Self {
            entries: vec![Entry::default(); n],
        }
    }

    /// Books a Register handshake from `executor` on connection `conn`:
    /// bumps the epoch and makes `conn` the only admitted connection.
    ///
    /// A registration that replaces an earlier incarnation (any previous
    /// epoch > 0) reports `reincarnation: true` so the driver can requeue
    /// the predecessor's work and journal the rebirth.
    pub fn register(&mut self, executor: usize, conn: u64) -> Registration {
        let e = &mut self.entries[executor];
        let reincarnation = e.epoch > 0;
        e.epoch += 1;
        e.conn = Some(conn);
        Registration {
            epoch: e.epoch,
            reincarnation,
        }
    }

    /// Opens a new epoch for `executor` *without* changing its connection —
    /// the driver-side resurrection path, taken when frames keep arriving
    /// on the current connection of an executor previously declared lost
    /// (a healed partition: the socket never died). Returns the new epoch.
    pub fn resurrect(&mut self, executor: usize) -> u64 {
        let e = &mut self.entries[executor];
        e.epoch += 1;
        e.epoch
    }

    /// Whether a frame from `executor` on `conn` belongs to the current
    /// incarnation. Unregistered executors admit nothing.
    pub fn admit(&self, executor: usize, conn: u64) -> Admission {
        match self.entries.get(executor) {
            Some(e) if e.conn == Some(conn) => Admission::Current,
            _ => Admission::Stale,
        }
    }

    /// Books a connection teardown. Returns `true` (and forgets the
    /// connection) only when `conn` was current — an EOF from a fenced
    /// predecessor must not take down its successor.
    pub fn disconnect(&mut self, executor: usize, conn: u64) -> bool {
        match self.entries.get_mut(executor) {
            Some(e) if e.conn == Some(conn) => {
                e.conn = None;
                true
            }
            _ => false,
        }
    }

    /// The executor's current epoch (0 before its first registration).
    pub fn epoch(&self, executor: usize) -> u64 {
        self.entries.get(executor).map_or(0, |e| e.epoch)
    }

    /// The executor's current connection id, if one is admitted.
    pub fn current_conn(&self, executor: usize) -> Option<u64> {
        self.entries.get(executor).and_then(|e| e.conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_registration_is_epoch_one_not_a_reincarnation() {
        let mut reg = EpochRegistry::new(3);
        assert_eq!(reg.epoch(1), 0);
        assert_eq!(reg.admit(1, 5), Admission::Stale);
        let r = reg.register(1, 5);
        assert_eq!(
            r,
            Registration {
                epoch: 1,
                reincarnation: false
            }
        );
        assert_eq!(reg.admit(1, 5), Admission::Current);
        assert_eq!(reg.current_conn(1), Some(5));
    }

    #[test]
    fn reregistration_fences_the_previous_connection() {
        let mut reg = EpochRegistry::new(1);
        reg.register(0, 1);
        let r = reg.register(0, 2);
        assert!(r.reincarnation);
        assert_eq!(r.epoch, 2);
        assert_eq!(reg.admit(0, 1), Admission::Stale);
        assert_eq!(reg.admit(0, 2), Admission::Current);
    }

    #[test]
    fn stale_disconnect_is_a_no_op() {
        let mut reg = EpochRegistry::new(1);
        reg.register(0, 1);
        reg.register(0, 2);
        // The zombie's EOF arrives after its successor registered.
        assert!(!reg.disconnect(0, 1));
        assert_eq!(reg.current_conn(0), Some(2));
        assert!(reg.disconnect(0, 2));
        assert_eq!(reg.current_conn(0), None);
        assert_eq!(reg.admit(0, 2), Admission::Stale);
    }

    #[test]
    fn resurrection_bumps_the_epoch_but_keeps_the_connection() {
        let mut reg = EpochRegistry::new(1);
        reg.register(0, 4);
        assert_eq!(reg.resurrect(0), 2);
        assert_eq!(reg.current_conn(0), Some(4));
        assert_eq!(reg.admit(0, 4), Admission::Current);
    }
}
