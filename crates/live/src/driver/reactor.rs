//! The default transport: a single non-blocking reactor event loop.
//!
//! One thread owns every socket. The listener and all executor
//! connections are registered with a level-triggered poller
//! ([`sae_poll::Poller`]); each wakeup drains whatever is ready — accepts
//! in a burst, reads until `WouldBlock` with frames decoded in batches
//! through a per-connection [`FrameCursor`], queued writes flushed with
//! vectored I/O — then runs due timers off a coalesced [`TimerWheel`] and
//! assigns tasks once per batch. Compared to the blocking reference this
//! eliminates the per-connection reader threads, the acceptor's
//! sleep-poll, and the synchronous mutex-ordered writes.
//!
//! Outbound frames are queued per executor ([`QueuedOutbound`]) and
//! flushed opportunistically at the end of each wakeup; a socket that
//! cannot take more bytes gets `EPOLLOUT` interest until its queue
//! drains. Backpressure is a queue-depth high-water mark: an executor
//! whose queue is above [`HIGH_WATER`] is masked from task assignment
//! (instead of the driver blocking on its socket), and a queue that grows
//! past [`HARD_CAP`] gets its connection closed — the executor is treated
//! as lost, exactly like a broken synchronous write in the reference
//! transport. On exit, queued frames — the `Shutdown` broadcast above
//! all — are drained for up to [`DriverConfig::shutdown_drain`] before
//! connections close, fixing the race where best-effort shutdown frames
//! were dropped.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use sae_poll::{Event, Interest, Poller, TimerWheel};

use super::{DriverConfig, Ev, LiveError, LiveReport, Outbound, PoolDecision, Run, SlotInfo};
use crate::job::LiveJob;
use crate::log::Logger;
use crate::wire::{Frame, FrameCursor};

/// Write-queue depth above which an executor stops receiving new task
/// assignments until its socket drains.
const HIGH_WATER: usize = 64 * 1024;

/// Write-queue depth at which the connection is declared broken and
/// closed: the peer has stopped reading.
const HARD_CAP: usize = 4 * 1024 * 1024;

/// Poller token of the listening socket; connections use `slot + 1`.
const LISTENER_TOKEN: u64 = 0;

/// Timer-wheel payload for the periodic heartbeat/deadline/probation
/// sweep (every [`DriverConfig::check_interval`]).
const TIMER_TICK: u64 = 0;

/// Bytes one socket read may pull in per call.
const READ_CHUNK: usize = 16 * 1024;

/// Per-executor outbound write queues, flushed by the event loop.
struct Lane {
    /// The connection the queue currently targets.
    conn: Option<u64>,
    queue: VecDeque<u8>,
}

/// The reactor's [`Outbound`] sink: `send` encodes into the executor's
/// queue; the event loop moves queue bytes onto sockets.
struct QueuedOutbound {
    lanes: Vec<Lane>,
    /// Executors whose queues grew since the last flush pass.
    dirty: Vec<usize>,
    scratch: Vec<u8>,
}

impl QueuedOutbound {
    fn new(executors: usize) -> Self {
        Self {
            lanes: (0..executors)
                .map(|_| Lane {
                    conn: None,
                    queue: VecDeque::new(),
                })
                .collect(),
            dirty: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl Outbound for QueuedOutbound {
    type Writer = ();

    fn attach(&mut self, executor: usize, conn: u64, _writer: ()) {
        let lane = &mut self.lanes[executor];
        // Bytes queued for a superseded incarnation would go to a socket
        // the protocol no longer trusts; drop them with it.
        lane.conn = Some(conn);
        lane.queue.clear();
    }

    fn detach_if_current(&mut self, executor: usize, conn: u64) {
        let lane = &mut self.lanes[executor];
        if lane.conn == Some(conn) {
            lane.conn = None;
            lane.queue.clear();
        }
    }

    fn send(&mut self, executor: usize, frame: &Frame) -> Option<usize> {
        let lane = &mut self.lanes[executor];
        lane.conn?;
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        if lane.queue.is_empty() {
            self.dirty.push(executor);
        }
        lane.queue.extend(self.scratch.iter().copied());
        Some(self.scratch.len())
    }

    fn attached(&self) -> Vec<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.conn.is_some())
            .map(|(e, _)| e)
            .collect()
    }

    fn accepts_work(&self, executor: usize) -> bool {
        self.lanes[executor].queue.len() < HIGH_WATER
    }
}

/// One accepted connection's loop-side state.
struct Conn {
    stream: TcpStream,
    conn_id: u64,
    cursor: FrameCursor,
    /// Set once the handshake [`Frame::Register`] arrives.
    executor: Option<usize>,
    /// Whether `EPOLLOUT` interest is currently armed.
    want_write: bool,
}

/// Runs one job over the reactor transport.
pub(super) fn run(
    listener: TcpListener,
    cfg: &DriverConfig,
    job: &LiveJob,
    observer: impl FnMut(&PoolDecision, &[SlotInfo]),
) -> Result<LiveReport, LiveError> {
    let mut reactor = Reactor::new(listener, cfg, job, observer)?;
    let result = reactor.drive();
    // Tell executors the job is over, then keep flushing until the queues
    // are empty or the drain budget runs out — the frames are queued, not
    // yet on the wire.
    reactor.run.broadcast(&Frame::Shutdown);
    reactor.drain_writes();
    result.map(|()| reactor.run.into_report())
}

struct Reactor<'j, Obs> {
    poller: Poller,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    /// Reusable slots of closed connections. Slots freed during a wakeup
    /// park in `freed_now` until the batch ends, so stale events in the
    /// same batch can never alias a recycled token.
    free: Vec<usize>,
    freed_now: Vec<usize>,
    /// Executor id → connection slot currently serving it.
    exec_conn: Vec<Option<usize>>,
    next_conn: u64,
    events: Vec<Event>,
    wheel: TimerWheel,
    read_buf: Vec<u8>,
    run: Run<'j, Obs, QueuedOutbound>,
    log: Logger,
}

impl<'j, Obs: FnMut(&PoolDecision, &[SlotInfo])> Reactor<'j, Obs> {
    fn new(
        listener: TcpListener,
        cfg: &DriverConfig,
        job: &'j LiveJob,
        observer: Obs,
    ) -> Result<Self, LiveError> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        let run = Run::new(cfg, job, observer, QueuedOutbound::new(cfg.executors));
        Ok(Self {
            poller,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            freed_now: Vec::new(),
            exec_conn: vec![None; cfg.executors],
            next_conn: 1,
            events: Vec::new(),
            wheel: TimerWheel::new(),
            read_buf: vec![0u8; READ_CHUNK],
            run,
            log: Logger::new("driver", cfg.recorder.clone()),
        })
    }

    /// The event loop: wait for readiness or the next timer, drain what's
    /// ready, run due timers, assign once per batch.
    fn drive(&mut self) -> Result<(), LiveError> {
        if !self.run.start() {
            return Ok(());
        }
        self.wheel
            .schedule_at(Instant::now() + self.run.cfg.check_interval, TIMER_TICK);
        loop {
            self.flush_dirty()?;
            let timeout = self.wheel.next_timeout(Instant::now());
            let mut events = std::mem::take(&mut self.events);
            self.poller.wait(&mut events, timeout)?;
            self.run.metrics.wakeups.inc();
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_burst();
                    continue;
                }
                let idx = (ev.token - 1) as usize;
                if idx >= self.conns.len() || self.conns[idx].is_none() {
                    continue; // closed earlier in this batch
                }
                if ev.readable || ev.error {
                    self.read_drain(idx)?;
                }
                if ev.writable {
                    let executor = self.conns[idx].as_ref().and_then(|c| c.executor);
                    if let Some(e) = executor {
                        self.flush_executor(e)?;
                    }
                }
            }
            self.events = events;
            for (_, what) in self.wheel.expire(Instant::now()) {
                if what == TIMER_TICK {
                    self.run.check_heartbeats()?;
                    self.run.check_task_deadlines()?;
                    self.run.check_probation();
                    self.run.check_degraded()?;
                    self.wheel
                        .schedule_at(Instant::now() + self.run.cfg.check_interval, TIMER_TICK);
                }
            }
            self.run.try_assign()?;
            self.free.append(&mut self.freed_now);
            if self.run.finished {
                return Ok(());
            }
            if self.run.started.elapsed() > self.run.cfg.deadline {
                return Err(LiveError::DeadlineExceeded);
            }
        }
    }

    /// Accepts every pending connection.
    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn_id = self.next_conn;
                    self.next_conn += 1;
                    let idx = match self.free.pop() {
                        Some(idx) => idx,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .poller
                        .register(&stream, idx as u64 + 1, Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    self.conns[idx] = Some(Conn {
                        stream,
                        conn_id,
                        cursor: FrameCursor::new(),
                        executor: None,
                        want_write: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.log.error(|| format!("acceptor died: {e}"));
                    let _ = self.poller.deregister(&self.listener);
                    return;
                }
            }
        }
    }

    /// Reads a connection until `WouldBlock`, decoding every complete
    /// frame in the batch through the protocol state machine.
    fn read_drain(&mut self, idx: usize) -> Result<(), LiveError> {
        loop {
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return Ok(()),
            };
            match conn.stream.read(&mut self.read_buf) {
                Ok(0) => return self.close_and_report(idx),
                Ok(n) => {
                    conn.cursor.extend(&self.read_buf[..n]);
                    loop {
                        let conn = match self.conns[idx].as_mut() {
                            Some(c) => c,
                            None => return Ok(()),
                        };
                        let frame = match conn.cursor.next() {
                            Ok(Some(frame)) => frame,
                            Ok(None) => break,
                            // Framing is lost; the connection is unusable.
                            Err(_) => return self.close_and_report(idx),
                        };
                        let bytes = conn.cursor.last_frame_len();
                        let conn_id = conn.conn_id;
                        match conn.executor {
                            Some(executor) => self.run.handle(Ev::Frame {
                                executor,
                                conn: conn_id,
                                frame,
                                bytes,
                            })?,
                            None => {
                                // The handshake: first frame must register.
                                let Frame::Register { executor, slots } = frame else {
                                    self.close_silent(idx);
                                    return Ok(());
                                };
                                conn.executor = Some(executor);
                                self.run.handle(Ev::Registered {
                                    executor,
                                    slots,
                                    conn: conn_id,
                                    writer: (),
                                })?;
                                if executor < self.exec_conn.len() {
                                    self.exec_conn[executor] = Some(idx);
                                }
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::ConnectionAborted =>
                {
                    return self.close_and_report(idx);
                }
                Err(_) => return self.close_and_report(idx),
            }
        }
    }

    /// Flushes every executor queue that grew since the last pass.
    fn flush_dirty(&mut self) -> Result<(), LiveError> {
        while let Some(e) = self.run.out.dirty.pop() {
            self.flush_executor(e)?;
        }
        Ok(())
    }

    /// Moves one executor's queued bytes onto its socket with vectored
    /// writes; arms `EPOLLOUT` on a partial flush, closes the connection
    /// on a hard error or a queue past [`HARD_CAP`].
    fn flush_executor(&mut self, e: usize) -> Result<(), LiveError> {
        let Some(idx) = self.exec_conn[e] else {
            return Ok(());
        };
        loop {
            let lane = &mut self.run.out.lanes[e];
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return Ok(()),
            };
            if lane.conn != Some(conn.conn_id) {
                return Ok(()); // queue retargeted mid-flight
            }
            if lane.queue.is_empty() {
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self
                        .poller
                        .modify(&conn.stream, idx as u64 + 1, Interest::READABLE);
                }
                return Ok(());
            }
            let (a, b) = lane.queue.as_slices();
            let bufs = [IoSlice::new(a), IoSlice::new(b)];
            match conn.stream.write_vectored(&bufs) {
                Ok(0) => return self.close_and_report(idx),
                Ok(n) => {
                    lane.queue.drain(..n);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if lane.queue.len() > HARD_CAP {
                        // The peer stopped reading; a blocking write would
                        // have wedged the driver here. Cut it loose.
                        self.log.error(|| {
                            format!("executor {e} write queue overflowed; closing its connection")
                        });
                        return self.close_and_report(idx);
                    }
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self
                            .poller
                            .modify(&conn.stream, idx as u64 + 1, Interest::BOTH);
                    }
                    return Ok(());
                }
                Err(_) => return self.close_and_report(idx),
            }
        }
    }

    /// Closes a connection and reports it to the state machine, which
    /// fences stale incarnations and declares current ones lost.
    fn close_and_report(&mut self, idx: usize) -> Result<(), LiveError> {
        if let Some((executor, conn)) = self.close_silent(idx) {
            self.run.handle(Ev::Gone { executor, conn })?;
        }
        Ok(())
    }

    /// Tears down a connection's loop state without informing the state
    /// machine (unregistered handshake failures, drain-phase closes).
    fn close_silent(&mut self, idx: usize) -> Option<(usize, u64)> {
        let conn = self.conns[idx].take()?;
        let _ = self.poller.deregister(&conn.stream);
        self.freed_now.push(idx);
        if let Some(e) = conn.executor {
            if self.exec_conn.get(e).copied().flatten() == Some(idx) {
                self.exec_conn[e] = None;
            }
            return Some((e, conn.conn_id));
        }
        None
    }

    /// Flushes all queued frames, bounded by
    /// [`DriverConfig::shutdown_drain`]. Runs after the job is decided, so
    /// write failures just close the connection — nothing is reported.
    fn drain_writes(&mut self) {
        let deadline = Instant::now() + self.run.cfg.shutdown_drain;
        loop {
            let mut blocked = false;
            for e in 0..self.run.out.lanes.len() {
                loop {
                    let lane = &mut self.run.out.lanes[e];
                    if lane.queue.is_empty() {
                        break;
                    }
                    let Some(idx) = self.exec_conn[e] else {
                        lane.queue.clear();
                        break;
                    };
                    let conn = match self.conns[idx].as_mut() {
                        Some(c) if lane.conn == Some(c.conn_id) => c,
                        _ => {
                            lane.queue.clear();
                            break;
                        }
                    };
                    let (a, b) = lane.queue.as_slices();
                    let bufs = [IoSlice::new(a), IoSlice::new(b)];
                    match conn.stream.write_vectored(&bufs) {
                        Ok(0) => {
                            self.close_silent(idx);
                            break;
                        }
                        Ok(n) => {
                            lane.queue.drain(..n);
                        }
                        Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                        Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                            blocked = true;
                            break;
                        }
                        Err(_) => {
                            self.close_silent(idx);
                            break;
                        }
                    }
                }
            }
            let now = Instant::now();
            if !blocked || now >= deadline {
                return;
            }
            let mut events = std::mem::take(&mut self.events);
            let nap = (deadline - now).min(Duration::from_millis(5));
            let _ = self.poller.wait(&mut events, Some(nap));
            self.events = events;
        }
    }
}
