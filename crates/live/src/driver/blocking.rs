//! The pinned reference transport: thread-per-connection over a channel.
//!
//! This is the driver's original wire layout, kept verbatim as the
//! behavioural baseline the reactor is benchmarked and equivalence-tested
//! against: a polling acceptor thread spawns one reader thread per
//! connection, readers translate socket frames into channel events, and
//! the single-threaded protocol loop pumps the channel with
//! `recv_timeout` standing in for the virtual clock. Writes are
//! synchronous `write_all`s on the protocol thread.
//!
//! Select it with [`super::DriverTransport::Blocking`] or by setting
//! `SAE_REFERENCE_DRIVER=1`.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use super::{DriverConfig, Ev, LiveError, LiveReport, Outbound, PoolDecision, Run, SlotInfo};
use crate::job::LiveJob;
use crate::log::Logger;
use crate::wire::{Frame, FrameReader, FrameWriter, Next};

/// Synchronous writer map: one [`FrameWriter`] per executor, writes
/// happen inline on the protocol thread.
#[derive(Default)]
struct SyncOutbound {
    writers: HashMap<usize, (u64, FrameWriter)>,
}

impl Outbound for SyncOutbound {
    type Writer = FrameWriter;

    fn attach(&mut self, executor: usize, conn: u64, writer: FrameWriter) {
        self.writers.insert(executor, (conn, writer));
    }

    fn detach_if_current(&mut self, executor: usize, conn: u64) {
        if self.writers.get(&executor).is_some_and(|(c, _)| *c == conn) {
            self.writers.remove(&executor);
        }
    }

    fn send(&mut self, executor: usize, frame: &Frame) -> Option<usize> {
        let (_, w) = self.writers.get_mut(&executor)?;
        w.send(frame).ok()
    }

    fn attached(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.writers.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Runs one job over the thread-per-connection transport.
pub(super) fn run(
    listener: TcpListener,
    cfg: &DriverConfig,
    job: &LiveJob,
    observer: impl FnMut(&PoolDecision, &[SlotInfo]),
) -> Result<LiveReport, LiveError> {
    let (tx, rx) = unbounded();
    let stop_accepting = Arc::new(AtomicBool::new(false));
    let log = Logger::new("driver", cfg.recorder.clone());
    spawn_acceptor(
        listener,
        tx.clone(),
        Arc::clone(&stop_accepting),
        cfg.check_interval,
        log,
    );
    let mut run = Run::new(cfg, job, observer, SyncOutbound::default());
    let result = drive(&mut run, &rx);
    // Tell executors the job is over (best-effort); the polling
    // acceptor notices the stop flag within one check interval.
    run.broadcast(&Frame::Shutdown);
    stop_accepting.store(true, Ordering::Relaxed);
    drop(tx);
    result.map(|()| run.into_report())
}

/// The main event loop: pump events, check timers, until the job
/// completes or dies.
fn drive<Obs: FnMut(&PoolDecision, &[SlotInfo])>(
    run: &mut Run<'_, Obs, SyncOutbound>,
    rx: &Receiver<Ev<FrameWriter>>,
) -> Result<(), LiveError> {
    if !run.start() {
        return Ok(());
    }
    loop {
        match rx.recv_timeout(run.cfg.check_interval) {
            Ok(ev) => run.handle(ev)?,
            Err(RecvTimeoutError::Timeout) => {}
            // All reader threads hung up; timers below still decide.
            Err(RecvTimeoutError::Disconnected) => {}
        }
        run.metrics.wakeups.inc();
        run.check_heartbeats()?;
        run.check_task_deadlines()?;
        run.check_probation();
        run.try_assign()?;
        if run.finished {
            return Ok(());
        }
        if run.started.elapsed() > run.cfg.deadline {
            return Err(LiveError::DeadlineExceeded);
        }
        run.check_degraded()?;
    }
}

/// Accepts executor connections — as many as arrive, for as long as the
/// run lasts, because reincarnated executors connect late — spawning one
/// reader thread per connection, each tagged with a unique connection id.
///
/// The listener is polled in non-blocking mode so the stop flag is
/// honoured without anyone having to connect to wake the thread up; an
/// accept error is logged (it previously vanished silently) and ends the
/// acceptor, the event loop's `recv_timeout` keeping the driver live.
fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Ev<FrameWriter>>,
    stop: Arc<AtomicBool>,
    poll_interval: Duration,
    log: Logger,
) {
    std::thread::spawn(move || {
        if let Err(e) = listener.set_nonblocking(true) {
            log.error(|| format!("acceptor cannot poll its listener: {e}"));
            return;
        }
        let mut next_conn: u64 = 1;
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets must block: readers rely on it.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    spawn_reader(stream, next_conn, tx.clone());
                    next_conn += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll_interval);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    log.error(|| format!("acceptor died: {e}"));
                    return;
                }
            }
        }
        log.debug(|| "acceptor stopped".into());
    });
}

/// Reads frames off one executor connection and forwards them as events.
///
/// The first frame must be a [`Frame::Register`]; anything else abandons
/// the connection. Registration hands the stream's write half to the
/// driver loop, which owns the writer map and decides — through the
/// epoch registry — whether this connection supersedes an earlier one.
fn spawn_reader(stream: TcpStream, conn: u64, tx: Sender<Ev<FrameWriter>>) {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = FrameReader::new(read_half);
        let (executor, slots) = match reader.next_frame() {
            Ok(Next::Frame(Frame::Register { executor, slots })) => (executor, slots),
            _ => return,
        };
        let writer = FrameWriter::new(stream);
        if tx
            .send(Ev::Registered {
                executor,
                slots,
                conn,
                writer,
            })
            .is_err()
        {
            return;
        }
        loop {
            match reader.next_frame() {
                Ok(Next::Frame(frame)) => {
                    let bytes = reader.last_frame_len();
                    if tx
                        .send(Ev::Frame {
                            executor,
                            conn,
                            frame,
                            bytes,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Ok(Next::Idle) => {}
                Ok(Next::Eof) | Err(_) => {
                    let _ = tx.send(Ev::Gone { executor, conn });
                    return;
                }
            }
        }
    });
}
