//! Real task bodies for the live executors.
//!
//! Unlike the simulator, which charges virtual seconds for modelled I/O,
//! these tasks *do* the work: a spill task generates Terasort records and
//! writes them through `sae_workloads::spill`; a sort task reads the
//! partition back, sorts it by key and writes the sorted run. Measured I/O
//! (bytes moved, wall time blocked) is recorded into the executor's
//! [`CounterProbe`] so the MAPE-K monitor sees the task's true I/O share —
//! this is the per-task half of the shared probe, needed because all
//! executors of a live cluster share one OS process and `/proc/self/io`
//! alone cannot attribute traffic to an executor.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use sae_pool::CounterProbe;
use sae_workloads::datagen::teragen;
use sae_workloads::spill::{read_records, write_records, RECORD_BYTES};

use crate::job::LiveStageKind;

/// Job id used by the single-job `Run` path, which predates multi-job
/// serving: its artifacts live in the `j0-` namespace.
pub const SINGLE_JOB: u64 = 0;

/// Path of job `job` task `task`'s spill partition inside `dir`.
///
/// The job prefix namespaces the shared spill dir: a job server runs many
/// jobs against one fleet and one TempDir, and two jobs' task 3 must not
/// collide (same-keyed files would cross-contaminate lineage recovery).
pub fn spill_path(dir: &Path, job: u64, task: usize) -> PathBuf {
    dir.join(format!("j{job}-t{task}.spill"))
}

/// Path of job `job` task `task`'s sorted output inside `dir`.
pub fn sorted_path(dir: &Path, job: u64, task: usize) -> PathBuf {
    dir.join(format!("j{job}-t{task}.sorted"))
}

/// Derives task `task`'s record-stream seed from the stage seed.
fn task_seed(seed: u64, task: usize) -> u64 {
    seed ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Path a corrupt spill is quarantined under for post-mortem inspection.
fn quarantine_path(dir: &Path, job: u64, task: usize) -> PathBuf {
    dir.join(format!("j{job}-t{task}.spill.corrupt"))
}

/// Reads task `task`'s spill partition, recovering from the two spill
/// failure modes:
///
/// * **Corrupt** (checksum/format mismatch): the file is quarantined under
///   `t<task>.spill.corrupt` and the error propagates, so the driver sees
///   a *retryable* task failure instead of a mis-sorted run.
/// * **Missing** (never written here, or quarantined by a previous
///   attempt): the partition is regenerated from its deterministic
///   lineage — `teragen` over [`task_seed`] produces byte-identical
///   records to the original spill task on any executor — re-spilled, and
///   the sort proceeds.
fn read_or_regenerate(
    dir: &Path,
    job: u64,
    task: usize,
    records_per_task: usize,
    seed: u64,
    io_probe: &CounterProbe,
) -> io::Result<Vec<sae_workloads::datagen::TeraRecord>> {
    match read_records(&spill_path(dir, job, task)) {
        Ok(records) => Ok(records),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            let _ = std::fs::rename(spill_path(dir, job, task), quarantine_path(dir, job, task));
            Err(e)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let records = teragen(records_per_task, task_seed(seed, task));
            let started = Instant::now();
            let bytes = write_records(&spill_path(dir, job, task), &records)?;
            io_probe.record(bytes, started.elapsed());
            Ok(records)
        }
        Err(e) => Err(e),
    }
}

/// Runs one task attempt to completion, recording its I/O into `io_probe`.
///
/// Errors propagate to the caller, which reports a `TaskFailed` to the
/// driver — e.g. a sort task whose input partition failed its checksum
/// (the corrupt file is quarantined, so the retry regenerates it from
/// lineage and completes).
pub fn run_task(
    kind: LiveStageKind,
    job: u64,
    task: usize,
    records_per_task: usize,
    seed: u64,
    dir: &Path,
    io_probe: &CounterProbe,
) -> io::Result<()> {
    match kind {
        LiveStageKind::Spill => {
            let records = teragen(records_per_task, task_seed(seed, task));
            let started = Instant::now();
            let bytes = write_records(&spill_path(dir, job, task), &records)?;
            io_probe.record(bytes, started.elapsed());
        }
        LiveStageKind::Sort => {
            let read_started = Instant::now();
            let mut records = read_or_regenerate(dir, job, task, records_per_task, seed, io_probe)?;
            io_probe.record(
                (records.len() * RECORD_BYTES) as u64,
                read_started.elapsed(),
            );
            records.sort_unstable_by_key(|r| r.key);
            if records.windows(2).any(|w| w[0].key > w[1].key) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("task {task}: sorted run is out of order"),
                ));
            }
            let write_started = Instant::now();
            let bytes = write_records(&sorted_path(dir, job, task), &records)?;
            io_probe.record(bytes, write_started.elapsed());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_workloads::spill::FOOTER_BYTES;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sae-live-task-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spill_then_sort_produces_a_sorted_run() {
        let dir = temp_dir("spill-sort");
        let probe = CounterProbe::new();
        run_task(LiveStageKind::Spill, 0, 4, 300, 11, &dir, &probe).unwrap();
        run_task(LiveStageKind::Sort, 0, 4, 300, 11, &dir, &probe).unwrap();
        let sorted = read_records(&sorted_path(&dir, 0, 4)).unwrap();
        assert_eq!(sorted.len(), 300);
        assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
        let (wait_secs, mb) = probe.sample();
        assert!(wait_secs >= 0.0);
        // Spill write + sort read + sort write = 3 passes over the data;
        // the two writes also carry the checksum footer.
        let expected_mb = (3 * 300 * RECORD_BYTES + 2 * FOOTER_BYTES) as f64 / (1024.0 * 1024.0);
        assert!(
            (mb - expected_mb).abs() < 1e-9,
            "got {mb}, want {expected_mb}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sort_without_spill_regenerates_from_lineage() {
        let dir = temp_dir("no-spill");
        let probe = CounterProbe::new();
        // No spill task ever ran here: the sort regenerates the partition
        // from its deterministic lineage and still produces the same run a
        // spill-then-sort pair would.
        run_task(LiveStageKind::Sort, 0, 0, 10, 1, &dir, &probe).unwrap();
        let mut expected = teragen(10, task_seed(1, 0));
        expected.sort_unstable_by_key(|r| r.key);
        assert_eq!(read_records(&sorted_path(&dir, 0, 0)).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_spill_fails_retryably_then_recovers() {
        let dir = temp_dir("corrupt-spill");
        let probe = CounterProbe::new();
        run_task(LiveStageKind::Spill, 0, 3, 200, 17, &dir, &probe).unwrap();
        // Bit rot lands in the middle of the spill.
        let path = spill_path(&dir, 0, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // First sort attempt: a retryable failure, the corpse quarantined.
        let err = run_task(LiveStageKind::Sort, 0, 3, 200, 17, &dir, &probe).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!path.exists(), "corrupt spill must be quarantined");
        assert!(quarantine_path(&dir, 0, 3).exists());
        // The retry regenerates from lineage and completes.
        run_task(LiveStageKind::Sort, 0, 3, 200, 17, &dir, &probe).unwrap();
        let sorted = read_records(&sorted_path(&dir, 0, 3)).unwrap();
        assert_eq!(sorted.len(), 200);
        assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retried_spill_overwrites_the_partial_attempt() {
        let dir = temp_dir("retry");
        let probe = CounterProbe::new();
        // A "crashed" first attempt leaves a partial record behind.
        std::fs::write(spill_path(&dir, 0, 2), [0u8; 42]).unwrap();
        run_task(LiveStageKind::Spill, 0, 2, 50, 3, &dir, &probe).unwrap();
        run_task(LiveStageKind::Sort, 0, 2, 50, 3, &dir, &probe).unwrap();
        assert_eq!(read_records(&sorted_path(&dir, 0, 2)).unwrap().len(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn task_seeds_differ_per_task() {
        assert_ne!(task_seed(7, 0), task_seed(7, 1));
    }
}
