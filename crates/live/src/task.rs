//! Real task bodies for the live executors.
//!
//! Unlike the simulator, which charges virtual seconds for modelled I/O,
//! these tasks *do* the work: a spill task generates Terasort records and
//! writes them through `sae_workloads::spill`; a sort task reads the
//! partition back, sorts it by key and writes the sorted run. Measured I/O
//! (bytes moved, wall time blocked) is recorded into the executor's
//! [`CounterProbe`] so the MAPE-K monitor sees the task's true I/O share —
//! this is the per-task half of the shared probe, needed because all
//! executors of a live cluster share one OS process and `/proc/self/io`
//! alone cannot attribute traffic to an executor.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use sae_pool::CounterProbe;
use sae_workloads::datagen::teragen;
use sae_workloads::spill::{read_records, write_records, RECORD_BYTES};

use crate::job::LiveStageKind;

/// Path of task `task`'s spill partition inside `dir`.
pub fn spill_path(dir: &Path, task: usize) -> PathBuf {
    dir.join(format!("t{task}.spill"))
}

/// Path of task `task`'s sorted output inside `dir`.
pub fn sorted_path(dir: &Path, task: usize) -> PathBuf {
    dir.join(format!("t{task}.sorted"))
}

/// Derives task `task`'s record-stream seed from the stage seed.
fn task_seed(seed: u64, task: usize) -> u64 {
    seed ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one task attempt to completion, recording its I/O into `io_probe`.
///
/// Errors propagate to the caller, which reports a `TaskFailed` to the
/// driver — e.g. a sort task whose input partition is missing or corrupt.
pub fn run_task(
    kind: LiveStageKind,
    task: usize,
    records_per_task: usize,
    seed: u64,
    dir: &Path,
    io_probe: &CounterProbe,
) -> io::Result<()> {
    match kind {
        LiveStageKind::Spill => {
            let records = teragen(records_per_task, task_seed(seed, task));
            let started = Instant::now();
            let bytes = write_records(&spill_path(dir, task), &records)?;
            io_probe.record(bytes, started.elapsed());
        }
        LiveStageKind::Sort => {
            let read_started = Instant::now();
            let mut records = read_records(&spill_path(dir, task))?;
            io_probe.record(
                (records.len() * RECORD_BYTES) as u64,
                read_started.elapsed(),
            );
            records.sort_unstable_by_key(|r| r.key);
            if records.windows(2).any(|w| w[0].key > w[1].key) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("task {task}: sorted run is out of order"),
                ));
            }
            let write_started = Instant::now();
            let bytes = write_records(&sorted_path(dir, task), &records)?;
            io_probe.record(bytes, write_started.elapsed());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sae-live-task-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spill_then_sort_produces_a_sorted_run() {
        let dir = temp_dir("spill-sort");
        let probe = CounterProbe::new();
        run_task(LiveStageKind::Spill, 4, 300, 11, &dir, &probe).unwrap();
        run_task(LiveStageKind::Sort, 4, 300, 11, &dir, &probe).unwrap();
        let sorted = read_records(&sorted_path(&dir, 4)).unwrap();
        assert_eq!(sorted.len(), 300);
        assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
        let (wait_secs, mb) = probe.sample();
        assert!(wait_secs >= 0.0);
        // Spill write + sort read + sort write = 3 passes over the data.
        let expected_mb = (3 * 300 * RECORD_BYTES) as f64 / (1024.0 * 1024.0);
        assert!(
            (mb - expected_mb).abs() < 1e-9,
            "got {mb}, want {expected_mb}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sort_without_spill_fails_cleanly() {
        let dir = temp_dir("no-spill");
        let probe = CounterProbe::new();
        let err = run_task(LiveStageKind::Sort, 0, 10, 1, &dir, &probe).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retried_spill_overwrites_the_partial_attempt() {
        let dir = temp_dir("retry");
        let probe = CounterProbe::new();
        // A "crashed" first attempt leaves a partial record behind.
        std::fs::write(spill_path(&dir, 2), [0u8; 42]).unwrap();
        run_task(LiveStageKind::Spill, 2, 50, 3, &dir, &probe).unwrap();
        run_task(LiveStageKind::Sort, 2, 50, 3, &dir, &probe).unwrap();
        assert_eq!(read_records(&sorted_path(&dir, 2)).unwrap().len(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn task_seeds_differ_per_task() {
        assert_ne!(task_seed(7, 0), task_seed(7, 1));
    }
}
