//! The nemesis: a seeded, frame-aware wire-fault proxy.
//!
//! The nemesis sits between the executors and the driver as an in-process
//! TCP proxy. Executors connect to [`Nemesis::addr`] instead of the
//! driver; each accepted connection is paired with a fresh upstream
//! connection to the real driver, and two pump threads relay bytes in
//! both directions. The pumps are *frame-aware*: they reassemble the
//! length-prefixed protocol frames (via [`sae_dag::codec::split_frame`],
//! the same framing layer both runtimes use) so faults land on whole
//! protocol messages, never on arbitrary byte boundaries — except for
//! [`WireFaultKind::Reset`], whose whole point is to chop a frame in half.
//!
//! Which faults land where and when comes from the run's [`FaultPlan`]:
//! each [`WireFault`] names an executor, a direction, a `[at, at+duration)`
//! window on the recorder clock, and a kind. Probabilistic kinds (drop,
//! duplicate) draw from an xorshift64* stream seeded by
//! `plan.seed ⊕ executor-salt ⊕ direction-salt`, so the same plan over the
//! same job perturbs the same frames — the live analogue of the simulator's
//! dedicated fault RNG stream.
//!
//! Every first frame caught by a window pushes a
//! [`LiveEvent::FaultInjected`] onto the flight recorder, and all
//! perturbations tick `live.nemesis.*` counters, so a chaos run's trace
//! shows exactly which faults actually bit.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sae_dag::codec::split_frame;
use sae_dag::{FaultPlan, WireFault, WireFaultKind};
use sae_metrics::{Counter, MetricRegistry};

use crate::log::Logger;
use crate::recorder::{FlightRecorder, LiveEvent};
use crate::wire::Frame;

/// Which way a pump moves bytes (executor→driver or driver→executor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    ToDriver,
    ToExecutor,
}

impl Dir {
    fn covers(self, fault: &WireFault) -> bool {
        match self {
            Dir::ToDriver => fault.direction.covers_to_driver(),
            Dir::ToExecutor => fault.direction.covers_to_executor(),
        }
    }

    fn salt(self) -> u64 {
        match self {
            Dir::ToDriver => 0x5EED_00D1_u64,
            Dir::ToExecutor => 0x5EED_00E7_u64,
        }
    }
}

/// The shared, cheap-to-clone state every pump thread reads.
struct Shared {
    plan: FaultPlan,
    recorder: FlightRecorder,
    log: Logger,
    frames_dropped: Counter,
    frames_delayed: Counter,
    frames_duplicated: Counter,
    frames_throttled: Counter,
    resets: Counter,
}

/// A seeded wire-fault proxy between the executors and the driver.
///
/// Launch it pointed at the driver's address, then have executors connect
/// to [`Nemesis::addr`]. With an empty [`FaultPlan`] it is a transparent
/// relay; with wire faults scheduled it perturbs exactly the frames the
/// plan covers. Dropping (or [`Nemesis::shutdown`]) stops the accept loop;
/// in-flight sessions drain on their own when either endpoint hangs up.
#[derive(Debug)]
pub struct Nemesis {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Nemesis {
    /// Binds a loopback proxy in front of the driver at `upstream`.
    pub fn launch(
        upstream: SocketAddr,
        plan: &FaultPlan,
        recorder: FlightRecorder,
        metrics: &MetricRegistry,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            plan: plan.clone(),
            recorder: recorder.clone(),
            log: Logger::new("nemesis".to_string(), recorder),
            frames_dropped: metrics.counter("live.nemesis.frames_dropped"),
            frames_delayed: metrics.counter("live.nemesis.frames_delayed"),
            frames_duplicated: metrics.counter("live.nemesis.frames_duplicated"),
            frames_throttled: metrics.counter("live.nemesis.frames_throttled"),
            resets: metrics.counter("live.nemesis.resets"),
        });
        let flag = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((downstream, _)) => {
                        let shared = Arc::clone(&shared);
                        std::thread::spawn(move || {
                            if let Err(e) = run_session(downstream, upstream, &shared) {
                                shared.log.debug(|| format!("session ended: {e}"));
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        shared.log.error(|| format!("nemesis acceptor died: {e}"));
                        return;
                    }
                }
            }
        });
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The address executors should connect to instead of the driver's.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new sessions and joins the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Nemesis {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One proxied executor connection: learn who this is from the Register
/// handshake (forwarded untouched), then pump both directions with faults.
fn run_session(
    downstream: TcpStream,
    upstream: SocketAddr,
    shared: &Arc<Shared>,
) -> io::Result<()> {
    downstream.set_nodelay(true)?;
    let up = TcpStream::connect(upstream)?;
    up.set_nodelay(true)?;

    // Peek the handshake: the first frame an executor sends is Register,
    // which names it. Forward the bytes untouched — the handshake itself
    // is never perturbed, so every incarnation can at least identify
    // itself before its link starts misbehaving.
    let mut down_read = downstream.try_clone()?;
    let mut up_write = up.try_clone()?;
    let mut buf: Vec<u8> = Vec::with_capacity(256);
    let executor = loop {
        match Frame::decode(&buf) {
            Ok(Some((Frame::Register { executor, .. }, _))) => break executor,
            Ok(Some((frame, _))) => {
                shared
                    .log
                    .error(|| format!("first frame was {} not register", frame.kind_str()));
                return Ok(());
            }
            Ok(None) => {}
            Err(e) => {
                shared.log.error(|| format!("bad handshake: {e:?}"));
                return Ok(());
            }
        }
        let mut chunk = [0u8; 256];
        let n = down_read.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // gone before registering
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    up_write.write_all(&buf)?;
    shared
        .log
        .debug(|| format!("session up for executor {executor}"));

    let up_read = up.try_clone()?;
    let down_write = downstream.try_clone()?;
    // One "window entered" latch per plan fault, shared by both pump
    // directions, so FaultInjected lands once per window per session —
    // not once per frame, and not once per direction.
    let entered: Arc<Vec<AtomicBool>> = Arc::new(
        shared
            .plan
            .wire
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect(),
    );
    let s = Arc::clone(shared);
    let latches = Arc::clone(&entered);
    let to_exec = std::thread::spawn(move || {
        pump(up_read, down_write, executor, Dir::ToExecutor, &latches, &s);
    });
    pump(
        down_read,
        up_write,
        executor,
        Dir::ToDriver,
        &entered,
        shared,
    );
    let _ = to_exec.join();
    Ok(())
}

/// xorshift64* — deterministic per (plan seed, executor, direction).
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform draw in `[0, 1)` from the stream.
fn uniform(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Relays frames from `src` to `dst`, applying every plan fault whose
/// executor, direction, and time window cover the frame. Exits when either
/// socket dies, propagating the hangup so the far side sees EOF just like
/// it would on a direct connection.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    executor: usize,
    dir: Dir,
    entered: &Arc<Vec<AtomicBool>>,
    shared: &Arc<Shared>,
) {
    let mut rng =
        shared.plan.seed ^ (executor as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dir.salt();
    rng |= 1;
    let mut buf: Vec<u8> = Vec::with_capacity(8192);
    let mut chunk = [0u8; 8192];
    loop {
        // Drain every complete frame currently buffered.
        let mut consumed = 0;
        loop {
            let frame_len = match split_frame(&buf[consumed..]) {
                Ok(Some((_, len))) => len,
                Ok(None) => break,
                Err(e) => {
                    shared.log.error(|| format!("unframeable bytes: {e:?}"));
                    let _ = src.shutdown(Shutdown::Both);
                    let _ = dst.shutdown(Shutdown::Both);
                    return;
                }
            };
            let frame = &buf[consumed..consumed + frame_len];
            if !forward(frame, executor, dir, &mut rng, entered, &mut dst, shared) {
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
            consumed += frame_len;
        }
        buf.drain(..consumed);
        match src.read(&mut chunk) {
            Ok(0) => {
                // Propagate the hangup: the far side gets EOF as if the
                // link were direct.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

/// Applies the plan to one frame and forwards (or drops) it. Returns
/// `false` when the session must die (reset fault or a dead peer).
fn forward(
    frame: &[u8],
    executor: usize,
    dir: Dir,
    rng: &mut u64,
    entered: &[AtomicBool],
    dst: &mut TcpStream,
    shared: &Arc<Shared>,
) -> bool {
    let now = shared.recorder.now();
    let mut duplicate = false;
    for (i, fault) in shared.plan.wire.iter().enumerate() {
        if fault.executor != executor
            || !dir.covers(fault)
            || now < fault.at
            || now >= fault.at + fault.duration
        {
            continue;
        }
        if !entered[i].swap(true, Ordering::Relaxed) {
            shared.recorder.push(LiveEvent::FaultInjected {
                executor,
                kind: fault.kind.label(),
                at: now,
            });
            shared.log.info(|| {
                format!(
                    "window open: {} on executor {executor} ({dir:?})",
                    fault.kind.label()
                )
            });
        }
        match fault.kind {
            WireFaultKind::Partition => {
                shared.frames_dropped.inc();
                return true; // discard silently; the link looks dead
            }
            WireFaultKind::Drop { probability } => {
                if uniform(rng) < probability {
                    shared.frames_dropped.inc();
                    return true;
                }
            }
            WireFaultKind::Duplicate { probability } => {
                if uniform(rng) < probability {
                    duplicate = true;
                }
            }
            WireFaultKind::Delay { seconds } => {
                shared.frames_delayed.inc();
                std::thread::sleep(Duration::from_secs_f64(seconds));
            }
            WireFaultKind::Throttle { bytes_per_sec } => {
                shared.frames_throttled.inc();
                let pace = frame.len() as f64 / bytes_per_sec.max(1.0);
                std::thread::sleep(Duration::from_secs_f64(pace));
            }
            WireFaultKind::Reset => {
                // The signature mid-frame cut: half the bytes, then the
                // floor drops out under both sockets.
                shared.resets.inc();
                let _ = dst.write_all(&frame[..frame.len() / 2]);
                return false;
            }
        }
    }
    if dst.write_all(frame).is_err() {
        return false;
    }
    if duplicate {
        shared.frames_duplicated.inc();
        if dst.write_all(frame).is_err() {
            return false;
        }
    }
    true
}
