//! The live executor: an [`AdaptivePool`] behind a TCP connection.
//!
//! Each executor connects to the driver, registers, and then services
//! `AssignTask` messages by running real Terasort tasks on its adaptive
//! pool. The §5.4 protocol extension is wired through the pool's resize
//! hook: every effective pool-size change — the reset at a stage boundary
//! and every MAPE-K decision — emits a `PoolSizeChanged` frame, which is
//! what keeps the driver's slot registry consistent.
//!
//! The pool's I/O probe is the live runtime's *shared probe*: an explicit
//! per-task [`CounterProbe`] (tasks record the bytes they moved and the
//! wall time they were blocked) combined with the process-wide procfs
//! stage probe. The explicit half is what makes multi-executor
//! single-process runs attributable; the procfs half catches traffic the
//! tasks did not account for.
//!
//! Observability rides the same shared handles the driver uses: every
//! frame sent or received updates the `live.executor.*{executor="N"}`
//! metrics and lands on the cluster's [`FlightRecorder`], the MAPE-K
//! controller appends to a [`DecisionJournal`] the cluster can read, and
//! at shutdown the journal's ζ samples are replayed onto the recorder so
//! the merged Chrome trace gains a per-executor `zeta-exec{N}` counter
//! track.
//!
//! [`LiveExecutor::kill`] makes the executor *silent*, not disconnected:
//! heartbeats stop, outcome reports are suppressed, assignments are
//! swallowed, but the socket stays open. The driver therefore has to
//! detect the failure from heartbeat silence — the scenario the paper's
//! engine handles with executor-lost bookkeeping — rather than getting a
//! convenient EOF.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sae_core::{DecisionJournal, MapeConfig};
use sae_dag::{Message, TraceEvent};
use sae_metrics::{Counter, FloatCounter, MetricRegistry};
use sae_pool::procfs::proc_stage_probe;
use sae_pool::{combined_probe, AdaptivePool, CounterProbe};

use crate::job::LiveStageKind;
use crate::log::Logger;
use crate::recorder::{FlightRecorder, LiveEvent};
use crate::task::run_task;
use crate::wire::{Frame, FrameReader, FrameWriter, Next};

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct LiveExecutorConfig {
    /// Executor id (dense, `0..n`, unique per cluster).
    pub id: usize,
    /// MAPE-K controller bounds for the adaptive pool.
    pub mape: MapeConfig,
    /// Heartbeat period; keep well under the driver's timeout.
    pub heartbeat_interval: Duration,
    /// Directory spill partitions live in (shared across the cluster —
    /// sort tasks read partitions any executor wrote).
    pub spill_dir: PathBuf,
    /// Deterministic fault injection: go silent after completing this
    /// many tasks, with work still assigned.
    pub kill_after_tasks: Option<usize>,
    /// How long to retry connecting to the driver.
    pub connect_timeout: Duration,
    /// The cluster's shared flight recorder; its epoch is also the
    /// adaptive pool's time base, keeping journal timestamps and trace
    /// timestamps on one clock.
    pub recorder: FlightRecorder,
    /// The cluster's shared metric registry.
    pub metrics: MetricRegistry,
    /// The journal the executor's MAPE-K controller appends to; keep a
    /// clone to read the decisions after the run.
    pub journal: DecisionJournal,
}

impl LiveExecutorConfig {
    /// Sensible defaults for loopback testing.
    pub fn new(id: usize, spill_dir: PathBuf) -> Self {
        Self {
            id,
            mape: MapeConfig::new(2, 8),
            heartbeat_interval: Duration::from_millis(100),
            spill_dir,
            kill_after_tasks: None,
            connect_timeout: Duration::from_secs(10),
            recorder: FlightRecorder::disabled(),
            metrics: MetricRegistry::new(),
            journal: DecisionJournal::new(),
        }
    }
}

/// Handle to an executor thread.
#[derive(Debug)]
pub struct LiveExecutor {
    kill: Arc<AtomicBool>,
    journal: DecisionJournal,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl LiveExecutor {
    /// Connects to the driver at `addr` and starts serving on a thread.
    pub fn launch(addr: SocketAddr, cfg: LiveExecutorConfig) -> Self {
        let kill = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&kill);
        let journal = cfg.journal.clone();
        let handle = std::thread::spawn(move || run_executor(addr, cfg, flag));
        Self {
            kill,
            journal,
            handle: Some(handle),
        }
    }

    /// Makes the executor go silent immediately (see the module docs).
    pub fn kill(&self) {
        self.kill.store(true, Ordering::Relaxed);
    }

    /// The executor's decision journal (a shared handle; complete once
    /// the executor has been joined).
    pub fn journal(&self) -> DecisionJournal {
        self.journal.clone()
    }

    /// Waits for the executor thread to exit.
    pub fn join(mut self) -> io::Result<()> {
        match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("executor thread panicked"))),
            None => Ok(()),
        }
    }
}

/// Connects to the driver, retrying briefly while it binds/accepts.
fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The executor's write path: every frame sent also updates the wire
/// metrics and lands on the flight recorder.
struct Link {
    writer: Mutex<FrameWriter>,
    frames_sent: Counter,
    bytes_sent: Counter,
    recorder: FlightRecorder,
    id: usize,
}

impl Link {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        let bytes = self.writer.lock().send(frame)?;
        self.frames_sent.inc();
        self.bytes_sent.add(bytes as u64);
        self.recorder.push(LiveEvent::FrameSent {
            executor: self.id,
            kind: frame.kind_str(),
            bytes,
            at: self.recorder.now(),
        });
        Ok(())
    }
}

/// The executor's cached metric handles (`live.executor.*{executor="N"}`).
struct ExecMetrics {
    frames_received: Counter,
    bytes_received: Counter,
    tasks_finished: Counter,
    tasks_failed: Counter,
    io_mb: FloatCounter,
}

impl ExecMetrics {
    fn new(registry: &MetricRegistry, id: usize) -> Self {
        let name = |n: &str| format!("live.executor.{n}{{executor=\"{id}\"}}");
        Self {
            frames_received: registry.counter(&name("frames_received")),
            bytes_received: registry.counter(&name("bytes_received")),
            tasks_finished: registry.counter(&name("tasks_finished")),
            tasks_failed: registry.counter(&name("tasks_failed")),
            io_mb: registry.float_counter(&name("io_mb")),
        }
    }
}

fn run_executor(
    addr: SocketAddr,
    cfg: LiveExecutorConfig,
    kill: Arc<AtomicBool>,
) -> io::Result<()> {
    let stream = connect_with_retry(addr, cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    // The read timeout bounds how stale the kill flag can get.
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    let recorder = cfg.recorder.clone();
    let metrics = ExecMetrics::new(&cfg.metrics, cfg.id);
    let log = Logger::new(format!("executor-{}", cfg.id), recorder.clone());
    let link = Arc::new(Link {
        writer: Mutex::new(FrameWriter::new(stream.try_clone()?)),
        frames_sent: cfg.metrics.counter(&format!(
            "live.executor.frames_sent{{executor=\"{}\"}}",
            cfg.id
        )),
        bytes_sent: cfg.metrics.counter(&format!(
            "live.executor.bytes_sent{{executor=\"{}\"}}",
            cfg.id
        )),
        recorder: recorder.clone(),
        id: cfg.id,
    });
    let mut reader = FrameReader::new(stream);

    // The shared probe: explicit per-task accounting + procfs per stage.
    let task_io = CounterProbe::new();
    let stage_probe = proc_stage_probe();
    // The recorder epoch is the pool's time base too: decision-journal
    // timestamps and flight-recorder timestamps share one clock.
    let pool = AdaptivePool::new_at(
        cfg.mape,
        combined_probe(task_io.as_probe(), stage_probe.as_probe()),
        recorder.epoch(),
    );
    pool.set_executor(cfg.id);
    pool.set_journal(cfg.journal.clone());
    {
        // §5.4: every pool resize becomes a protocol message.
        let link = Arc::clone(&link);
        let kill = Arc::clone(&kill);
        let id = cfg.id;
        pool.set_resize_hook(move |size| {
            if kill.load(Ordering::Relaxed) {
                return;
            }
            let _ = link.send(&Frame::Core(Message::PoolSizeChanged {
                executor: id,
                size,
            }));
        });
    }
    link.send(&Frame::Register {
        executor: cfg.id,
        slots: pool.current_threads(),
    })?;
    log.info(|| {
        format!(
            "connected and registered with {} slots",
            pool.current_threads()
        )
    });

    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let link = Arc::clone(&link);
        let kill = Arc::clone(&kill);
        let stop = Arc::clone(&heartbeat_stop);
        let id = cfg.id;
        let interval = cfg.heartbeat_interval;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) && !kill.load(Ordering::Relaxed) {
                if link
                    .send(&Frame::Core(Message::Heartbeat { executor: id }))
                    .is_err()
                {
                    break;
                }
                std::thread::sleep(interval);
            }
        })
    };

    let completed = Arc::new(AtomicUsize::new(0));
    let mut current_stage: Option<(LiveStageKind, usize, u64)> = None;
    let result = serve(
        &cfg,
        &mut reader,
        &link,
        &pool,
        &task_io,
        &stage_probe,
        &kill,
        &completed,
        &mut current_stage,
        &metrics,
        &log,
    );
    heartbeat_stop.store(true, Ordering::Relaxed);
    pool.shutdown();
    // Book the final stage's I/O and replay the journal's ζ samples onto
    // the recorder: the merged trace gains its zeta-exec{N} counter track.
    let (_, mb) = (task_io.as_probe())();
    metrics.io_mb.add(mb);
    for rec in pool.journal().records() {
        recorder.push(LiveEvent::Trace(TraceEvent::IntervalClosed {
            executor: rec.executor,
            threads: rec.threads,
            zeta: rec.zeta,
            at: rec.at,
        }));
    }
    log.info(|| {
        format!(
            "exiting after {} tasks, {} journal records",
            completed.load(Ordering::Relaxed),
            pool.journal().len()
        )
    });
    let _ = heartbeat.join();
    result
}

/// The executor's frame loop, split out so cleanup in [`run_executor`]
/// runs on every exit path.
#[allow(clippy::too_many_arguments)]
fn serve(
    cfg: &LiveExecutorConfig,
    reader: &mut FrameReader,
    link: &Arc<Link>,
    pool: &AdaptivePool,
    task_io: &CounterProbe,
    stage_probe: &sae_pool::procfs::StageIoProbe,
    kill: &Arc<AtomicBool>,
    completed: &Arc<AtomicUsize>,
    current_stage: &mut Option<(LiveStageKind, usize, u64)>,
    metrics: &ExecMetrics,
    log: &Logger,
) -> io::Result<()> {
    let io_reading = task_io.as_probe();
    loop {
        if kill.load(Ordering::Relaxed) {
            log.error(|| "killed: going silent with the socket open".into());
            return Ok(());
        }
        let frame = match reader.next_frame()? {
            Next::Idle => continue,
            Next::Eof => return Ok(()),
            Next::Frame(frame) => frame,
        };
        metrics.frames_received.inc();
        metrics.bytes_received.add(reader.last_frame_len() as u64);
        link.recorder.push(LiveEvent::FrameReceived {
            executor: cfg.id,
            kind: frame.kind_str(),
            bytes: reader.last_frame_len(),
            at: link.recorder.now(),
        });
        match frame {
            Frame::Shutdown => return Ok(()),
            Frame::StageStart {
                stage,
                kind,
                records_per_task,
                seed,
                hint,
                ..
            } => {
                // Book the finished stage's explicit I/O before the reset.
                let (_, mb) = io_reading();
                metrics.io_mb.add(mb);
                task_io.reset();
                stage_probe.rebase();
                pool.stage_started(Some(hint));
                log.info(|| format!("stage {stage} announced: pool reset, hint {hint}"));
                *current_stage = Some((kind, records_per_task, seed));
            }
            Frame::Core(Message::AssignTask { task, .. }) => {
                let Some((kind, records_per_task, seed)) = *current_stage else {
                    continue; // assignment before any stage: confused peer
                };
                let link = Arc::clone(link);
                let kill = Arc::clone(kill);
                let completed = Arc::clone(completed);
                let task_io = task_io.clone();
                let dir = cfg.spill_dir.clone();
                let id = cfg.id;
                let kill_after = cfg.kill_after_tasks;
                let tasks_finished = metrics.tasks_finished.clone();
                let tasks_failed = metrics.tasks_failed.clone();
                let log = log.clone();
                pool.submit(move || {
                    if kill.load(Ordering::Relaxed) {
                        return;
                    }
                    let outcome = run_task(kind, task, records_per_task, seed, &dir, &task_io);
                    if kill.load(Ordering::Relaxed) {
                        return; // died mid-task: no report, just silence
                    }
                    let frame = match outcome {
                        Ok(()) => {
                            tasks_finished.inc();
                            Frame::TaskFinished {
                                task,
                                executor: id,
                                attempt: 0,
                            }
                        }
                        Err(_) => {
                            tasks_failed.inc();
                            log.error(|| format!("task {task} failed"));
                            Frame::Core(Message::TaskFailed {
                                task,
                                executor: id,
                                attempt: 0,
                            })
                        }
                    };
                    let _ = link.send(&frame);
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if kill_after.is_some_and(|n| done >= n) {
                        kill.store(true, Ordering::Relaxed);
                    }
                });
            }
            // Driver-only frames echoed at us: ignore.
            _ => {}
        }
    }
}
