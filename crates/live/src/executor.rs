//! The live executor: an [`AdaptivePool`] behind a TCP connection.
//!
//! Each executor connects to the driver, registers, and then services
//! `AssignTask` messages by running real Terasort tasks on its adaptive
//! pool. The §5.4 protocol extension is wired through the pool's resize
//! hook: every effective pool-size change — the reset at a stage boundary
//! and every MAPE-K decision — emits a `PoolSizeChanged` frame, which is
//! what keeps the driver's slot registry consistent.
//!
//! The pool's I/O probe is the live runtime's *shared probe*: an explicit
//! per-task [`CounterProbe`] (tasks record the bytes they moved and the
//! wall time they were blocked) combined with the process-wide procfs
//! stage probe. The explicit half is what makes multi-executor
//! single-process runs attributable; the procfs half catches traffic the
//! tasks did not account for.
//!
//! Observability rides the same shared handles the driver uses: every
//! frame sent or received updates the `live.executor.*{executor="N"}`
//! metrics and lands on the cluster's [`FlightRecorder`], the MAPE-K
//! controller appends to a [`DecisionJournal`] the cluster can read, and
//! at shutdown the journal's ζ samples are replayed onto the recorder so
//! the merged Chrome trace gains a per-executor `zeta-exec{N}` counter
//! track.
//!
//! [`LiveExecutor::kill`] makes the executor *silent*, not disconnected:
//! heartbeats stop, outcome reports are suppressed, assignments are
//! swallowed, but the socket stays open. The driver therefore has to
//! detect the failure from heartbeat silence — the scenario the paper's
//! engine handles with executor-lost bookkeeping — rather than getting a
//! convenient EOF.
//!
//! With a [`RespawnConfig`], a killed or disconnected executor
//! **reincarnates**: after the configured downtime it reconnects (jittered
//! exponential backoff, capped), re-registers under a fresh pool, and the
//! driver admits it under a new registration epoch while fencing whatever
//! its dead predecessor left in flight. Each incarnation appends to the
//! same shared decision journal, so the merged ζ timeline spans rebirths.
//!
//! Faults poison measurements: on a [`Frame::FaultNotice`] about a peer —
//! or a local task failure — the executor declares its current MAPE-K
//! monitoring interval poisoned, so the controller discards measurements
//! taken while redistributed work (or a retry storm) distorted the probe,
//! keeping ζ comparisons clean across fault windows.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sae_core::{DecisionJournal, MapeConfig};
use sae_dag::{Message, TraceEvent};
use sae_metrics::{Counter, FloatCounter, MetricRegistry};
use sae_pool::procfs::proc_stage_probe;
use sae_pool::{combined_probe, AdaptivePool, CounterProbe};

use sae_dag::codec::TraceKey;

use crate::job::LiveStageKind;
use crate::log::Logger;
use crate::recorder::{FlightRecorder, LiveEvent};
use crate::task::{run_task, SINGLE_JOB};
use crate::wire::{Frame, FrameReader, FrameWriter, Next};

/// Per-job stage parameters `(stage, kind, records_per_task, seed)`
/// shared with in-flight task closures.
type JobStages = Arc<Mutex<std::collections::HashMap<u64, (usize, LiveStageKind, usize, u64)>>>;

/// Reincarnation policy: how a dead executor comes back.
#[derive(Debug, Clone)]
pub struct RespawnConfig {
    /// Downtime between death and the first reconnect attempt. Keep it
    /// above the driver's heartbeat timeout when tests need the
    /// lost-then-reincarnated event order to be deterministic.
    pub delay: Duration,
    /// Initial backoff between failed reconnect attempts.
    pub backoff_base: Duration,
    /// Backoff ceiling; the exponential doubling stops here.
    pub backoff_cap: Duration,
    /// How many rebirths are allowed before the executor stays dead.
    pub max_respawns: usize,
    /// Seed for the backoff jitter (deterministic per incarnation).
    pub seed: u64,
}

impl RespawnConfig {
    /// A policy with `delay` of downtime and default backoff bounds.
    pub fn new(delay: Duration) -> Self {
        Self {
            delay,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_millis(500),
            max_respawns: 3,
            seed: 0xC0FF_EE11,
        }
    }
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct LiveExecutorConfig {
    /// Executor id (dense, `0..n`, unique per cluster).
    pub id: usize,
    /// MAPE-K controller bounds for the adaptive pool.
    pub mape: MapeConfig,
    /// Heartbeat period; keep well under the driver's timeout.
    pub heartbeat_interval: Duration,
    /// Directory spill partitions live in (shared across the cluster —
    /// sort tasks read partitions any executor wrote).
    pub spill_dir: PathBuf,
    /// Deterministic fault injection: go silent after completing this
    /// many tasks, with work still assigned. Applies to the first
    /// incarnation only — a reincarnated executor serves untainted.
    pub kill_after_tasks: Option<usize>,
    /// How long to retry connecting to the driver.
    pub connect_timeout: Duration,
    /// Reincarnation policy; `None` (the default) means death is final,
    /// preserving the pre-chaos failure semantics.
    pub respawn: Option<RespawnConfig>,
    /// The cluster's shared flight recorder; its epoch is also the
    /// adaptive pool's time base, keeping journal timestamps and trace
    /// timestamps on one clock.
    pub recorder: FlightRecorder,
    /// The cluster's shared metric registry.
    pub metrics: MetricRegistry,
    /// The journal the executor's MAPE-K controller appends to; keep a
    /// clone to read the decisions after the run. Shared across
    /// incarnations, so one run's journal spans rebirths.
    pub journal: DecisionJournal,
}

impl LiveExecutorConfig {
    /// Sensible defaults for loopback testing.
    pub fn new(id: usize, spill_dir: PathBuf) -> Self {
        Self {
            id,
            mape: MapeConfig::new(2, 8),
            heartbeat_interval: Duration::from_millis(100),
            spill_dir,
            kill_after_tasks: None,
            connect_timeout: Duration::from_secs(10),
            respawn: None,
            recorder: FlightRecorder::disabled(),
            metrics: MetricRegistry::new(),
            journal: DecisionJournal::new(),
        }
    }
}

/// Handle to an executor thread.
#[derive(Debug)]
pub struct LiveExecutor {
    kill: Arc<AtomicBool>,
    journal: DecisionJournal,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl LiveExecutor {
    /// Connects to the driver at `addr` and starts serving on a thread.
    pub fn launch(addr: SocketAddr, cfg: LiveExecutorConfig) -> Self {
        let kill = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&kill);
        let journal = cfg.journal.clone();
        let handle = std::thread::spawn(move || run_executor(addr, cfg, flag));
        Self {
            kill,
            journal,
            handle: Some(handle),
        }
    }

    /// Makes the executor go silent immediately (see the module docs).
    /// With a [`RespawnConfig`], the silence lasts one downtime window
    /// and then the executor reincarnates.
    pub fn kill(&self) {
        self.kill.store(true, Ordering::Relaxed);
    }

    /// The executor's decision journal (a shared handle; complete once
    /// the executor has been joined).
    pub fn journal(&self) -> DecisionJournal {
        self.journal.clone()
    }

    /// The kill switch itself, for the cluster's chaos agent to flip on a
    /// schedule without holding a borrow of the executor.
    pub(crate) fn kill_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.kill)
    }

    /// Waits for the executor thread to exit.
    pub fn join(mut self) -> io::Result<()> {
        match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("executor thread panicked"))),
            None => Ok(()),
        }
    }
}

/// Runs an executor on the calling thread until the job is over: the
/// full incarnation loop — connect, register, serve, and reincarnate
/// after kills or connection losses for as long as the respawn budget
/// allows.
///
/// This is the entry point the `sae-executor` binary uses to run an
/// executor as its own OS process; [`LiveExecutor::launch`] wraps the
/// same loop in a thread for the in-process fast path, so both fleet
/// modes execute identical protocol logic. `kill` carries
/// [`LiveExecutor::kill`] semantics: flip it and the executor goes
/// silent with the socket open (heartbeat-silence failure, not EOF).
pub fn run_foreground(
    addr: SocketAddr,
    cfg: LiveExecutorConfig,
    kill: Arc<AtomicBool>,
) -> io::Result<()> {
    run_executor(addr, cfg, kill)
}

/// Why one incarnation's serve loop ended.
enum Exit {
    /// The driver said the job is over (Shutdown frame, or the driver is
    /// simply gone): nothing left to reincarnate for.
    Clean,
    /// The kill switch fired: the executor went silent mid-job.
    Killed,
    /// The connection died (EOF or socket error) with the job unfinished.
    ConnLost,
}

/// Connects to the driver, retrying briefly while it binds/accepts.
fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// xorshift64*: the workspace's stock tiny deterministic RNG.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Reconnects with jittered exponential backoff, capped. A refused
/// connection means the driver is gone — give up immediately rather than
/// hammering a dead address.
fn connect_with_backoff(
    addr: SocketAddr,
    respawn: &RespawnConfig,
    incarnation: usize,
    timeout: Duration,
) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut rng = respawn.seed ^ (incarnation as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut backoff = respawn.backoff_base;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => return Err(e),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => {
                // Sleep 50–100% of the current backoff: jitter decorrelates
                // a fleet of executors respawning off the same fault.
                let frac = 0.5 + (xorshift(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
                std::thread::sleep(backoff.mul_f64(frac));
                backoff = (backoff * 2).min(respawn.backoff_cap);
            }
        }
    }
}

/// The executor's write path: every frame sent also updates the wire
/// metrics and lands on the flight recorder.
struct Link {
    writer: Mutex<FrameWriter>,
    frames_sent: Counter,
    bytes_sent: Counter,
    recorder: FlightRecorder,
    id: usize,
}

impl Link {
    fn send(&self, frame: &Frame) -> io::Result<()> {
        let bytes = self.writer.lock().send(frame)?;
        self.frames_sent.inc();
        self.bytes_sent.add(bytes as u64);
        self.recorder.push(LiveEvent::FrameSent {
            executor: self.id,
            kind: frame.kind_str(),
            bytes,
            at: self.recorder.now(),
        });
        Ok(())
    }
}

/// The executor's cached metric handles (`live.executor.*{executor="N"}`).
struct ExecMetrics {
    frames_received: Counter,
    bytes_received: Counter,
    tasks_finished: Counter,
    tasks_failed: Counter,
    io_mb: FloatCounter,
}

impl ExecMetrics {
    fn new(registry: &MetricRegistry, id: usize) -> Self {
        let name = |n: &str| format!("live.executor.{n}{{executor=\"{id}\"}}");
        Self {
            frames_received: registry.counter(&name("frames_received")),
            bytes_received: registry.counter(&name("bytes_received")),
            tasks_finished: registry.counter(&name("tasks_finished")),
            tasks_failed: registry.counter(&name("tasks_failed")),
            io_mb: registry.float_counter(&name("io_mb")),
        }
    }
}

/// The incarnation loop: serve until the job is over, reincarnating after
/// kills and connection losses as long as the respawn budget allows.
fn run_executor(
    addr: SocketAddr,
    cfg: LiveExecutorConfig,
    kill: Arc<AtomicBool>,
) -> io::Result<()> {
    let log = Logger::new(format!("executor-{}", cfg.id), cfg.recorder.clone());
    let mut incarnation: usize = 0;
    // Journal records already streamed as live ZetaSample frames; spans
    // incarnations because the journal does too.
    let mut zeta_sent: usize = 0;
    let result = loop {
        let exit = run_incarnation(addr, &cfg, &kill, incarnation, &mut zeta_sent, &log);
        let respawn = match &cfg.respawn {
            Some(r) if incarnation < r.max_respawns => r,
            _ => {
                break match exit {
                    Ok(_) => Ok(()),
                    Err(e) => Err(e),
                };
            }
        };
        match exit {
            Ok(Exit::Clean) => break Ok(()),
            Ok(Exit::Killed) | Ok(Exit::ConnLost) | Err(_) => {
                incarnation += 1;
                log.info(|| {
                    format!(
                        "respawning as incarnation {incarnation} after {:?} downtime",
                        respawn.delay
                    )
                });
                std::thread::sleep(respawn.delay);
                // The rebirth clears the kill switch: a new incarnation
                // starts healthy, like a restarted worker process.
                kill.store(false, Ordering::Relaxed);
            }
        }
    };
    // Replay the journal's ζ samples onto the recorder exactly once, after
    // the last incarnation: the shared journal spans every rebirth, and
    // the merged trace gains its zeta-exec{N} counter track. Samples the
    // receiver already merged from live `ZetaSample` frames are skipped —
    // the recorder's per-executor streamed count is the receiver-side
    // truth, so samples lost in flight (or fenced) still land here.
    let streamed = cfg.recorder.zeta_streamed(cfg.id) as usize;
    for rec in cfg.journal.records().iter().skip(streamed) {
        cfg.recorder
            .push(LiveEvent::Trace(TraceEvent::IntervalClosed {
                executor: rec.executor,
                threads: rec.threads,
                zeta: rec.zeta,
                at: rec.at,
            }));
    }
    result
}

/// One incarnation: connect, register, serve, clean up.
fn run_incarnation(
    addr: SocketAddr,
    cfg: &LiveExecutorConfig,
    kill: &Arc<AtomicBool>,
    incarnation: usize,
    zeta_sent: &mut usize,
    log: &Logger,
) -> io::Result<Exit> {
    let stream = match (incarnation, &cfg.respawn) {
        (0, _) | (_, None) => connect_with_retry(addr, cfg.connect_timeout)?,
        (_, Some(respawn)) => {
            match connect_with_backoff(addr, respawn, incarnation, cfg.connect_timeout) {
                Ok(s) => s,
                Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                    // The driver is gone: the job ended during our downtime.
                    log.info(|| "driver gone; staying dead".into());
                    return Ok(Exit::Clean);
                }
                Err(e) => return Err(e),
            }
        }
    };
    stream.set_nodelay(true)?;
    // The read timeout bounds how stale the kill flag can get.
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    let recorder = cfg.recorder.clone();
    let metrics = ExecMetrics::new(&cfg.metrics, cfg.id);
    let link = Arc::new(Link {
        writer: Mutex::new(FrameWriter::new(stream.try_clone()?)),
        frames_sent: cfg.metrics.counter(&format!(
            "live.executor.frames_sent{{executor=\"{}\"}}",
            cfg.id
        )),
        bytes_sent: cfg.metrics.counter(&format!(
            "live.executor.bytes_sent{{executor=\"{}\"}}",
            cfg.id
        )),
        recorder: recorder.clone(),
        id: cfg.id,
    });
    let mut reader = FrameReader::new(stream);

    // The shared probe: explicit per-task accounting + procfs per stage.
    let task_io = CounterProbe::new();
    let stage_probe = proc_stage_probe();
    // The recorder epoch is the pool's time base too: decision-journal
    // timestamps and flight-recorder timestamps share one clock.
    let pool = AdaptivePool::new_at(
        cfg.mape,
        combined_probe(task_io.as_probe(), stage_probe.as_probe()),
        recorder.epoch(),
    );
    pool.set_executor(cfg.id);
    pool.set_journal(cfg.journal.clone());
    {
        // §5.4: every pool resize becomes a protocol message.
        let link = Arc::clone(&link);
        let kill = Arc::clone(kill);
        let id = cfg.id;
        pool.set_resize_hook(move |size| {
            if kill.load(Ordering::Relaxed) {
                return;
            }
            let _ = link.send(&Frame::Core(Message::PoolSizeChanged {
                executor: id,
                size,
            }));
        });
    }
    link.send(&Frame::Register {
        executor: cfg.id,
        slots: pool.current_threads(),
    })?;
    log.info(|| {
        format!(
            "incarnation {incarnation} connected and registered with {} slots",
            pool.current_threads()
        )
    });

    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let link = Arc::clone(&link);
        let kill = Arc::clone(kill);
        let stop = Arc::clone(&heartbeat_stop);
        let id = cfg.id;
        let interval = cfg.heartbeat_interval;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) && !kill.load(Ordering::Relaxed) {
                if link
                    .send(&Frame::Core(Message::Heartbeat { executor: id }))
                    .is_err()
                {
                    break;
                }
                std::thread::sleep(interval);
            }
        })
    };

    let completed = Arc::new(AtomicUsize::new(0));
    let mut current_stage: Option<(usize, LiveStageKind, usize, u64)> = None;
    let result = serve(
        cfg,
        incarnation,
        &mut reader,
        &link,
        &pool,
        &task_io,
        &stage_probe,
        kill,
        &completed,
        &mut current_stage,
        zeta_sent,
        &metrics,
        log,
    );
    heartbeat_stop.store(true, Ordering::Relaxed);
    pool.shutdown();
    // Book the final stage's I/O before the incarnation's probe drops.
    let (_, mb) = (task_io.as_probe())();
    metrics.io_mb.add(mb);
    log.info(|| {
        format!(
            "incarnation {incarnation} exiting after {} tasks, {} journal records",
            completed.load(Ordering::Relaxed),
            cfg.journal.len()
        )
    });
    let _ = heartbeat.join();
    result
}

/// The executor's frame loop, split out so cleanup in [`run_incarnation`]
/// runs on every exit path.
#[allow(clippy::too_many_arguments)]
fn serve(
    cfg: &LiveExecutorConfig,
    incarnation: usize,
    reader: &mut FrameReader,
    link: &Arc<Link>,
    pool: &AdaptivePool,
    task_io: &CounterProbe,
    stage_probe: &sae_pool::procfs::StageIoProbe,
    kill: &Arc<AtomicBool>,
    completed: &Arc<AtomicUsize>,
    current_stage: &mut Option<(usize, LiveStageKind, usize, u64)>,
    zeta_sent: &mut usize,
    metrics: &ExecMetrics,
    log: &Logger,
) -> io::Result<Exit> {
    let io_reading = task_io.as_probe();
    // The deterministic kill switch taints only the first incarnation.
    let kill_after_tasks = if incarnation == 0 {
        cfg.kill_after_tasks
    } else {
        None
    };
    // Stage parameters per live job, for multi-job serving. Shared with
    // task closures so a cancelled job's queued attempts notice the
    // cancellation at run time and drop silently instead of running a
    // retired job's stage.
    let jobs: JobStages = Arc::new(Mutex::new(std::collections::HashMap::new()));
    loop {
        if kill.load(Ordering::Relaxed) {
            log.error(|| "killed: going silent with the socket open".into());
            return Ok(Exit::Killed);
        }
        // Stream ζ intervals the MAPE-K controller closed since the last
        // pass, so the receiver's timeline gains its zeta-exec{N} track
        // during the run instead of at the shutdown-time journal replay.
        if cfg.journal.len() > *zeta_sent {
            for rec in cfg.journal.records().iter().skip(*zeta_sent) {
                if link
                    .send(&Frame::ZetaSample {
                        executor: rec.executor,
                        threads: rec.threads,
                        zeta_bits: rec.zeta.to_bits(),
                        at_bits: rec.at.to_bits(),
                    })
                    .is_err()
                {
                    break;
                }
                *zeta_sent += 1;
            }
        }
        let frame = match reader.next_frame()? {
            Next::Idle => continue,
            Next::Eof => return Ok(Exit::ConnLost),
            Next::Frame(frame) => frame,
        };
        metrics.frames_received.inc();
        metrics.bytes_received.add(reader.last_frame_len() as u64);
        link.recorder.push(LiveEvent::FrameReceived {
            executor: cfg.id,
            kind: frame.kind_str(),
            bytes: reader.last_frame_len(),
            at: link.recorder.now(),
        });
        match frame {
            Frame::Shutdown => return Ok(Exit::Clean),
            // A peer died and its work is being redistributed onto us:
            // measurements spanning this window would mislead the MAPE-K
            // climb, so poison the current interval. (A notice about our
            // own prior incarnation is not a peer loss — ignore it.)
            Frame::FaultNotice { executor } if executor != cfg.id => {
                pool.interval_poisoned(&format!("executor {executor} declared lost"));
                log.info(|| {
                    format!("peer executor {executor} lost: poisoned the current interval")
                });
            }
            Frame::FaultNotice { .. } => {}
            Frame::StageStart {
                stage,
                kind,
                records_per_task,
                seed,
                hint,
                ..
            } => {
                // Book the finished stage's explicit I/O before the reset.
                let (_, mb) = io_reading();
                metrics.io_mb.add(mb);
                task_io.reset();
                stage_probe.rebase();
                pool.stage_started(Some(hint));
                log.info(|| format!("stage {stage} announced: pool reset, hint {hint}"));
                *current_stage = Some((stage, kind, records_per_task, seed));
            }
            Frame::Core(Message::AssignTask { task, .. }) => {
                let Some((stage, kind, records_per_task, seed)) = *current_stage else {
                    continue; // assignment before any stage: confused peer
                };
                let link = Arc::clone(link);
                let kill = Arc::clone(kill);
                let completed = Arc::clone(completed);
                let task_io = task_io.clone();
                let pool = pool.clone();
                let dir = cfg.spill_dir.clone();
                let id = cfg.id;
                let tasks_finished = metrics.tasks_finished.clone();
                let tasks_failed = metrics.tasks_failed.clone();
                let log = log.clone();
                pool.clone().submit(move || {
                    if kill.load(Ordering::Relaxed) {
                        return;
                    }
                    let started = link.recorder.now();
                    let outcome = run_task(
                        kind,
                        SINGLE_JOB,
                        task,
                        records_per_task,
                        seed,
                        &dir,
                        &task_io,
                    );
                    if kill.load(Ordering::Relaxed) {
                        return; // died mid-task: no report, just silence
                    }
                    let ok = outcome.is_ok();
                    // Span first, outcome second: the receiver merges the
                    // span into the live timeline before it acts on the
                    // outcome, keeping the trace causally ordered.
                    let _ = link.send(&Frame::TaskSpan {
                        key: TraceKey {
                            job: SINGLE_JOB,
                            stage,
                            task,
                            attempt: 0,
                            epoch: incarnation as u64,
                        },
                        executor: id,
                        start_bits: started.to_bits(),
                        end_bits: link.recorder.now().to_bits(),
                        ok,
                    });
                    let frame = match outcome {
                        Ok(()) => {
                            tasks_finished.inc();
                            Frame::TaskFinished {
                                task,
                                executor: id,
                                attempt: 0,
                            }
                        }
                        Err(_) => {
                            tasks_failed.inc();
                            log.error(|| format!("task {task} failed"));
                            // Our own failure distorts the probe the same
                            // way a peer's does: poison the interval.
                            pool.interval_poisoned(&format!("local task {task} failed"));
                            Frame::Core(Message::TaskFailed {
                                task,
                                executor: id,
                                attempt: 0,
                            })
                        }
                    };
                    let _ = link.send(&frame);
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if kill_after_tasks.is_some_and(|n| done >= n) {
                        kill.store(true, Ordering::Relaxed);
                    }
                });
            }
            // Multi-job serving (the job-server path). Unlike StageStart
            // this does not reset the pool or probes: many jobs interleave
            // on one fleet, and a reset per job stage would thrash the
            // MAPE-K controller's measurement intervals.
            Frame::JobStageStart {
                job,
                stage,
                kind,
                records_per_task,
                seed,
                ..
            } => {
                jobs.lock()
                    .insert(job, (stage, kind, records_per_task, seed));
                log.info(|| format!("job {job} stage {stage} announced"));
            }
            Frame::JobEnd { job } => {
                jobs.lock().remove(&job);
                log.info(|| format!("job {job} retired"));
            }
            Frame::AssignJobTask { job, task } => {
                let Some((stage, kind, records_per_task, seed)) = jobs.lock().get(&job).copied()
                else {
                    // Assignment for a job we never saw start (announcement
                    // lost or job already retired). The server booked a slot
                    // for this assignment; report a failed outcome so it is
                    // freed and the task requeued instead of sitting assigned
                    // until we are declared lost.
                    let _ = link.send(&Frame::JobTaskOutcome {
                        job,
                        task,
                        executor: cfg.id,
                        attempt: 0,
                        ok: false,
                    });
                    continue;
                };
                let link = Arc::clone(link);
                let kill = Arc::clone(kill);
                let completed = Arc::clone(completed);
                let task_io = task_io.clone();
                let pool = pool.clone();
                let jobs = Arc::clone(&jobs);
                let dir = cfg.spill_dir.clone();
                let id = cfg.id;
                let tasks_finished = metrics.tasks_finished.clone();
                let tasks_failed = metrics.tasks_failed.clone();
                let log = log.clone();
                pool.clone().submit(move || {
                    if kill.load(Ordering::Relaxed) {
                        return;
                    }
                    // Cancellation fast path: the job was retired while
                    // this attempt sat in the pool queue. Still report an
                    // outcome — the server frees the slot it booked for
                    // this assignment only when one arrives.
                    if !jobs.lock().contains_key(&job) {
                        let _ = link.send(&Frame::JobTaskOutcome {
                            job,
                            task,
                            executor: id,
                            attempt: 0,
                            ok: false,
                        });
                        return;
                    }
                    let started = link.recorder.now();
                    let outcome = run_task(kind, job, task, records_per_task, seed, &dir, &task_io);
                    if kill.load(Ordering::Relaxed) {
                        return; // died mid-task: no report, just silence
                    }
                    let ok = match outcome {
                        Ok(()) => {
                            tasks_finished.inc();
                            true
                        }
                        Err(_) => {
                            tasks_failed.inc();
                            log.error(|| format!("job {job} task {task} failed"));
                            pool.interval_poisoned(&format!("job {job} task {task} failed"));
                            false
                        }
                    };
                    let _ = link.send(&Frame::TaskSpan {
                        key: TraceKey {
                            job,
                            stage,
                            task,
                            attempt: 0,
                            epoch: incarnation as u64,
                        },
                        executor: id,
                        start_bits: started.to_bits(),
                        end_bits: link.recorder.now().to_bits(),
                        ok,
                    });
                    let _ = link.send(&Frame::JobTaskOutcome {
                        job,
                        task,
                        executor: id,
                        attempt: 0,
                        ok,
                    });
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if kill_after_tasks.is_some_and(|n| done >= n) {
                        kill.store(true, Ordering::Relaxed);
                    }
                });
            }
            // Driver-only frames echoed at us: ignore.
            _ => {}
        }
    }
}
