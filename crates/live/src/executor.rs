//! The live executor: an [`AdaptivePool`] behind a TCP connection.
//!
//! Each executor connects to the driver, registers, and then services
//! `AssignTask` messages by running real Terasort tasks on its adaptive
//! pool. The §5.4 protocol extension is wired through the pool's resize
//! hook: every effective pool-size change — the reset at a stage boundary
//! and every MAPE-K decision — emits a `PoolSizeChanged` frame, which is
//! what keeps the driver's slot registry consistent.
//!
//! The pool's I/O probe is the live runtime's *shared probe*: an explicit
//! per-task [`CounterProbe`] (tasks record the bytes they moved and the
//! wall time they were blocked) combined with the process-wide procfs
//! stage probe. The explicit half is what makes multi-executor
//! single-process runs attributable; the procfs half catches traffic the
//! tasks did not account for.
//!
//! [`LiveExecutor::kill`] makes the executor *silent*, not disconnected:
//! heartbeats stop, outcome reports are suppressed, assignments are
//! swallowed, but the socket stays open. The driver therefore has to
//! detect the failure from heartbeat silence — the scenario the paper's
//! engine handles with executor-lost bookkeeping — rather than getting a
//! convenient EOF.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sae_core::MapeConfig;
use sae_dag::Message;
use sae_pool::procfs::proc_stage_probe;
use sae_pool::{combined_probe, AdaptivePool, CounterProbe};

use crate::job::LiveStageKind;
use crate::task::run_task;
use crate::wire::{Frame, FrameReader, FrameWriter, Next};

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct LiveExecutorConfig {
    /// Executor id (dense, `0..n`, unique per cluster).
    pub id: usize,
    /// MAPE-K controller bounds for the adaptive pool.
    pub mape: MapeConfig,
    /// Heartbeat period; keep well under the driver's timeout.
    pub heartbeat_interval: Duration,
    /// Directory spill partitions live in (shared across the cluster —
    /// sort tasks read partitions any executor wrote).
    pub spill_dir: PathBuf,
    /// Deterministic fault injection: go silent after completing this
    /// many tasks, with work still assigned.
    pub kill_after_tasks: Option<usize>,
    /// How long to retry connecting to the driver.
    pub connect_timeout: Duration,
}

impl LiveExecutorConfig {
    /// Sensible defaults for loopback testing.
    pub fn new(id: usize, spill_dir: PathBuf) -> Self {
        Self {
            id,
            mape: MapeConfig::new(2, 8),
            heartbeat_interval: Duration::from_millis(100),
            spill_dir,
            kill_after_tasks: None,
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Handle to an executor thread.
#[derive(Debug)]
pub struct LiveExecutor {
    kill: Arc<AtomicBool>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl LiveExecutor {
    /// Connects to the driver at `addr` and starts serving on a thread.
    pub fn launch(addr: SocketAddr, cfg: LiveExecutorConfig) -> Self {
        let kill = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&kill);
        let handle = std::thread::spawn(move || run_executor(addr, cfg, flag));
        Self {
            kill,
            handle: Some(handle),
        }
    }

    /// Makes the executor go silent immediately (see the module docs).
    pub fn kill(&self) {
        self.kill.store(true, Ordering::Relaxed);
    }

    /// Waits for the executor thread to exit.
    pub fn join(mut self) -> io::Result<()> {
        match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("executor thread panicked"))),
            None => Ok(()),
        }
    }
}

/// Connects to the driver, retrying briefly while it binds/accepts.
fn connect_with_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn run_executor(
    addr: SocketAddr,
    cfg: LiveExecutorConfig,
    kill: Arc<AtomicBool>,
) -> io::Result<()> {
    let stream = connect_with_retry(addr, cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    // The read timeout bounds how stale the kill flag can get.
    stream.set_read_timeout(Some(Duration::from_millis(25)))?;
    let writer = Arc::new(Mutex::new(FrameWriter::new(stream.try_clone()?)));
    let mut reader = FrameReader::new(stream);

    // The shared probe: explicit per-task accounting + procfs per stage.
    let task_io = CounterProbe::new();
    let stage_probe = proc_stage_probe();
    let pool = AdaptivePool::new(
        cfg.mape,
        combined_probe(task_io.as_probe(), stage_probe.as_probe()),
    );
    {
        // §5.4: every pool resize becomes a protocol message.
        let writer = Arc::clone(&writer);
        let kill = Arc::clone(&kill);
        let id = cfg.id;
        pool.set_resize_hook(move |size| {
            if kill.load(Ordering::Relaxed) {
                return;
            }
            let _ = writer.lock().send(&Frame::Core(Message::PoolSizeChanged {
                executor: id,
                size,
            }));
        });
    }
    writer.lock().send(&Frame::Register {
        executor: cfg.id,
        slots: pool.current_threads(),
    })?;

    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let writer = Arc::clone(&writer);
        let kill = Arc::clone(&kill);
        let stop = Arc::clone(&heartbeat_stop);
        let id = cfg.id;
        let interval = cfg.heartbeat_interval;
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) && !kill.load(Ordering::Relaxed) {
                if writer
                    .lock()
                    .send(&Frame::Core(Message::Heartbeat { executor: id }))
                    .is_err()
                {
                    break;
                }
                std::thread::sleep(interval);
            }
        })
    };

    let completed = Arc::new(AtomicUsize::new(0));
    let mut current_stage: Option<(LiveStageKind, usize, u64)> = None;
    let result = serve(
        &cfg,
        &mut reader,
        &writer,
        &pool,
        &task_io,
        &stage_probe,
        &kill,
        &completed,
        &mut current_stage,
    );
    heartbeat_stop.store(true, Ordering::Relaxed);
    pool.shutdown();
    let _ = heartbeat.join();
    result
}

/// The executor's frame loop, split out so cleanup in [`run_executor`]
/// runs on every exit path.
#[allow(clippy::too_many_arguments)]
fn serve(
    cfg: &LiveExecutorConfig,
    reader: &mut FrameReader,
    writer: &Arc<Mutex<FrameWriter>>,
    pool: &AdaptivePool,
    task_io: &CounterProbe,
    stage_probe: &sae_pool::procfs::StageIoProbe,
    kill: &Arc<AtomicBool>,
    completed: &Arc<AtomicUsize>,
    current_stage: &mut Option<(LiveStageKind, usize, u64)>,
) -> io::Result<()> {
    loop {
        if kill.load(Ordering::Relaxed) {
            return Ok(());
        }
        let frame = match reader.next_frame()? {
            Next::Idle => continue,
            Next::Eof => return Ok(()),
            Next::Frame(frame) => frame,
        };
        match frame {
            Frame::Shutdown => return Ok(()),
            Frame::StageStart {
                kind,
                records_per_task,
                seed,
                hint,
                ..
            } => {
                task_io.reset();
                stage_probe.rebase();
                pool.stage_started(Some(hint));
                *current_stage = Some((kind, records_per_task, seed));
            }
            Frame::Core(Message::AssignTask { task, .. }) => {
                let Some((kind, records_per_task, seed)) = *current_stage else {
                    continue; // assignment before any stage: confused peer
                };
                let writer = Arc::clone(writer);
                let kill = Arc::clone(kill);
                let completed = Arc::clone(completed);
                let task_io = task_io.clone();
                let dir = cfg.spill_dir.clone();
                let id = cfg.id;
                let kill_after = cfg.kill_after_tasks;
                pool.submit(move || {
                    if kill.load(Ordering::Relaxed) {
                        return;
                    }
                    let outcome = run_task(kind, task, records_per_task, seed, &dir, &task_io);
                    if kill.load(Ordering::Relaxed) {
                        return; // died mid-task: no report, just silence
                    }
                    let frame = match outcome {
                        Ok(()) => Frame::TaskFinished {
                            task,
                            executor: id,
                            attempt: 0,
                        },
                        Err(_) => Frame::Core(Message::TaskFailed {
                            task,
                            executor: id,
                            attempt: 0,
                        }),
                    };
                    let _ = writer.lock().send(&frame);
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if kill_after.is_some_and(|n| done >= n) {
                        kill.store(true, Ordering::Relaxed);
                    }
                });
            }
            // Driver-only frames echoed at us: ignore.
            _ => {}
        }
    }
}
