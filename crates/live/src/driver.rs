//! The live driver: a TCP server running the paper's driver-side protocol.
//!
//! Responsibilities mirror the simulated engine's driver exactly, but over
//! real sockets and wall-clock time:
//!
//! * accept executor connections and their [`Frame::Register`] handshakes;
//! * schedule pending tasks through the *same* locality-aware
//!   [`PendingQueue`] the simulator uses, respecting per-executor free
//!   slots;
//! * apply `PoolSizeChanged` messages to the slot registry (§5.4) so
//!   scheduling always reflects each executor's current pool size;
//! * track heartbeats, declare executors lost after
//!   [`DriverConfig::heartbeat_timeout`] of silence, requeue their running
//!   tasks with the failure recorded against the lost executor, and give
//!   up with [`LiveError::MaxAttemptsExceeded`] when a task keeps dying;
//! * blacklist executors that fail too many tasks in one stage (while at
//!   least one other usable executor remains), un-blacklisting them after
//!   a probation interval;
//! * admit executor **reincarnations**: a dead or partitioned executor
//!   that re-registers (or shows evidence of life on its old connection)
//!   rejoins the fleet under a new registration epoch, with frames from
//!   its superseded incarnations fenced off by the [`EpochRegistry`];
//! * degrade gracefully: when the usable-executor count falls below
//!   [`DriverConfig::min_live_executors`], the job parks in a `Degraded`
//!   state for up to [`DriverConfig::degraded_wait`] — giving respawning
//!   executors a window to rejoin — instead of failing fast.
//!
//! All of that protocol logic lives in one transport-agnostic state
//! machine ([`Run`]), fed connection events and writing frames through an
//! [`Outbound`] sink. Two transports drive it:
//!
//! * **reactor** (default): a single non-blocking event loop owns every
//!   socket — acceptor included — through an epoll-style poller
//!   (`sae-poll`), with per-connection reassembly buffers, batched frame
//!   decode per wakeup, coalesced queued writes with backpressure, and a
//!   timer wheel for heartbeat/deadline checks. One thread, hundreds of
//!   connections.
//! * **blocking** (reference): the original thread-per-connection layout —
//!   a polling acceptor thread, one reader thread per socket feeding a
//!   channel, synchronous writes. Pinned as the behavioural baseline the
//!   reactor is benchmarked and equivalence-tested against; select it
//!   with [`DriverTransport::Blocking`] or `SAE_REFERENCE_DRIVER=1`.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use sae_dag::sched::PendingQueue;
use sae_dag::{Message, TraceEvent};
use sae_metrics::{Counter, Gauge, Histogram, MetricRegistry, RegistrySnapshot};

use crate::epochs::{Admission, EpochRegistry};
use crate::job::LiveJob;
use crate::log::Logger;
use crate::recorder::{FlightRecorder, LiveEvent};
use crate::wire::Frame;

mod blocking;
mod reactor;

/// Which wire transport serves the driver side of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriverTransport {
    /// Single-threaded non-blocking reactor: one event loop owns all
    /// sockets, with queued coalesced writes and a timer wheel.
    #[default]
    Reactor,
    /// The pinned reference implementation: one reader thread per
    /// connection, a polling acceptor, synchronous writes.
    Blocking,
}

/// Driver tuning knobs.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Executors expected to register.
    pub executors: usize,
    /// Silence longer than this declares an executor lost.
    pub heartbeat_timeout: Duration,
    /// Event-loop wakeup period for heartbeat and deadline checks.
    pub check_interval: Duration,
    /// A task failing this many attempts aborts the job.
    pub max_task_attempts: usize,
    /// An executor failing this many tasks in one stage is blacklisted
    /// (unless it is the last usable executor).
    pub blacklist_after: usize,
    /// How long a blacklisted executor sits out before its failure count
    /// resets and it may serve again.
    pub probation: Duration,
    /// Wall-clock bound on the whole job.
    pub deadline: Duration,
    /// Wall-clock bound on a single task attempt; an overrunning attempt
    /// counts as failed and the task is requeued. `None` disables the
    /// per-task deadline.
    pub task_deadline: Option<Duration>,
    /// The graceful-degradation floor: with fewer usable executors than
    /// this (and work pending) the job parks in a `Degraded` state rather
    /// than failing fast.
    pub min_live_executors: usize,
    /// How long the job may stay `Degraded` before giving up with
    /// [`LiveError::NoUsableExecutors`].
    pub degraded_wait: Duration,
    /// Which wire transport to run. `SAE_REFERENCE_DRIVER=1` in the
    /// environment overrides this to [`DriverTransport::Blocking`].
    pub transport: DriverTransport,
    /// On exit, how long the reactor may keep flushing queued frames
    /// (the `Shutdown` broadcast above all) before closing connections.
    pub shutdown_drain: Duration,
    /// The cluster's shared flight recorder; event timestamps use its
    /// epoch, so driver and executor events land on one timeline.
    pub recorder: FlightRecorder,
    /// The cluster's shared metric registry (task counts, retries, wire
    /// traffic, heartbeat gaps, queue depth).
    pub metrics: MetricRegistry,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            executors: 2,
            heartbeat_timeout: Duration::from_millis(800),
            check_interval: Duration::from_millis(50),
            max_task_attempts: 4,
            blacklist_after: 3,
            probation: Duration::from_secs(2),
            deadline: Duration::from_secs(120),
            task_deadline: None,
            min_live_executors: 1,
            degraded_wait: Duration::from_secs(5),
            transport: DriverTransport::Reactor,
            shutdown_drain: Duration::from_millis(500),
            recorder: FlightRecorder::disabled(),
            metrics: MetricRegistry::new(),
        }
    }
}

/// One `PoolSizeChanged` round-trip as witnessed by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolDecision {
    /// Seconds since the job started.
    pub at: f64,
    /// Executor whose pool resized.
    pub executor: usize,
    /// The new pool size, now also the executor's slot count.
    pub size: usize,
}

/// Snapshot of one executor's slot-registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotInfo {
    /// Whether the executor ever registered.
    pub registered: bool,
    /// Whether the driver currently believes it alive.
    pub alive: bool,
    /// Whether it was blacklisted for repeated failures.
    pub blacklisted: bool,
    /// Total slots (the executor's last announced pool size).
    pub slots: usize,
    /// Slots not currently running a task.
    pub free: usize,
}

/// Per-stage outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveStageReport {
    /// Stage name from the job spec.
    pub name: String,
    /// Tasks in the stage.
    pub tasks: usize,
    /// Task attempts launched (>= tasks when retries happened).
    pub attempts: usize,
    /// Attempts that failed or were lost with their executor.
    pub failed_attempts: usize,
    /// Wall-clock stage duration in seconds.
    pub duration_secs: f64,
}

/// The driver's account of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveReport {
    /// Job name.
    pub job: String,
    /// Wall-clock job runtime in seconds.
    pub runtime_secs: f64,
    /// Per-stage outcomes, in order.
    pub stages: Vec<LiveStageReport>,
    /// Every `PoolSizeChanged` round-trip, in arrival order — the live
    /// decision trace compared against the simulator by `live_vs_sim`.
    pub decisions: Vec<PoolDecision>,
    /// Final slot registry, indexed by executor id.
    pub registry: Vec<SlotInfo>,
    /// Executors declared lost, in detection order.
    pub lost_executors: Vec<usize>,
    /// Final snapshot of the cluster's shared metric registry.
    pub metrics: RegistrySnapshot,
}

/// Why a live job did not complete.
#[derive(Debug)]
pub enum LiveError {
    /// A socket or listener operation failed.
    Io(io::Error),
    /// The job exceeded [`DriverConfig::deadline`].
    DeadlineExceeded,
    /// A task failed [`DriverConfig::max_task_attempts`] times.
    MaxAttemptsExceeded {
        /// The task that kept dying.
        task: usize,
    },
    /// Every registered executor is lost or blacklisted with work pending.
    NoUsableExecutors,
    /// [`crate::LiveCluster::run`] was called twice.
    AlreadyRan,
    /// The driver's event loop panicked (caught by the cluster harness so
    /// the post-mortem artifacts still get written).
    DriverPanicked {
        /// The panic payload, rendered.
        message: String,
    },
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "live runtime I/O error: {e}"),
            LiveError::DeadlineExceeded => write!(f, "live job exceeded its deadline"),
            LiveError::MaxAttemptsExceeded { task } => {
                write!(f, "task {task} exceeded its attempt budget")
            }
            LiveError::NoUsableExecutors => {
                write!(f, "no usable executors remain with tasks pending")
            }
            LiveError::AlreadyRan => write!(f, "this cluster's driver already ran a job"),
            LiveError::DriverPanicked { message } => {
                write!(f, "the driver's event loop panicked: {message}")
            }
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LiveError {
    fn from(e: io::Error) -> Self {
        LiveError::Io(e)
    }
}

/// Connection events a transport feeds the protocol state machine.
///
/// Every event carries the transport-minted connection id, so the state
/// machine can fence traffic from superseded incarnations through the
/// [`EpochRegistry`]. `Registered` also hands over the transport's write
/// handle (`W`): a [`crate::wire::FrameWriter`] for the blocking
/// transport, nothing for the reactor, whose write queues live in its
/// [`Outbound`] sink.
enum Ev<W> {
    /// An executor completed its Register handshake.
    Registered {
        executor: usize,
        slots: usize,
        conn: u64,
        writer: W,
    },
    /// A frame arrived on an executor's connection.
    Frame {
        executor: usize,
        conn: u64,
        frame: Frame,
        /// Wire size of the frame, length prefix included.
        bytes: usize,
    },
    /// An executor's connection closed or broke.
    Gone { executor: usize, conn: u64 },
}

/// Where the state machine writes frames. The blocking transport sends
/// synchronously; the reactor queues bytes for its event loop to flush.
trait Outbound {
    /// The per-connection write handle `Ev::Registered` delivers.
    type Writer;

    /// A new connection for `executor` completed its handshake.
    fn attach(&mut self, executor: usize, conn: u64, writer: Self::Writer);

    /// Connection `conn` died; forget it if it is still `executor`'s
    /// current connection.
    fn detach_if_current(&mut self, executor: usize, conn: u64);

    /// Sends (or queues) `frame`, returning its wire size, or `None` if
    /// the executor has no usable connection.
    fn send(&mut self, executor: usize, frame: &Frame) -> Option<usize>;

    /// Executors with an attached connection, ascending.
    fn attached(&self) -> Vec<usize>;

    /// Backpressure probe: `false` masks the executor from task
    /// assignment until its write queue drains below the high-water mark.
    fn accepts_work(&self, _executor: usize) -> bool {
        true
    }
}

/// Driver-side view of one executor.
struct ExecState {
    registered: bool,
    alive: bool,
    blacklisted: bool,
    blacklisted_at: Option<Instant>,
    slots: usize,
    running: usize,
    failures_in_stage: usize,
    last_heartbeat: Instant,
}

impl ExecState {
    fn usable(&self) -> bool {
        self.registered && self.alive && !self.blacklisted
    }
}

/// Mutable state of the stage currently running.
struct StageState {
    done: Vec<bool>,
    assigned_to: Vec<Option<usize>>,
    assigned_at: Vec<Option<Instant>>,
    failures: Vec<usize>,
    failed_on: Vec<Vec<usize>>,
    remaining: usize,
    attempts: usize,
    failed_attempts: usize,
    started: Instant,
}

impl StageState {
    fn new(tasks: usize) -> Self {
        Self {
            done: vec![false; tasks],
            assigned_to: vec![None; tasks],
            assigned_at: vec![None; tasks],
            failures: vec![0; tasks],
            failed_on: vec![Vec::new(); tasks],
            remaining: tasks,
            attempts: 0,
            failed_attempts: 0,
            started: Instant::now(),
        }
    }
}

/// A live driver bound to a loopback port, ready to run one job.
#[derive(Debug)]
pub struct Driver {
    listener: TcpListener,
    cfg: DriverConfig,
}

impl Driver {
    /// Binds an ephemeral loopback port.
    pub fn bind(cfg: DriverConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        Ok(Self { listener, cfg })
    }

    /// The address executors should connect to.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs `job` to completion (or failure), consuming the driver.
    pub fn run(self, job: &LiveJob) -> Result<LiveReport, LiveError> {
        self.run_with_observer(job, |_, _| {})
    }

    /// Like [`Driver::run`], calling `observer` with each [`PoolDecision`]
    /// and the slot registry as updated by it — the hook the
    /// `live_cluster` example uses to print registry evolution.
    pub fn run_with_observer(
        self,
        job: &LiveJob,
        observer: impl FnMut(&PoolDecision, &[SlotInfo]),
    ) -> Result<LiveReport, LiveError> {
        let transport = if std::env::var_os("SAE_REFERENCE_DRIVER").is_some_and(|v| v != "0") {
            DriverTransport::Blocking
        } else {
            self.cfg.transport
        };
        match transport {
            DriverTransport::Reactor => reactor::run(self.listener, &self.cfg, job, observer),
            DriverTransport::Blocking => blocking::run(self.listener, &self.cfg, job, observer),
        }
    }
}

/// The driver's cached metric handles; names follow the
/// `live.driver.*{executor="N"}` label convention the Prometheus renderer
/// parses back into label sets.
struct DriverMetrics {
    frames_sent: Counter,
    bytes_sent: Counter,
    frames_received: Counter,
    bytes_received: Counter,
    retries: Counter,
    executors_lost: Counter,
    reincarnations: Counter,
    frames_fenced: Counter,
    /// Event-loop wakeups (readiness batches in the reactor, channel
    /// receives in the blocking transport) — wakeups-per-frame is the
    /// reactor bench's batching figure of merit.
    wakeups: Counter,
    degraded: Gauge,
    heartbeat_gap_s: Histogram,
    queue_depth: Gauge,
    tasks_started: Vec<Counter>,
    tasks_finished: Vec<Counter>,
    tasks_failed: Vec<Counter>,
    pool_size: Vec<Gauge>,
}

impl DriverMetrics {
    fn new(registry: &MetricRegistry, executors: usize) -> Self {
        let per_counter = |name: &str| -> Vec<Counter> {
            (0..executors)
                .map(|e| registry.counter(&format!("live.driver.{name}{{executor=\"{e}\"}}")))
                .collect()
        };
        Self {
            frames_sent: registry.counter("live.driver.frames_sent"),
            bytes_sent: registry.counter("live.driver.bytes_sent"),
            frames_received: registry.counter("live.driver.frames_received"),
            bytes_received: registry.counter("live.driver.bytes_received"),
            retries: registry.counter("live.driver.retries"),
            executors_lost: registry.counter("live.driver.executors_lost"),
            reincarnations: registry.counter("live.driver.reincarnations"),
            frames_fenced: registry.counter("live.driver.frames_fenced"),
            wakeups: registry.counter("live.driver.wakeups"),
            degraded: registry.gauge("live.driver.degraded"),
            heartbeat_gap_s: registry.histogram("live.driver.heartbeat_gap_s"),
            queue_depth: registry.gauge("live.driver.queue_depth"),
            tasks_started: per_counter("tasks_started"),
            tasks_finished: per_counter("tasks_finished"),
            tasks_failed: per_counter("tasks_failed"),
            pool_size: (0..executors)
                .map(|e| registry.gauge(&format!("live.driver.pool_size{{executor=\"{e}\"}}")))
                .collect(),
        }
    }
}

/// All mutable state of one job run: the transport-agnostic protocol
/// state machine. Transports feed it [`Ev`]s and timer callbacks; it
/// writes frames through its [`Outbound`] sink.
struct Run<'j, Obs, O: Outbound> {
    cfg: DriverConfig,
    job: &'j LiveJob,
    out: O,
    epochs: EpochRegistry,
    execs: Vec<ExecState>,
    queue: PendingQueue,
    st: StageState,
    stage_idx: usize,
    decisions: Vec<PoolDecision>,
    lost: Vec<usize>,
    degraded_since: Option<Instant>,
    stage_reports: Vec<LiveStageReport>,
    started: Instant,
    finished: bool,
    observer: Obs,
    recorder: FlightRecorder,
    metrics: DriverMetrics,
    log: Logger,
}

impl<'j, Obs: FnMut(&PoolDecision, &[SlotInfo]), O: Outbound> Run<'j, Obs, O> {
    fn new(cfg: &DriverConfig, job: &'j LiveJob, observer: Obs, out: O) -> Self {
        let now = Instant::now();
        let execs = (0..cfg.executors)
            .map(|_| ExecState {
                registered: false,
                alive: false,
                blacklisted: false,
                blacklisted_at: None,
                slots: 0,
                running: 0,
                failures_in_stage: 0,
                last_heartbeat: now,
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            job,
            out,
            epochs: EpochRegistry::new(cfg.executors),
            execs,
            queue: PendingQueue::new(),
            st: StageState::new(0),
            stage_idx: 0,
            decisions: Vec::new(),
            lost: Vec::new(),
            degraded_since: None,
            stage_reports: Vec::new(),
            started: now,
            finished: false,
            observer,
            recorder: cfg.recorder.clone(),
            metrics: DriverMetrics::new(&cfg.metrics, cfg.executors),
            log: Logger::new("driver", cfg.recorder.clone()),
        }
    }

    /// Seeds the first stage. Returns `false` when the job is empty and
    /// there is nothing to run.
    fn start(&mut self) -> bool {
        if self.job.stages.is_empty() {
            return false;
        }
        self.begin_stage();
        true
    }

    /// Records the driver's view of one executor's slot-registry entry.
    fn record_slots(&self, executor: usize) {
        let ex = &self.execs[executor];
        self.recorder.push(LiveEvent::SlotRegistryChanged {
            executor,
            slots: ex.slots,
            free: ex.slots.saturating_sub(ex.running),
            at: self.recorder.now(),
        });
    }

    fn handle(&mut self, ev: Ev<O::Writer>) -> Result<(), LiveError> {
        match ev {
            Ev::Registered {
                executor,
                slots,
                conn,
                writer,
            } => {
                if executor >= self.execs.len() {
                    self.log.error(|| {
                        format!(
                            "executor {executor} registered from outside the configured cluster"
                        )
                    });
                    return Ok(()); // id outside the configured cluster
                }
                let reg = self.epochs.register(executor, conn);
                self.out.attach(executor, conn, writer);
                if reg.reincarnation {
                    // Requeue whatever the superseded incarnation was
                    // running; its reports are fenced from here on.
                    for task in 0..self.st.done.len() {
                        if self.st.assigned_to[task] == Some(executor) && !self.st.done[task] {
                            self.st.assigned_to[task] = None;
                            self.st.assigned_at[task] = None;
                            self.record_failure(task, executor)?;
                        }
                    }
                }
                let ex = &mut self.execs[executor];
                ex.registered = true;
                ex.alive = true;
                ex.blacklisted = false;
                ex.blacklisted_at = None;
                ex.failures_in_stage = 0;
                ex.slots = slots;
                ex.running = 0;
                ex.last_heartbeat = Instant::now();
                if reg.reincarnation {
                    self.metrics.reincarnations.inc();
                    self.recorder.push(LiveEvent::ExecutorReincarnated {
                        executor,
                        epoch: reg.epoch,
                        at: self.recorder.now(),
                    });
                    self.log.info(|| {
                        format!(
                            "executor {executor} reincarnated (epoch {}) with {slots} slots",
                            reg.epoch
                        )
                    });
                } else {
                    self.log
                        .info(|| format!("executor {executor} registered with {slots} slots"));
                }
                self.record_slots(executor);
                // Late joiners still need the current stage announcement.
                self.announce_stage_to(executor);
            }
            Ev::Frame {
                executor,
                conn,
                frame,
                bytes,
            } => {
                if executor >= self.execs.len() {
                    return Ok(());
                }
                if self.epochs.admit(executor, conn) == Admission::Stale {
                    // A zombie predecessor is still talking: fence it.
                    self.metrics.frames_fenced.inc();
                    self.recorder.push(LiveEvent::EpochFenced {
                        executor,
                        kind: frame.kind_str(),
                        at: self.recorder.now(),
                    });
                    self.log.debug(|| {
                        format!(
                            "fenced a {} frame from a stale incarnation of executor {executor}",
                            frame.kind_str()
                        )
                    });
                    return Ok(());
                }
                if !self.execs[executor].alive && !self.finished {
                    self.resurrect(executor)?;
                }
                self.metrics.frames_received.inc();
                self.metrics.bytes_received.add(bytes as u64);
                self.recorder.push(LiveEvent::FrameReceived {
                    executor,
                    kind: frame.kind_str(),
                    bytes,
                    at: self.recorder.now(),
                });
                self.handle_frame(executor, frame)?;
            }
            Ev::Gone { executor, conn } => {
                if executor >= self.execs.len() {
                    return Ok(());
                }
                if !self.epochs.disconnect(executor, conn) {
                    return Ok(()); // a fenced predecessor's socket died
                }
                self.out.detach_if_current(executor, conn);
                // A broken/closed socket is immediate evidence of loss —
                // faster than waiting out the heartbeat timeout.
                if self.execs[executor].alive && !self.finished {
                    self.declare_lost(executor)?;
                }
            }
        }
        Ok(())
    }

    /// Frames are flowing on the current connection of an executor we
    /// declared lost: the partition healed without the socket dying. Open
    /// a new epoch, put the executor back in the fleet, and re-announce
    /// the stage — it may have changed while the executor was unreachable.
    fn resurrect(&mut self, executor: usize) -> Result<(), LiveError> {
        let epoch = self.epochs.resurrect(executor);
        let ex = &mut self.execs[executor];
        ex.alive = true;
        ex.running = 0;
        ex.last_heartbeat = Instant::now();
        self.metrics.reincarnations.inc();
        self.recorder.push(LiveEvent::ExecutorReincarnated {
            executor,
            epoch,
            at: self.recorder.now(),
        });
        self.log
            .info(|| format!("executor {executor} resurrected on live traffic (epoch {epoch})"));
        self.record_slots(executor);
        self.announce_stage_to(executor);
        Ok(())
    }

    /// Sends the current stage announcement to one executor.
    fn announce_stage_to(&mut self, executor: usize) {
        if self.finished || self.stage_idx >= self.job.stages.len() {
            return;
        }
        let spec = &self.job.stages[self.stage_idx];
        let frame = Frame::StageStart {
            stage: self.stage_idx,
            kind: spec.kind,
            tasks: spec.tasks,
            records_per_task: spec.records_per_task,
            seed: spec.seed,
            hint: self.stage_hint(),
        };
        self.send(executor, &frame);
    }

    fn handle_frame(&mut self, from: usize, frame: Frame) -> Result<(), LiveError> {
        match frame {
            Frame::Core(Message::Heartbeat { executor }) if executor == from => {
                let now = Instant::now();
                let gap = now
                    .duration_since(self.execs[from].last_heartbeat)
                    .as_secs_f64();
                self.execs[from].last_heartbeat = now;
                self.metrics.heartbeat_gap_s.record(gap);
                self.recorder.push(LiveEvent::Heartbeat {
                    executor: from,
                    gap,
                    at: self.recorder.now(),
                });
            }
            Frame::Core(Message::PoolSizeChanged { executor, size }) if executor == from => {
                // §5.4: fold the executor's new pool size into the slot
                // registry so scheduling matches its real capacity.
                self.execs[from].last_heartbeat = Instant::now();
                self.execs[from].slots = size;
                self.metrics.pool_size[from].set(size as f64);
                self.recorder
                    .push(LiveEvent::Trace(TraceEvent::PoolResized {
                        executor: from,
                        to: size,
                        at: self.recorder.now(),
                    }));
                self.record_slots(from);
                self.log
                    .debug(|| format!("executor {from} resized its pool to {size}"));
                let decision = PoolDecision {
                    at: self.started.elapsed().as_secs_f64(),
                    executor: from,
                    size,
                };
                self.decisions.push(decision);
                let registry = self.registry();
                (self.observer)(&decision, &registry);
            }
            Frame::Core(Message::TaskFailed { task, .. }) => {
                self.execs[from].last_heartbeat = Instant::now();
                self.task_failed(from, task)?;
            }
            Frame::TaskFinished { task, .. } => {
                self.execs[from].last_heartbeat = Instant::now();
                self.task_finished(from, task);
            }
            // Pure telemetry: merge the executor's task span into the live
            // timeline with its full trace key. Never touches scheduling
            // state — outcome frames remain the control path.
            Frame::TaskSpan {
                key,
                executor,
                start_bits,
                end_bits,
                ok,
            } if executor == from => {
                self.recorder.push(LiveEvent::TaskSpan {
                    job: key.job,
                    stage: key.stage,
                    task: key.task,
                    attempt: key.attempt,
                    epoch: key.epoch,
                    executor: from,
                    start: f64::from_bits(start_bits),
                    end: f64::from_bits(end_bits),
                    ok,
                });
            }
            // A ζ decision record streamed as it closed: merge it into the
            // trace now and count it, so the shutdown-time journal replay
            // (and the process-fleet reaper) skips what already streamed.
            Frame::ZetaSample {
                executor,
                threads,
                zeta_bits,
                at_bits,
            } if executor == from => {
                self.execs[from].last_heartbeat = Instant::now();
                self.recorder.note_zeta_streamed(from);
                self.recorder
                    .push(LiveEvent::Trace(TraceEvent::IntervalClosed {
                        executor: from,
                        threads,
                        zeta: f64::from_bits(zeta_bits),
                        at: f64::from_bits(at_bits),
                    }));
            }
            // A mis-addressed core message, a duplicate Register, or a
            // driver-only frame echoed back: ignore, the protocol is
            // defensive against confused peers.
            _ => {}
        }
        Ok(())
    }

    /// Seeds the queue for stage `self.stage_idx` and announces it.
    fn begin_stage(&mut self) {
        let spec = &self.job.stages[self.stage_idx];
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::StageStarted {
                stage: self.stage_idx,
                at: self.recorder.now(),
            }));
        self.log.info(|| {
            format!(
                "stage {} ({}) started: {} tasks",
                self.stage_idx,
                self.job.stages[self.stage_idx].name,
                self.job.stages[self.stage_idx].tasks
            )
        });
        self.st = StageState::new(spec.tasks);
        self.queue.reset(spec.tasks, self.cfg.executors);
        for t in 0..spec.tasks {
            let preferred = self.preferred(t);
            self.queue.push(t, &preferred);
        }
        for ex in &mut self.execs {
            ex.failures_in_stage = 0;
            ex.running = 0;
        }
        let frame = Frame::StageStart {
            stage: self.stage_idx,
            kind: spec.kind,
            tasks: spec.tasks,
            records_per_task: spec.records_per_task,
            seed: spec.seed,
            hint: self.stage_hint(),
        };
        self.broadcast(&frame);
    }

    /// The per-executor task-count hint for the current stage (what the
    /// simulated engine passes to `stage_started`).
    fn stage_hint(&self) -> usize {
        let tasks = self.job.stages[self.stage_idx].tasks;
        (tasks / self.cfg.executors.max(1)).max(1)
    }

    /// A task's preferred executors: round-robin "data locality", the same
    /// placement rule the engine-scale benchmarks use for map stages.
    fn preferred(&self, task: usize) -> [usize; 1] {
        [task % self.cfg.executors.max(1)]
    }

    /// Hands queued tasks to free slots until nothing more can move.
    fn try_assign(&mut self) -> Result<(), LiveError> {
        loop {
            let mut progress = false;
            let mut broken: Vec<usize> = Vec::new();
            for e in 0..self.execs.len() {
                if !self.execs[e].usable()
                    || self.execs[e].running >= self.execs[e].slots
                    || !self.out.accepts_work(e)
                {
                    continue;
                }
                let failed_on = &self.st.failed_on;
                if let Some(task) = self.queue.pick(e, |t| failed_on[t].contains(&e)) {
                    self.st.assigned_to[task] = Some(e);
                    self.st.assigned_at[task] = Some(Instant::now());
                    self.st.attempts += 1;
                    self.execs[e].running += 1;
                    self.metrics.tasks_started[e].inc();
                    self.recorder
                        .push(LiveEvent::Trace(TraceEvent::TaskStarted {
                            task,
                            attempt: self.st.failures[task],
                            executor: e,
                            speculative: false,
                            at: self.recorder.now(),
                        }));
                    let ok = self.send(e, &Frame::Core(Message::AssignTask { task, executor: e }));
                    if !ok {
                        broken.push(e);
                    }
                    progress = true;
                }
            }
            for e in broken {
                if self.execs[e].alive {
                    self.declare_lost(e)?;
                }
            }
            if !progress {
                self.metrics.queue_depth.set(self.queue.len() as f64);
                return Ok(());
            }
        }
    }

    fn check_heartbeats(&mut self) -> Result<(), LiveError> {
        let now = Instant::now();
        for e in 0..self.execs.len() {
            let ex = &self.execs[e];
            if ex.registered
                && ex.alive
                && now.duration_since(ex.last_heartbeat) > self.cfg.heartbeat_timeout
            {
                self.declare_lost(e)?;
            }
        }
        Ok(())
    }

    /// Requeues task attempts that overran [`DriverConfig::task_deadline`],
    /// charging the overrun to the slow executor like any other failure.
    fn check_task_deadlines(&mut self) -> Result<(), LiveError> {
        let Some(deadline) = self.cfg.task_deadline else {
            return Ok(());
        };
        for task in 0..self.st.done.len() {
            if self.st.done[task] {
                continue;
            }
            let Some(e) = self.st.assigned_to[task] else {
                continue;
            };
            if !matches!(self.st.assigned_at[task], Some(at) if at.elapsed() > deadline) {
                continue;
            }
            self.log.error(|| {
                format!("task {task} overran its {deadline:?} deadline on executor {e}; requeueing")
            });
            self.st.assigned_to[task] = None;
            self.st.assigned_at[task] = None;
            self.execs[e].running = self.execs[e].running.saturating_sub(1);
            self.execs[e].failures_in_stage += 1;
            self.maybe_blacklist(e);
            self.record_failure(task, e)?;
        }
        Ok(())
    }

    /// Lets blacklisted-but-alive executors back in once their probation
    /// elapses, with a clean failure count.
    fn check_probation(&mut self) {
        for e in 0..self.execs.len() {
            let served = matches!(
                self.execs[e].blacklisted_at,
                Some(at) if at.elapsed() >= self.cfg.probation
            );
            if served && self.execs[e].alive {
                self.execs[e].blacklisted = false;
                self.execs[e].blacklisted_at = None;
                self.execs[e].failures_in_stage = 0;
                self.record_slots(e);
                self.log
                    .info(|| format!("executor {e} finished probation: un-blacklisted"));
            }
        }
    }

    /// Graceful degradation: below the usable-executor floor the job parks
    /// (bounded by [`DriverConfig::degraded_wait`]) instead of failing
    /// fast, giving reincarnating executors a window to rejoin.
    fn check_degraded(&mut self) -> Result<(), LiveError> {
        let live = self.execs.iter().filter(|e| e.usable()).count();
        let floor = self.cfg.min_live_executors.max(1);
        let below =
            self.execs.iter().any(|e| e.registered) && live < floor && self.st.remaining > 0;
        if below {
            match self.degraded_since {
                None => {
                    self.degraded_since = Some(Instant::now());
                    self.metrics.degraded.set(1.0);
                    self.recorder.push(LiveEvent::Degraded {
                        live,
                        floor,
                        at: self.recorder.now(),
                    });
                    self.log.error(|| {
                        format!(
                            "degraded: {live} usable executors < floor {floor}; \
                             parking the job for up to {:?}",
                            self.cfg.degraded_wait
                        )
                    });
                }
                Some(since) if since.elapsed() > self.cfg.degraded_wait => {
                    return Err(LiveError::NoUsableExecutors);
                }
                Some(_) => {}
            }
        } else if let Some(since) = self.degraded_since.take() {
            let waited = since.elapsed().as_secs_f64();
            self.metrics.degraded.set(0.0);
            self.recorder.push(LiveEvent::DegradedRecovered {
                waited,
                at: self.recorder.now(),
            });
            self.log
                .info(|| format!("recovered above the executor floor after {waited:.2}s degraded"));
        }
        Ok(())
    }

    /// The executor went silent or its socket broke: blacklist it for the
    /// job and recover every attempt it was running — the live analogue of
    /// the simulated engine's executor-lost path.
    fn declare_lost(&mut self, executor: usize) -> Result<(), LiveError> {
        self.execs[executor].alive = false;
        self.execs[executor].running = 0;
        self.lost.push(executor);
        self.metrics.executors_lost.inc();
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::ExecutorFailed {
                executor,
                at: self.recorder.now(),
            }));
        self.record_slots(executor);
        self.log
            .error(|| format!("executor {executor} declared lost; requeueing its work"));
        // The connection stays attached: a partitioned socket may heal, and
        // resurrection re-announces the stage through it. A truly dead
        // connection is detached by its `Gone` event instead.
        for task in 0..self.st.done.len() {
            if self.st.assigned_to[task] == Some(executor) && !self.st.done[task] {
                self.st.assigned_to[task] = None;
                self.st.assigned_at[task] = None;
                self.record_failure(task, executor)?;
            }
        }
        // Survivors poison their current monitoring interval: the requeued
        // work about to land on them is not the workload they were probing.
        self.broadcast_except(executor, &Frame::FaultNotice { executor });
        Ok(())
    }

    /// Books one failed attempt of `task` on `executor` and requeues it.
    fn record_failure(&mut self, task: usize, executor: usize) -> Result<(), LiveError> {
        self.st.failures[task] += 1;
        self.st.failed_attempts += 1;
        self.metrics.tasks_failed[executor].inc();
        self.recorder.push(LiveEvent::Trace(TraceEvent::TaskFailed {
            task,
            attempt: self.st.failures[task] - 1,
            executor,
            at: self.recorder.now(),
        }));
        if !self.st.failed_on[task].contains(&executor) {
            self.st.failed_on[task].push(executor);
        }
        if self.st.failures[task] >= self.cfg.max_task_attempts {
            self.log
                .error(|| format!("task {task} exceeded its attempt budget"));
            return Err(LiveError::MaxAttemptsExceeded { task });
        }
        if !self.queue.contains(task) {
            let preferred = self.preferred(task);
            self.queue.push(task, &preferred);
            self.metrics.retries.inc();
        }
        Ok(())
    }

    fn task_failed(&mut self, executor: usize, task: usize) -> Result<(), LiveError> {
        if task >= self.st.done.len()
            || self.st.done[task]
            || self.st.assigned_to[task] != Some(executor)
        {
            return Ok(()); // stale or duplicate report
        }
        self.st.assigned_to[task] = None;
        self.st.assigned_at[task] = None;
        self.execs[executor].running = self.execs[executor].running.saturating_sub(1);
        self.execs[executor].failures_in_stage += 1;
        self.maybe_blacklist(executor);
        self.record_failure(task, executor)
    }

    /// Blacklists `executor` (starting its probation clock) once its
    /// per-stage failure count crosses the threshold, as long as the fleet
    /// keeps at least one other usable executor.
    fn maybe_blacklist(&mut self, executor: usize) {
        if self.execs[executor].failures_in_stage >= self.cfg.blacklist_after
            && !self.execs[executor].blacklisted
            && self.execs.iter().filter(|e| e.usable()).count() > 1
        {
            self.execs[executor].blacklisted = true;
            self.execs[executor].blacklisted_at = Some(Instant::now());
            self.recorder
                .push(LiveEvent::Trace(TraceEvent::ExecutorBlacklisted {
                    executor,
                    at: self.recorder.now(),
                }));
            self.log.error(|| {
                format!(
                    "executor {executor} blacklisted after {} failures this stage",
                    self.execs[executor].failures_in_stage
                )
            });
        }
    }

    fn task_finished(&mut self, executor: usize, task: usize) {
        if task >= self.st.done.len()
            || self.st.done[task]
            || self.st.assigned_to[task] != Some(executor)
        {
            return; // duplicate or stale completion
        }
        self.st.done[task] = true;
        self.st.assigned_to[task] = None;
        self.st.assigned_at[task] = None;
        self.st.remaining -= 1;
        self.execs[executor].running = self.execs[executor].running.saturating_sub(1);
        self.metrics.tasks_finished[executor].inc();
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::TaskFinished {
                task,
                attempt: self.st.failures[task],
                executor,
                at: self.recorder.now(),
            }));
        if self.st.remaining == 0 {
            self.finish_stage();
        }
    }

    fn finish_stage(&mut self) {
        let spec = &self.job.stages[self.stage_idx];
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::StageFinished {
                stage: self.stage_idx,
                at: self.recorder.now(),
            }));
        self.log.info(|| {
            format!(
                "stage {} ({}) finished: {} attempts, {} failed",
                self.stage_idx, spec.name, self.st.attempts, self.st.failed_attempts
            )
        });
        self.stage_reports.push(LiveStageReport {
            name: spec.name.clone(),
            tasks: spec.tasks,
            attempts: self.st.attempts,
            failed_attempts: self.st.failed_attempts,
            duration_secs: self.st.started.elapsed().as_secs_f64(),
        });
        self.stage_idx += 1;
        if self.stage_idx == self.job.stages.len() {
            self.finished = true;
        } else {
            self.begin_stage();
        }
    }

    /// Sends `frame` to `executor`; `false` means the write path broke.
    fn send(&mut self, executor: usize, frame: &Frame) -> bool {
        match self.out.send(executor, frame) {
            Some(bytes) => {
                self.metrics.frames_sent.inc();
                self.metrics.bytes_sent.add(bytes as u64);
                self.recorder.push(LiveEvent::FrameSent {
                    executor,
                    kind: frame.kind_str(),
                    bytes,
                    at: self.recorder.now(),
                });
                true
            }
            None => false,
        }
    }

    /// Best-effort send to every connected executor.
    fn broadcast(&mut self, frame: &Frame) {
        self.broadcast_except(usize::MAX, frame);
    }

    /// Best-effort send to every connected executor but `skip`.
    fn broadcast_except(&mut self, skip: usize, frame: &Frame) {
        for executor in self.out.attached() {
            if executor == skip {
                continue;
            }
            self.send(executor, frame);
        }
    }

    fn registry(&self) -> Vec<SlotInfo> {
        self.execs
            .iter()
            .map(|e| SlotInfo {
                registered: e.registered,
                alive: e.alive,
                blacklisted: e.blacklisted,
                slots: e.slots,
                free: e.slots.saturating_sub(e.running),
            })
            .collect()
    }

    fn into_report(self) -> LiveReport {
        LiveReport {
            job: self.job.name.clone(),
            runtime_secs: self.started.elapsed().as_secs_f64(),
            registry: self.registry(),
            stages: self.stage_reports,
            decisions: self.decisions,
            lost_executors: self.lost,
            metrics: self.cfg.metrics.snapshot(),
        }
    }
}
