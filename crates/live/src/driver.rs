//! The live driver: a TCP server running the paper's driver-side protocol.
//!
//! Responsibilities mirror the simulated engine's driver exactly, but over
//! real sockets and wall-clock time:
//!
//! * accept executor connections and their [`Frame::Register`] handshakes;
//! * schedule pending tasks through the *same* locality-aware
//!   [`PendingQueue`] the simulator uses, respecting per-executor free
//!   slots;
//! * apply `PoolSizeChanged` messages to the slot registry (§5.4) so
//!   scheduling always reflects each executor's current pool size;
//! * track heartbeats, declare executors lost after
//!   [`DriverConfig::heartbeat_timeout`] of silence, requeue their running
//!   tasks with the failure recorded against the lost executor, and give
//!   up with [`LiveError::MaxAttemptsExceeded`] when a task keeps dying;
//! * blacklist executors that fail too many tasks in one stage (while at
//!   least one other usable executor remains).
//!
//! The driver is single-threaded over an event channel: per-connection
//! reader threads translate socket frames into events, and the main loop
//! owns every piece of mutable state — the same structure as the
//! simulator's event loop, with `recv_timeout` standing in for the virtual
//! clock.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sae_dag::sched::PendingQueue;
use sae_dag::{Message, TraceEvent};
use sae_metrics::{Counter, Gauge, Histogram, MetricRegistry, RegistrySnapshot};

use crate::job::LiveJob;
use crate::log::Logger;
use crate::recorder::{FlightRecorder, LiveEvent};
use crate::wire::{Frame, FrameReader, FrameWriter, Next};

/// Driver tuning knobs.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Executors expected to register.
    pub executors: usize,
    /// Silence longer than this declares an executor lost.
    pub heartbeat_timeout: Duration,
    /// Event-loop wakeup period for heartbeat and deadline checks.
    pub check_interval: Duration,
    /// A task failing this many attempts aborts the job.
    pub max_task_attempts: usize,
    /// An executor failing this many tasks in one stage is blacklisted
    /// (unless it is the last usable executor).
    pub blacklist_after: usize,
    /// Wall-clock bound on the whole job.
    pub deadline: Duration,
    /// The cluster's shared flight recorder; event timestamps use its
    /// epoch, so driver and executor events land on one timeline.
    pub recorder: FlightRecorder,
    /// The cluster's shared metric registry (task counts, retries, wire
    /// traffic, heartbeat gaps, queue depth).
    pub metrics: MetricRegistry,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            executors: 2,
            heartbeat_timeout: Duration::from_millis(800),
            check_interval: Duration::from_millis(50),
            max_task_attempts: 4,
            blacklist_after: 3,
            deadline: Duration::from_secs(120),
            recorder: FlightRecorder::disabled(),
            metrics: MetricRegistry::new(),
        }
    }
}

/// One `PoolSizeChanged` round-trip as witnessed by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolDecision {
    /// Seconds since the job started.
    pub at: f64,
    /// Executor whose pool resized.
    pub executor: usize,
    /// The new pool size, now also the executor's slot count.
    pub size: usize,
}

/// Snapshot of one executor's slot-registry entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotInfo {
    /// Whether the executor ever registered.
    pub registered: bool,
    /// Whether the driver currently believes it alive.
    pub alive: bool,
    /// Whether it was blacklisted for repeated failures.
    pub blacklisted: bool,
    /// Total slots (the executor's last announced pool size).
    pub slots: usize,
    /// Slots not currently running a task.
    pub free: usize,
}

/// Per-stage outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveStageReport {
    /// Stage name from the job spec.
    pub name: String,
    /// Tasks in the stage.
    pub tasks: usize,
    /// Task attempts launched (>= tasks when retries happened).
    pub attempts: usize,
    /// Attempts that failed or were lost with their executor.
    pub failed_attempts: usize,
    /// Wall-clock stage duration in seconds.
    pub duration_secs: f64,
}

/// The driver's account of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveReport {
    /// Job name.
    pub job: String,
    /// Wall-clock job runtime in seconds.
    pub runtime_secs: f64,
    /// Per-stage outcomes, in order.
    pub stages: Vec<LiveStageReport>,
    /// Every `PoolSizeChanged` round-trip, in arrival order — the live
    /// decision trace compared against the simulator by `live_vs_sim`.
    pub decisions: Vec<PoolDecision>,
    /// Final slot registry, indexed by executor id.
    pub registry: Vec<SlotInfo>,
    /// Executors declared lost, in detection order.
    pub lost_executors: Vec<usize>,
    /// Final snapshot of the cluster's shared metric registry.
    pub metrics: RegistrySnapshot,
}

/// Why a live job did not complete.
#[derive(Debug)]
pub enum LiveError {
    /// A socket or listener operation failed.
    Io(io::Error),
    /// The job exceeded [`DriverConfig::deadline`].
    DeadlineExceeded,
    /// A task failed [`DriverConfig::max_task_attempts`] times.
    MaxAttemptsExceeded {
        /// The task that kept dying.
        task: usize,
    },
    /// Every registered executor is lost or blacklisted with work pending.
    NoUsableExecutors,
    /// [`crate::LiveCluster::run`] was called twice.
    AlreadyRan,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "live runtime I/O error: {e}"),
            LiveError::DeadlineExceeded => write!(f, "live job exceeded its deadline"),
            LiveError::MaxAttemptsExceeded { task } => {
                write!(f, "task {task} exceeded its attempt budget")
            }
            LiveError::NoUsableExecutors => {
                write!(f, "no usable executors remain with tasks pending")
            }
            LiveError::AlreadyRan => write!(f, "this cluster's driver already ran a job"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LiveError {
    fn from(e: io::Error) -> Self {
        LiveError::Io(e)
    }
}

/// Events the per-connection reader threads feed the driver loop.
enum Ev {
    /// An executor completed its Register handshake.
    Registered { executor: usize, slots: usize },
    /// A frame arrived on an executor's connection.
    Frame {
        executor: usize,
        frame: Frame,
        /// Wire size of the frame, length prefix included.
        bytes: usize,
    },
    /// An executor's connection closed or broke.
    Gone { executor: usize },
}

/// Driver-side view of one executor.
struct ExecState {
    registered: bool,
    alive: bool,
    blacklisted: bool,
    slots: usize,
    running: usize,
    failures_in_stage: usize,
    last_heartbeat: Instant,
}

impl ExecState {
    fn usable(&self) -> bool {
        self.registered && self.alive && !self.blacklisted
    }
}

/// Mutable state of the stage currently running.
struct StageState {
    done: Vec<bool>,
    assigned_to: Vec<Option<usize>>,
    failures: Vec<usize>,
    failed_on: Vec<Vec<usize>>,
    remaining: usize,
    attempts: usize,
    failed_attempts: usize,
    started: Instant,
}

impl StageState {
    fn new(tasks: usize) -> Self {
        Self {
            done: vec![false; tasks],
            assigned_to: vec![None; tasks],
            failures: vec![0; tasks],
            failed_on: vec![Vec::new(); tasks],
            remaining: tasks,
            attempts: 0,
            failed_attempts: 0,
            started: Instant::now(),
        }
    }
}

/// A live driver bound to a loopback port, ready to run one job.
#[derive(Debug)]
pub struct Driver {
    listener: TcpListener,
    cfg: DriverConfig,
}

impl Driver {
    /// Binds an ephemeral loopback port.
    pub fn bind(cfg: DriverConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        Ok(Self { listener, cfg })
    }

    /// The address executors should connect to.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs `job` to completion (or failure), consuming the driver.
    pub fn run(self, job: &LiveJob) -> Result<LiveReport, LiveError> {
        self.run_with_observer(job, |_, _| {})
    }

    /// Like [`Driver::run`], calling `observer` with each [`PoolDecision`]
    /// and the slot registry as updated by it — the hook the
    /// `live_cluster` example uses to print registry evolution.
    pub fn run_with_observer(
        self,
        job: &LiveJob,
        observer: impl FnMut(&PoolDecision, &[SlotInfo]),
    ) -> Result<LiveReport, LiveError> {
        let addr = self.addr()?;
        let (tx, rx) = unbounded();
        let writers: Arc<Mutex<HashMap<usize, FrameWriter>>> = Arc::default();
        let stop_accepting = Arc::new(AtomicBool::new(false));
        spawn_acceptor(
            self.listener.try_clone()?,
            self.cfg.executors,
            tx.clone(),
            Arc::clone(&writers),
            Arc::clone(&stop_accepting),
        );
        let mut run = Run::new(&self.cfg, job, Arc::clone(&writers), observer);
        let result = run.drive(&rx);
        // Tell executors the job is over (best-effort) and unblock the
        // acceptor if some executors never connected.
        run.broadcast(&Frame::Shutdown);
        stop_accepting.store(true, Ordering::Relaxed);
        for _ in 0..self.cfg.executors {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(100));
        }
        drop(tx);
        result.map(|()| run.into_report())
    }
}

/// Accepts up to `n` executor connections, one reader thread each.
fn spawn_acceptor(
    listener: TcpListener,
    n: usize,
    tx: Sender<Ev>,
    writers: Arc<Mutex<HashMap<usize, FrameWriter>>>,
    stop: Arc<AtomicBool>,
) {
    std::thread::spawn(move || {
        for _ in 0..n {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    spawn_reader(stream, tx.clone(), Arc::clone(&writers));
                }
                Err(_) => break,
            }
        }
    });
}

/// Reads frames off one executor connection and forwards them as events.
///
/// The first frame must be a [`Frame::Register`]; anything else abandons
/// the connection. After registration the stream's write half is published
/// in the shared writer map under the executor's id.
fn spawn_reader(
    stream: TcpStream,
    tx: Sender<Ev>,
    writers: Arc<Mutex<HashMap<usize, FrameWriter>>>,
) {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let read_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut reader = FrameReader::new(read_half);
        let (executor, slots) = match reader.next_frame() {
            Ok(Next::Frame(Frame::Register { executor, slots })) => (executor, slots),
            _ => return,
        };
        writers.lock().insert(executor, FrameWriter::new(stream));
        if tx.send(Ev::Registered { executor, slots }).is_err() {
            return;
        }
        loop {
            match reader.next_frame() {
                Ok(Next::Frame(frame)) => {
                    let bytes = reader.last_frame_len();
                    if tx
                        .send(Ev::Frame {
                            executor,
                            frame,
                            bytes,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Ok(Next::Idle) => {}
                Ok(Next::Eof) | Err(_) => {
                    let _ = tx.send(Ev::Gone { executor });
                    return;
                }
            }
        }
    });
}

/// The driver's cached metric handles; names follow the
/// `live.driver.*{executor="N"}` label convention the Prometheus renderer
/// parses back into label sets.
struct DriverMetrics {
    frames_sent: Counter,
    bytes_sent: Counter,
    frames_received: Counter,
    bytes_received: Counter,
    retries: Counter,
    executors_lost: Counter,
    heartbeat_gap_s: Histogram,
    queue_depth: Gauge,
    tasks_started: Vec<Counter>,
    tasks_finished: Vec<Counter>,
    tasks_failed: Vec<Counter>,
    pool_size: Vec<Gauge>,
}

impl DriverMetrics {
    fn new(registry: &MetricRegistry, executors: usize) -> Self {
        let per_counter = |name: &str| -> Vec<Counter> {
            (0..executors)
                .map(|e| registry.counter(&format!("live.driver.{name}{{executor=\"{e}\"}}")))
                .collect()
        };
        Self {
            frames_sent: registry.counter("live.driver.frames_sent"),
            bytes_sent: registry.counter("live.driver.bytes_sent"),
            frames_received: registry.counter("live.driver.frames_received"),
            bytes_received: registry.counter("live.driver.bytes_received"),
            retries: registry.counter("live.driver.retries"),
            executors_lost: registry.counter("live.driver.executors_lost"),
            heartbeat_gap_s: registry.histogram("live.driver.heartbeat_gap_s"),
            queue_depth: registry.gauge("live.driver.queue_depth"),
            tasks_started: per_counter("tasks_started"),
            tasks_finished: per_counter("tasks_finished"),
            tasks_failed: per_counter("tasks_failed"),
            pool_size: (0..executors)
                .map(|e| registry.gauge(&format!("live.driver.pool_size{{executor=\"{e}\"}}")))
                .collect(),
        }
    }
}

/// All mutable state of one job run, driven by the event loop.
struct Run<'j, Obs> {
    cfg: DriverConfig,
    job: &'j LiveJob,
    writers: Arc<Mutex<HashMap<usize, FrameWriter>>>,
    execs: Vec<ExecState>,
    queue: PendingQueue,
    st: StageState,
    stage_idx: usize,
    decisions: Vec<PoolDecision>,
    lost: Vec<usize>,
    stage_reports: Vec<LiveStageReport>,
    started: Instant,
    finished: bool,
    observer: Obs,
    recorder: FlightRecorder,
    metrics: DriverMetrics,
    log: Logger,
}

impl<'j, Obs: FnMut(&PoolDecision, &[SlotInfo])> Run<'j, Obs> {
    fn new(
        cfg: &DriverConfig,
        job: &'j LiveJob,
        writers: Arc<Mutex<HashMap<usize, FrameWriter>>>,
        observer: Obs,
    ) -> Self {
        let now = Instant::now();
        let execs = (0..cfg.executors)
            .map(|_| ExecState {
                registered: false,
                alive: false,
                blacklisted: false,
                slots: 0,
                running: 0,
                failures_in_stage: 0,
                last_heartbeat: now,
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            job,
            writers,
            execs,
            queue: PendingQueue::new(),
            st: StageState::new(0),
            stage_idx: 0,
            decisions: Vec::new(),
            lost: Vec::new(),
            stage_reports: Vec::new(),
            started: now,
            finished: false,
            observer,
            recorder: cfg.recorder.clone(),
            metrics: DriverMetrics::new(&cfg.metrics, cfg.executors),
            log: Logger::new("driver", cfg.recorder.clone()),
        }
    }

    /// Records the driver's view of one executor's slot-registry entry.
    fn record_slots(&self, executor: usize) {
        let ex = &self.execs[executor];
        self.recorder.push(LiveEvent::SlotRegistryChanged {
            executor,
            slots: ex.slots,
            free: ex.slots.saturating_sub(ex.running),
            at: self.recorder.now(),
        });
    }

    /// The main event loop: pump events, check timers, until the job
    /// completes or dies.
    fn drive(&mut self, rx: &Receiver<Ev>) -> Result<(), LiveError> {
        if self.job.stages.is_empty() {
            return Ok(());
        }
        self.begin_stage();
        loop {
            match rx.recv_timeout(self.cfg.check_interval) {
                Ok(ev) => self.handle(ev)?,
                Err(RecvTimeoutError::Timeout) => {}
                // All reader threads hung up; timers below still decide.
                Err(RecvTimeoutError::Disconnected) => {}
            }
            self.check_heartbeats()?;
            self.try_assign()?;
            if self.finished {
                return Ok(());
            }
            if self.started.elapsed() > self.cfg.deadline {
                return Err(LiveError::DeadlineExceeded);
            }
            if self.execs.iter().any(|e| e.registered)
                && !self.execs.iter().any(|e| e.usable())
                && self.st.remaining > 0
            {
                return Err(LiveError::NoUsableExecutors);
            }
        }
    }

    fn handle(&mut self, ev: Ev) -> Result<(), LiveError> {
        match ev {
            Ev::Registered { executor, slots } => {
                if executor >= self.execs.len() {
                    return Ok(()); // id outside the configured cluster
                }
                let ex = &mut self.execs[executor];
                ex.registered = true;
                ex.alive = true;
                ex.slots = slots;
                ex.running = 0;
                ex.last_heartbeat = Instant::now();
                self.log
                    .info(|| format!("executor {executor} registered with {slots} slots"));
                self.record_slots(executor);
                // Late joiners still need the current stage announcement.
                let spec = &self.job.stages[self.stage_idx];
                let frame = Frame::StageStart {
                    stage: self.stage_idx,
                    kind: spec.kind,
                    tasks: spec.tasks,
                    records_per_task: spec.records_per_task,
                    seed: spec.seed,
                    hint: self.stage_hint(),
                };
                self.send(executor, &frame);
            }
            Ev::Frame {
                executor,
                frame,
                bytes,
            } => {
                if executor >= self.execs.len() || !self.execs[executor].alive {
                    return Ok(()); // stale traffic from a declared-lost peer
                }
                self.metrics.frames_received.inc();
                self.metrics.bytes_received.add(bytes as u64);
                self.recorder.push(LiveEvent::FrameReceived {
                    executor,
                    kind: frame.kind_str(),
                    bytes,
                    at: self.recorder.now(),
                });
                self.handle_frame(executor, frame)?;
            }
            Ev::Gone { executor } => {
                // A broken/closed socket is immediate evidence of loss —
                // faster than waiting out the heartbeat timeout.
                if executor < self.execs.len() && self.execs[executor].alive && !self.finished {
                    self.declare_lost(executor)?;
                }
            }
        }
        Ok(())
    }

    fn handle_frame(&mut self, from: usize, frame: Frame) -> Result<(), LiveError> {
        match frame {
            Frame::Core(Message::Heartbeat { executor }) if executor == from => {
                let now = Instant::now();
                let gap = now
                    .duration_since(self.execs[from].last_heartbeat)
                    .as_secs_f64();
                self.execs[from].last_heartbeat = now;
                self.metrics.heartbeat_gap_s.record(gap);
                self.recorder.push(LiveEvent::Heartbeat {
                    executor: from,
                    gap,
                    at: self.recorder.now(),
                });
            }
            Frame::Core(Message::PoolSizeChanged { executor, size }) if executor == from => {
                // §5.4: fold the executor's new pool size into the slot
                // registry so scheduling matches its real capacity.
                self.execs[from].last_heartbeat = Instant::now();
                self.execs[from].slots = size;
                self.metrics.pool_size[from].set(size as f64);
                self.recorder
                    .push(LiveEvent::Trace(TraceEvent::PoolResized {
                        executor: from,
                        to: size,
                        at: self.recorder.now(),
                    }));
                self.record_slots(from);
                self.log
                    .debug(|| format!("executor {from} resized its pool to {size}"));
                let decision = PoolDecision {
                    at: self.started.elapsed().as_secs_f64(),
                    executor: from,
                    size,
                };
                self.decisions.push(decision);
                let registry = self.registry();
                (self.observer)(&decision, &registry);
            }
            Frame::Core(Message::TaskFailed { task, .. }) => {
                self.execs[from].last_heartbeat = Instant::now();
                self.task_failed(from, task)?;
            }
            Frame::TaskFinished { task, .. } => {
                self.execs[from].last_heartbeat = Instant::now();
                self.task_finished(from, task);
            }
            // A mis-addressed core message, a duplicate Register, or a
            // driver-only frame echoed back: ignore, the protocol is
            // defensive against confused peers.
            _ => {}
        }
        Ok(())
    }

    /// Seeds the queue for stage `self.stage_idx` and announces it.
    fn begin_stage(&mut self) {
        let spec = &self.job.stages[self.stage_idx];
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::StageStarted {
                stage: self.stage_idx,
                at: self.recorder.now(),
            }));
        self.log.info(|| {
            format!(
                "stage {} ({}) started: {} tasks",
                self.stage_idx,
                self.job.stages[self.stage_idx].name,
                self.job.stages[self.stage_idx].tasks
            )
        });
        self.st = StageState::new(spec.tasks);
        self.queue.reset(spec.tasks, self.cfg.executors);
        for t in 0..spec.tasks {
            let preferred = self.preferred(t);
            self.queue.push(t, &preferred);
        }
        for ex in &mut self.execs {
            ex.failures_in_stage = 0;
            ex.running = 0;
        }
        let frame = Frame::StageStart {
            stage: self.stage_idx,
            kind: spec.kind,
            tasks: spec.tasks,
            records_per_task: spec.records_per_task,
            seed: spec.seed,
            hint: self.stage_hint(),
        };
        self.broadcast(&frame);
    }

    /// The per-executor task-count hint for the current stage (what the
    /// simulated engine passes to `stage_started`).
    fn stage_hint(&self) -> usize {
        let tasks = self.job.stages[self.stage_idx].tasks;
        (tasks / self.cfg.executors.max(1)).max(1)
    }

    /// A task's preferred executors: round-robin "data locality", the same
    /// placement rule the engine-scale benchmarks use for map stages.
    fn preferred(&self, task: usize) -> [usize; 1] {
        [task % self.cfg.executors.max(1)]
    }

    /// Hands queued tasks to free slots until nothing more can move.
    fn try_assign(&mut self) -> Result<(), LiveError> {
        loop {
            let mut progress = false;
            let mut broken: Vec<usize> = Vec::new();
            for e in 0..self.execs.len() {
                if !self.execs[e].usable() || self.execs[e].running >= self.execs[e].slots {
                    continue;
                }
                let failed_on = &self.st.failed_on;
                if let Some(task) = self.queue.pick(e, |t| failed_on[t].contains(&e)) {
                    self.st.assigned_to[task] = Some(e);
                    self.st.attempts += 1;
                    self.execs[e].running += 1;
                    self.metrics.tasks_started[e].inc();
                    self.recorder
                        .push(LiveEvent::Trace(TraceEvent::TaskStarted {
                            task,
                            attempt: self.st.failures[task],
                            executor: e,
                            speculative: false,
                            at: self.recorder.now(),
                        }));
                    let ok = self.send(e, &Frame::Core(Message::AssignTask { task, executor: e }));
                    if !ok {
                        broken.push(e);
                    }
                    progress = true;
                }
            }
            for e in broken {
                if self.execs[e].alive {
                    self.declare_lost(e)?;
                }
            }
            if !progress {
                self.metrics.queue_depth.set(self.queue.len() as f64);
                return Ok(());
            }
        }
    }

    fn check_heartbeats(&mut self) -> Result<(), LiveError> {
        let now = Instant::now();
        for e in 0..self.execs.len() {
            let ex = &self.execs[e];
            if ex.registered
                && ex.alive
                && now.duration_since(ex.last_heartbeat) > self.cfg.heartbeat_timeout
            {
                self.declare_lost(e)?;
            }
        }
        Ok(())
    }

    /// The executor went silent or its socket broke: blacklist it for the
    /// job and recover every attempt it was running — the live analogue of
    /// the simulated engine's executor-lost path.
    fn declare_lost(&mut self, executor: usize) -> Result<(), LiveError> {
        self.execs[executor].alive = false;
        self.execs[executor].running = 0;
        self.lost.push(executor);
        self.metrics.executors_lost.inc();
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::ExecutorFailed {
                executor,
                at: self.recorder.now(),
            }));
        self.record_slots(executor);
        self.log
            .error(|| format!("executor {executor} declared lost; requeueing its work"));
        self.writers.lock().remove(&executor);
        for task in 0..self.st.done.len() {
            if self.st.assigned_to[task] == Some(executor) && !self.st.done[task] {
                self.st.assigned_to[task] = None;
                self.record_failure(task, executor)?;
            }
        }
        Ok(())
    }

    /// Books one failed attempt of `task` on `executor` and requeues it.
    fn record_failure(&mut self, task: usize, executor: usize) -> Result<(), LiveError> {
        self.st.failures[task] += 1;
        self.st.failed_attempts += 1;
        self.metrics.tasks_failed[executor].inc();
        self.recorder.push(LiveEvent::Trace(TraceEvent::TaskFailed {
            task,
            attempt: self.st.failures[task] - 1,
            executor,
            at: self.recorder.now(),
        }));
        if !self.st.failed_on[task].contains(&executor) {
            self.st.failed_on[task].push(executor);
        }
        if self.st.failures[task] >= self.cfg.max_task_attempts {
            self.log
                .error(|| format!("task {task} exceeded its attempt budget"));
            return Err(LiveError::MaxAttemptsExceeded { task });
        }
        if !self.queue.contains(task) {
            let preferred = self.preferred(task);
            self.queue.push(task, &preferred);
            self.metrics.retries.inc();
        }
        Ok(())
    }

    fn task_failed(&mut self, executor: usize, task: usize) -> Result<(), LiveError> {
        if task >= self.st.done.len()
            || self.st.done[task]
            || self.st.assigned_to[task] != Some(executor)
        {
            return Ok(()); // stale or duplicate report
        }
        self.st.assigned_to[task] = None;
        self.execs[executor].running = self.execs[executor].running.saturating_sub(1);
        self.execs[executor].failures_in_stage += 1;
        if self.execs[executor].failures_in_stage >= self.cfg.blacklist_after
            && !self.execs[executor].blacklisted
            && self.execs.iter().filter(|e| e.usable()).count() > 1
        {
            self.execs[executor].blacklisted = true;
            self.recorder
                .push(LiveEvent::Trace(TraceEvent::ExecutorBlacklisted {
                    executor,
                    at: self.recorder.now(),
                }));
            self.log.error(|| {
                format!(
                    "executor {executor} blacklisted after {} failures this stage",
                    self.execs[executor].failures_in_stage
                )
            });
        }
        self.record_failure(task, executor)
    }

    fn task_finished(&mut self, executor: usize, task: usize) {
        if task >= self.st.done.len()
            || self.st.done[task]
            || self.st.assigned_to[task] != Some(executor)
        {
            return; // duplicate or stale completion
        }
        self.st.done[task] = true;
        self.st.assigned_to[task] = None;
        self.st.remaining -= 1;
        self.execs[executor].running = self.execs[executor].running.saturating_sub(1);
        self.metrics.tasks_finished[executor].inc();
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::TaskFinished {
                task,
                attempt: self.st.failures[task],
                executor,
                at: self.recorder.now(),
            }));
        if self.st.remaining == 0 {
            self.finish_stage();
        }
    }

    fn finish_stage(&mut self) {
        let spec = &self.job.stages[self.stage_idx];
        self.recorder
            .push(LiveEvent::Trace(TraceEvent::StageFinished {
                stage: self.stage_idx,
                at: self.recorder.now(),
            }));
        self.log.info(|| {
            format!(
                "stage {} ({}) finished: {} attempts, {} failed",
                self.stage_idx, spec.name, self.st.attempts, self.st.failed_attempts
            )
        });
        self.stage_reports.push(LiveStageReport {
            name: spec.name.clone(),
            tasks: spec.tasks,
            attempts: self.st.attempts,
            failed_attempts: self.st.failed_attempts,
            duration_secs: self.st.started.elapsed().as_secs_f64(),
        });
        self.stage_idx += 1;
        if self.stage_idx == self.job.stages.len() {
            self.finished = true;
        } else {
            self.begin_stage();
        }
    }

    /// Sends `frame` to `executor`; `false` means the write half broke.
    fn send(&self, executor: usize, frame: &Frame) -> bool {
        match self.writers.lock().get_mut(&executor) {
            Some(w) => match w.send(frame) {
                Ok(bytes) => {
                    self.metrics.frames_sent.inc();
                    self.metrics.bytes_sent.add(bytes as u64);
                    self.recorder.push(LiveEvent::FrameSent {
                        executor,
                        kind: frame.kind_str(),
                        bytes,
                        at: self.recorder.now(),
                    });
                    true
                }
                Err(_) => false,
            },
            None => false,
        }
    }

    /// Best-effort send to every connected executor.
    fn broadcast(&self, frame: &Frame) {
        for (&executor, w) in self.writers.lock().iter_mut() {
            if let Ok(bytes) = w.send(frame) {
                self.metrics.frames_sent.inc();
                self.metrics.bytes_sent.add(bytes as u64);
                self.recorder.push(LiveEvent::FrameSent {
                    executor,
                    kind: frame.kind_str(),
                    bytes,
                    at: self.recorder.now(),
                });
            }
        }
    }

    fn registry(&self) -> Vec<SlotInfo> {
        self.execs
            .iter()
            .map(|e| SlotInfo {
                registered: e.registered,
                alive: e.alive,
                blacklisted: e.blacklisted,
                slots: e.slots,
                free: e.slots.saturating_sub(e.running),
            })
            .collect()
    }

    fn into_report(self) -> LiveReport {
        LiveReport {
            job: self.job.name.clone(),
            runtime_secs: self.started.elapsed().as_secs_f64(),
            registry: self.registry(),
            stages: self.stage_reports,
            decisions: self.decisions,
            lost_executors: self.lost,
            metrics: self.cfg.metrics.snapshot(),
        }
    }
}
