//! A leveled logger for the live runtime, writing through the event bus.
//!
//! `SAE_LOG=off|error|info|debug` (default `off`) controls what reaches
//! stderr. Every emitted line is *also* pushed into the cluster's
//! [`FlightRecorder`] as a [`LiveEvent::Log`], so log lines appear on the
//! merged Chrome timeline next to the protocol traffic they explain —
//! and a post-mortem flight-recorder dump carries the log context even
//! when stderr logging was off. Message rendering is lazy: a disabled
//! level with a disabled recorder costs one branch.

use std::sync::OnceLock;

use crate::recorder::{FlightRecorder, LiveEvent};

/// Log severity, ordered so `Error < Info < Debug` in verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Nothing is emitted.
    Off,
    /// Failures and lost executors only.
    Error,
    /// Lifecycle events: registration, stages, decisions.
    Info,
    /// Everything, including per-frame chatter.
    Debug,
}

impl LogLevel {
    /// The level's lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Off => "off",
            LogLevel::Error => "error",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }

    /// Parses an `SAE_LOG` value; unknown values fall back to `Off`.
    pub fn parse(value: &str) -> Self {
        match value.trim().to_ascii_lowercase().as_str() {
            "error" => LogLevel::Error,
            "info" => LogLevel::Info,
            "debug" => LogLevel::Debug,
            _ => LogLevel::Off,
        }
    }
}

/// The process-wide level from `SAE_LOG`, read once.
pub fn env_level() -> LogLevel {
    static LEVEL: OnceLock<LogLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        std::env::var("SAE_LOG")
            .map(|v| LogLevel::parse(&v))
            .unwrap_or(LogLevel::Off)
    })
}

/// A scoped logger: a level threshold, a component name, and the event
/// bus it mirrors into.
#[derive(Debug, Clone)]
pub struct Logger {
    level: LogLevel,
    scope: String,
    recorder: FlightRecorder,
}

impl Logger {
    /// A logger at the `SAE_LOG` level, mirroring into `recorder`.
    pub fn new(scope: impl Into<String>, recorder: FlightRecorder) -> Self {
        Self::with_level(scope, recorder, env_level())
    }

    /// A logger with an explicit threshold (tests, mostly).
    pub fn with_level(scope: impl Into<String>, recorder: FlightRecorder, level: LogLevel) -> Self {
        Self {
            level,
            scope: scope.into(),
            recorder,
        }
    }

    /// Whether `level` would print to stderr.
    pub fn prints(&self, level: LogLevel) -> bool {
        level != LogLevel::Off && level <= self.level
    }

    /// Logs lazily: `msg` runs only if the line goes to stderr or the
    /// flight recorder.
    pub fn log(&self, level: LogLevel, msg: impl FnOnce() -> String) {
        let prints = self.prints(level);
        if !prints && !self.recorder.enabled() {
            return;
        }
        let message = msg();
        if prints {
            eprintln!("[sae-live {:>5}] {}: {message}", level.as_str(), self.scope);
        }
        self.recorder.push(LiveEvent::Log {
            level,
            scope: self.scope.clone(),
            message,
            at: self.recorder.now(),
        });
    }

    /// Logs at [`LogLevel::Error`].
    pub fn error(&self, msg: impl FnOnce() -> String) {
        self.log(LogLevel::Error, msg);
    }

    /// Logs at [`LogLevel::Info`].
    pub fn info(&self, msg: impl FnOnce() -> String) {
        self.log(LogLevel::Info, msg);
    }

    /// Logs at [`LogLevel::Debug`].
    pub fn debug(&self, msg: impl FnOnce() -> String) {
        self.log(LogLevel::Debug, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_every_documented_value() {
        assert_eq!(LogLevel::parse("off"), LogLevel::Off);
        assert_eq!(LogLevel::parse("ERROR"), LogLevel::Error);
        assert_eq!(LogLevel::parse(" info "), LogLevel::Info);
        assert_eq!(LogLevel::parse("Debug"), LogLevel::Debug);
        assert_eq!(LogLevel::parse("verbose"), LogLevel::Off);
        assert_eq!(LogLevel::parse(""), LogLevel::Off);
    }

    #[test]
    fn threshold_gates_stderr_by_severity() {
        let rec = FlightRecorder::disabled();
        let log = Logger::with_level("t", rec, LogLevel::Info);
        assert!(log.prints(LogLevel::Error));
        assert!(log.prints(LogLevel::Info));
        assert!(!log.prints(LogLevel::Debug));
        let off = Logger::with_level("t", FlightRecorder::disabled(), LogLevel::Off);
        assert!(!off.prints(LogLevel::Error));
    }

    #[test]
    fn lines_flow_through_the_event_bus_even_when_stderr_is_off() {
        let rec = FlightRecorder::new(8);
        let log = Logger::with_level("driver", rec.clone(), LogLevel::Off);
        log.error(|| "boom".into());
        let events = rec.snapshot();
        assert_eq!(events.len(), 1);
        match &events[0] {
            LiveEvent::Log {
                level,
                scope,
                message,
                ..
            } => {
                assert_eq!(*level, LogLevel::Error);
                assert_eq!(scope, "driver");
                assert_eq!(message, "boom");
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn fully_disabled_logger_never_renders_the_message() {
        let log = Logger::with_level("t", FlightRecorder::disabled(), LogLevel::Off);
        log.debug(|| panic!("message must not be rendered"));
    }
}
