//! Job descriptions for the live runtime.
//!
//! A [`LiveJob`] is a linear sequence of stages, each of which runs real
//! tasks — generating, spilling, reading and sorting Terasort records on
//! actual disk. Stage structure is deliberately the same shape the
//! simulated engine consumes (tasks per stage, stage boundaries trigger
//! pool resets) so decision traces from the two runtimes line up.

use sae_dag::codec::FrameError;

/// What one stage's tasks actually do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveStageKind {
    /// Generate `records_per_task` Terasort records and spill them to disk
    /// (write-heavy, I/O-bound — the map side).
    Spill,
    /// Read the spill back, sort it, and write the sorted run
    /// (read-then-CPU-then-write — the reduce side).
    Sort,
}

impl LiveStageKind {
    /// Wire discriminant for [`crate::wire::Frame::StageStart`].
    pub(crate) fn to_wire(self) -> u64 {
        match self {
            LiveStageKind::Spill => 0,
            LiveStageKind::Sort => 1,
        }
    }

    /// Inverse of [`LiveStageKind::to_wire`]; undefined discriminants are
    /// a framing error, not a panic.
    pub(crate) fn from_wire(v: u64) -> Result<Self, FrameError> {
        match v {
            0 => Ok(LiveStageKind::Spill),
            1 => Ok(LiveStageKind::Sort),
            other => Err(FrameError::FieldOverflow(other)),
        }
    }
}

/// One stage of a live job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveStageSpec {
    /// Human-readable stage name for reports.
    pub name: String,
    /// What the stage's tasks do.
    pub kind: LiveStageKind,
    /// Number of tasks.
    pub tasks: usize,
    /// Records each task generates (Spill) or sorts (Sort).
    pub records_per_task: usize,
    /// Base seed; each task derives its own stream from it.
    pub seed: u64,
}

/// A linear multi-stage job for the live cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveJob {
    /// Job name for reports.
    pub name: String,
    /// Stages, run strictly in order with a barrier between them.
    pub stages: Vec<LiveStageSpec>,
}

/// Builds the live Terasort job: a spill (map) stage that generates and
/// writes `tasks * records_per_task` records, then a sort (reduce) stage
/// that reads each partition back, sorts it and writes the sorted run.
///
/// # Examples
///
/// ```
/// let job = sae_live::terasort(8, 1000, 42);
/// assert_eq!(job.stages.len(), 2);
/// assert_eq!(job.stages[0].tasks, 8);
/// ```
pub fn terasort(tasks: usize, records_per_task: usize, seed: u64) -> LiveJob {
    LiveJob {
        name: format!("terasort-{tasks}x{records_per_task}"),
        stages: vec![
            LiveStageSpec {
                name: "teragen+spill".into(),
                kind: LiveStageKind::Spill,
                tasks,
                records_per_task,
                seed,
            },
            LiveStageSpec {
                name: "sort".into(),
                kind: LiveStageKind::Sort,
                tasks,
                records_per_task,
                seed,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terasort_builds_two_matching_stages() {
        let job = terasort(16, 500, 9);
        assert_eq!(job.stages.len(), 2);
        assert_eq!(job.stages[0].kind, LiveStageKind::Spill);
        assert_eq!(job.stages[1].kind, LiveStageKind::Sort);
        assert!(job
            .stages
            .iter()
            .all(|s| s.tasks == 16 && s.records_per_task == 500 && s.seed == 9));
    }

    #[test]
    fn stage_kind_wire_round_trip() {
        for kind in [LiveStageKind::Spill, LiveStageKind::Sort] {
            assert_eq!(LiveStageKind::from_wire(kind.to_wire()).unwrap(), kind);
        }
        assert!(LiveStageKind::from_wire(2).is_err());
    }
}
