//! The multi-tenant job server daemon.
//!
//! Binds the executor wire port and the HTTP control port, optionally
//! launches an in-process executor fleet, and serves jobs until
//! SIGINT/SIGTERM. On shutdown it drains running jobs (bounded by
//! `--drain-ms`), then writes each job's journal and a summary report to
//! `--artifacts` if given.
//!
//! ```text
//! sae-server --fleet 4 &
//! curl -s localhost:7070/jobs -d '{"tenant":"alice","tasks":8,"records_per_task":20000}'
//! curl -s localhost:7070/jobs/1
//! curl -s localhost:7070/metrics | grep server_jobs
//! ```
//!
//! With `--fleet 0` no executors are launched; point external
//! `sae-executor` processes at the printed wire address instead.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use sae_live::executor::LiveExecutorConfig;
use sae_live::server::{JobServer, ServerConfig};
use sae_live::{FlightRecorder, LiveExecutor, TempDir};

struct Args {
    http: String,
    wire: String,
    fleet: usize,
    executors: usize,
    max_active: usize,
    max_queued: usize,
    drain: Duration,
    spill: Option<PathBuf>,
    artifacts: Option<PathBuf>,
}

const USAGE: &str = "usage: sae-server [--http ADDR] [--wire ADDR] [--fleet N] \
    [--executors N] [--max-active N] [--max-queued N] [--drain-ms N] \
    [--spill DIR] [--artifacts DIR]";

fn parse_args() -> Result<Args, String> {
    let mut http = "127.0.0.1:7070".to_string();
    let mut wire = "127.0.0.1:0".to_string();
    let mut fleet = 2usize;
    let mut executors = None;
    let mut max_active = 8usize;
    let mut max_queued = 16usize;
    let mut drain = Duration::from_secs(5);
    let mut spill = None;
    let mut artifacts = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--http" => http = value("--http")?,
            "--wire" => wire = value("--wire")?,
            "--fleet" => fleet = parse_num(&value("--fleet")?, "--fleet")?,
            "--executors" => executors = Some(parse_num(&value("--executors")?, "--executors")?),
            "--max-active" => max_active = parse_num(&value("--max-active")?, "--max-active")?,
            "--max-queued" => max_queued = parse_num(&value("--max-queued")?, "--max-queued")?,
            "--drain-ms" => {
                drain =
                    Duration::from_millis(parse_num(&value("--drain-ms")?, "--drain-ms")? as u64)
            }
            "--spill" => spill = Some(PathBuf::from(value("--spill")?)),
            "--artifacts" => artifacts = Some(PathBuf::from(value("--artifacts")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        http,
        wire,
        // The fleet-size flag doubles as the executor-id space unless
        // --executors widens it for external joiners.
        executors: executors.unwrap_or(fleet.max(1)),
        fleet,
        max_active,
        max_queued,
        drain,
        spill,
        artifacts,
    })
}

fn parse_num(s: &str, flag: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("{flag} {s}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    sae_poll::signal::install();

    let cfg = ServerConfig {
        executors: args.executors,
        max_active: args.max_active,
        max_queued: args.max_queued,
        shutdown_drain: args.drain,
        recorder: FlightRecorder::new(65_536),
        ..ServerConfig::default()
    };

    let server = match JobServer::bind_to(cfg, args.wire.as_str(), args.http.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sae-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (wire_addr, http_addr) = match (server.wire_addr(), server.http_addr()) {
        (Ok(w), Ok(h)) => (w, h),
        _ => {
            eprintln!("sae-server: listeners lost their addresses");
            return ExitCode::FAILURE;
        }
    };
    println!("sae-server listening http={http_addr} wire={wire_addr}");

    // The in-process fleet: one executor thread per id, each with its own
    // spill namespace under the spill root.
    let spill_root = match &args.spill {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("sae-server: --spill {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            None // caller-owned: not cleaned up on exit
        }
        None => match TempDir::new("sae-server-spill") {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("sae-server: temp spill dir: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let spill_base = args
        .spill
        .clone()
        .unwrap_or_else(|| spill_root.as_ref().expect("temp dir exists").path().into());
    let fleet: Vec<LiveExecutor> = (0..args.fleet)
        .map(|id| {
            let dir = spill_base.join(format!("exec-{id}"));
            let _ = std::fs::create_dir_all(&dir);
            LiveExecutor::launch(wire_addr, LiveExecutorConfig::new(id, dir))
        })
        .collect();

    let report = match server.serve() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sae-server: serve loop failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for exec in fleet {
        let _ = exec.join();
    }

    // Artifact flush: one journal file per job plus a summary line each.
    if let Some(dir) = &args.artifacts {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("sae-server: --artifacts {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let mut summary = String::new();
        for job in &report.jobs {
            let path = dir.join(format!("job-{}.journal.jsonl", job.id));
            if let Err(e) = std::fs::write(&path, &job.journal) {
                eprintln!("sae-server: journal write {}: {e}", path.display());
            }
            summary.push_str(&format!(
                "{{\"job\":{},\"name\":\"{}\",\"tenant\":\"{}\",\"status\":\"{}\",\
                 \"attempts\":{},\"runtime_secs\":{:.6}}}\n",
                job.id,
                job.name,
                job.tenant,
                job.status.as_str(),
                job.attempts,
                job.runtime_secs
            ));
        }
        let _ = std::fs::write(dir.join("jobs.jsonl"), summary);
    }
    println!(
        "sae-server: drained with {} jobs on the books",
        report.jobs.len()
    );
    ExitCode::SUCCESS
}
