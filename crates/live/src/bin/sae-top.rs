//! `sae-top`: a live ANSI cluster dashboard over `GET /events`.
//!
//! Connects to a running `sae-server`, consumes the cluster-wide SSE
//! stream ([`sae_net::sse`] does the chunked-transfer and frame parsing),
//! folds the events into a model, and redraws a terminal table on every
//! update batch:
//!
//! * per-tenant submitted/completed/failed counts and queue depth,
//! * per-executor pool size and latest congestion index ζ,
//! * recorder drops (ring + subscriber) and fenced frames,
//! * the most recent job lifecycle transitions.
//!
//! ```text
//! sae-top --http 127.0.0.1:7070
//! ```
//!
//! `--frames N` exits after N SSE frames and `--no-ansi` emits plain
//! append-only snapshots — the two switches CI smoke tests use.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use sae_live::server::json::{self, Value};
use sae_net::sse::{ChunkedDecoder, SseFrame, SseParser};

struct Args {
    http: String,
    frames: Option<u64>,
    ansi: bool,
}

const USAGE: &str = "usage: sae-top [--http ADDR] [--frames N] [--no-ansi]";

fn parse_args() -> Result<Args, String> {
    let mut http = "127.0.0.1:7070".to_string();
    let mut frames = None;
    let mut ansi = true;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--http" => http = value("--http")?,
            "--frames" => {
                frames = Some(
                    value("--frames")?
                        .parse()
                        .map_err(|e| format!("--frames: {e}"))?,
                )
            }
            "--no-ansi" => ansi = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Args { http, frames, ansi })
}

/// What the dashboard knows, folded from the event stream.
#[derive(Default)]
struct Model {
    /// Flat metric name -> value, updated by `metrics` delta frames.
    metrics: BTreeMap<String, f64>,
    /// executor -> (pool size, latest ζ), from `zeta` frames.
    executors: BTreeMap<u64, (u64, f64)>,
    /// job -> (tenant, status), from `status` frames.
    jobs: BTreeMap<u64, (String, String)>,
    /// Trailing journal/lifecycle lines for the footer.
    recent: Vec<String>,
    /// SSE frames consumed.
    frames: u64,
    /// Completed task spans seen.
    spans: u64,
}

impl Model {
    fn apply(&mut self, frame: &SseFrame) {
        self.frames += 1;
        let Ok(doc) = json::parse(&frame.data) else {
            return;
        };
        match frame.event.as_deref() {
            Some("metrics") => {
                if let Value::Obj(map) = &doc {
                    for (k, v) in map {
                        if let Some(n) = v.as_f64() {
                            self.metrics.insert(k.clone(), n);
                        }
                    }
                }
            }
            Some("zeta") => {
                if let (Some(e), Some(threads), Some(zeta)) = (
                    doc.get("executor").and_then(Value::as_u64),
                    doc.get("threads").and_then(Value::as_u64),
                    doc.get("zeta").and_then(Value::as_f64),
                ) {
                    self.executors.insert(e, (threads, zeta));
                }
            }
            Some("status") => {
                if let (Some(job), Some(tenant), Some(status)) = (
                    doc.get("job").and_then(Value::as_u64),
                    doc.get("tenant").and_then(Value::as_str),
                    doc.get("status").and_then(Value::as_str),
                ) {
                    self.jobs
                        .insert(job, (tenant.to_string(), status.to_string()));
                    self.note(format!("job {job} [{tenant}] -> {status}"));
                }
            }
            Some("span") => {
                self.spans += 1;
            }
            Some("journal") => {
                if let (Some(job), Some(rec)) =
                    (doc.get("job").and_then(Value::as_u64), doc.get("record"))
                {
                    if let Some(ev) = rec.get("event").and_then(Value::as_str) {
                        if ev != "task" {
                            self.note(format!("job {job}: {ev}"));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn note(&mut self, line: String) {
        self.recent.push(line);
        if self.recent.len() > 8 {
            self.recent.remove(0);
        }
    }

    fn metric(&self, name: &str) -> f64 {
        self.metrics.get(name).copied().unwrap_or(0.0)
    }

    /// Tenant -> (submitted, completed, failed) from labelled counters.
    fn tenants(&self) -> BTreeMap<String, [f64; 3]> {
        let mut out: BTreeMap<String, [f64; 3]> = BTreeMap::new();
        for (name, v) in &self.metrics {
            let slot = if name.starts_with("server.jobs_submitted{tenant=") {
                0
            } else if name.starts_with("server.jobs_completed{tenant=") {
                1
            } else if name.starts_with("server.jobs_failed{tenant=") {
                2
            } else {
                continue;
            };
            let Some(tenant) = name
                .split("tenant=\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
            else {
                continue;
            };
            out.entry(tenant.to_string()).or_default()[slot] = *v;
        }
        out
    }

    fn render(&self, ansi: bool) -> String {
        let mut s = String::new();
        if ansi {
            // Clear screen, home cursor.
            s.push_str("\x1b[2J\x1b[H");
        }
        let bold = |t: &str| {
            if ansi {
                format!("\x1b[1m{t}\x1b[0m")
            } else {
                t.to_string()
            }
        };
        s.push_str(&bold("sae-top — live cluster telemetry\n"));
        s.push_str(&format!(
            "frames {}  spans {}  jobs running {}  queued {}  fenced {}  drops ring {} / sub {}\n\n",
            self.frames,
            self.spans,
            self.metric("server.jobs_running"),
            self.metric("server.jobs_queued"),
            self.metric("server.frames_fenced"),
            self.metric("live.recorder.dropped_total{kind=\"ring\"}"),
            self.metric("live.recorder.dropped_total{kind=\"subscriber\"}"),
        ));
        s.push_str(&bold("  tenant        submitted completed    failed\n"));
        for (tenant, [sub, comp, fail]) in self.tenants() {
            s.push_str(&format!("  {tenant:<12} {sub:>9} {comp:>9} {fail:>9}\n"));
        }
        s.push_str(&bold("\n  executor      pool          zeta\n"));
        for (e, (threads, zeta)) in &self.executors {
            s.push_str(&format!("  {e:<12} {threads:>5} {zeta:>13.4}\n"));
        }
        if !self.recent.is_empty() {
            s.push_str(&bold("\n  recent\n"));
            for line in &self.recent {
                s.push_str(&format!("  {line}\n"));
            }
        }
        s
    }
}

fn run(args: &Args) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(&args.http).map_err(|e| format!("connect {}: {e}", args.http))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .map_err(|e| format!("socket: {e}"))?;
    let req = format!(
        "GET /events HTTP/1.1\r\nHost: {}\r\nAccept: text/event-stream\r\n\r\n",
        args.http
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("request: {e}"))?;

    // Read until the response head is complete, then hand the body bytes
    // to the chunked decoder and the SSE parser.
    let mut head_buf = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let mut decoder = ChunkedDecoder::new();
    loop {
        let Some(n) = read_some(&mut stream, &mut buf)? else {
            continue;
        };
        if n == 0 {
            return Err("server closed the connection before the head".into());
        }
        head_buf.extend_from_slice(&buf[..n]);
        let Some(head_end) = head_buf.windows(4).position(|w| w == b"\r\n\r\n") else {
            continue;
        };
        let head = String::from_utf8_lossy(&head_buf[..head_end]);
        let status = head
            .lines()
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .unwrap_or("");
        if status != "200" {
            return Err(format!("server answered status {status}"));
        }
        decoder.extend(&head_buf[head_end + 4..]);
        break;
    }

    let mut parser = SseParser::new();
    let mut model = Model::default();
    let mut dirty = true;
    loop {
        while let Some(chunk) = decoder
            .next_chunk()
            .map_err(|e| format!("chunked body: {e:?}"))?
        {
            parser.extend(&chunk);
        }
        while let Some(frame) = parser.next_frame() {
            model.apply(&frame);
            dirty = true;
            if args.frames.is_some_and(|n| model.frames >= n) {
                print!("{}", model.render(args.ansi));
                return Ok(());
            }
        }
        if dirty {
            print!("{}", model.render(args.ansi));
            let _ = std::io::stdout().flush();
            dirty = false;
        }
        if decoder.finished() {
            return Ok(());
        }
        match read_some(&mut stream, &mut buf)? {
            Some(0) => return Err("server closed the stream".into()),
            Some(n) => decoder.extend(&buf[..n]),
            None => {} // idle tick: nothing new, keep the display live
        }
    }
}

/// One socket read; `None` is a read timeout, `Some(0)` end of stream.
fn read_some(stream: &mut TcpStream, buf: &mut [u8]) -> Result<Option<usize>, String> {
    match stream.read(buf) {
        Ok(n) => Ok(Some(n)),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::Interrupted =>
        {
            Ok(None)
        }
        Err(e) => Err(format!("read: {e}")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sae-top: {msg}");
            ExitCode::FAILURE
        }
    }
}
