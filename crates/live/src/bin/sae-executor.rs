//! Standalone executor process for the live runtime's multi-process
//! fleet.
//!
//! [`LiveCluster`](sae_live::LiveCluster) with
//! `ClusterConfig::process_executors` spawns one of these per executor;
//! each child connects to the driver (or the nemesis proxy standing in
//! front of it), registers, and serves the adaptive-executor protocol
//! through [`sae_live::executor::run_foreground`] — exactly the loop the
//! in-thread fast path runs, now behind a real process boundary.
//!
//! The parent cannot reach across that boundary to flip kill switches,
//! so chaos is delivered as arguments: `--kill-after N` arms the
//! deterministic silent-death switch, and repeated
//! `--crash-at-ms T --crash-downtime-ms D` pairs schedule wall-clock
//! crashes (a watchdog thread flips the kill switch at `T`, and the
//! first crash's downtime seeds the respawn policy unless one was given
//! explicitly). The decision journal — the child's half of the shared
//! observability plane — is written as JSONL to `--journal-out` on exit
//! for the parent to merge back.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sae_core::MapeConfig;
use sae_live::executor::{run_foreground, LiveExecutorConfig, RespawnConfig};

/// Everything the command line can configure.
struct Args {
    driver: SocketAddr,
    id: usize,
    spill: PathBuf,
    c_min: usize,
    c_max: usize,
    heartbeat: Duration,
    connect_timeout: Duration,
    kill_after: Option<usize>,
    respawn_delay: Option<Duration>,
    respawn_max: usize,
    respawn_seed: Option<u64>,
    crashes: Vec<(Duration, Duration)>,
    journal_out: Option<PathBuf>,
}

const USAGE: &str = "usage: sae-executor --driver ADDR --id N --spill DIR \
    [--c-min N] [--c-max N] [--heartbeat-ms N] [--connect-timeout-ms N] \
    [--kill-after N] [--respawn-delay-ms N] [--respawn-max N] [--respawn-seed N] \
    [--crash-at-ms T --crash-downtime-ms D]... [--journal-out PATH]";

fn parse_args() -> Result<Args, String> {
    let mut driver = None;
    let mut id = None;
    let mut spill = None;
    let mut c_min = 2usize;
    let mut c_max = 8usize;
    let mut heartbeat = Duration::from_millis(100);
    let mut connect_timeout = Duration::from_secs(10);
    let mut kill_after = None;
    let mut respawn_delay = None;
    let mut respawn_max = 3usize;
    let mut respawn_seed = None;
    let mut crash_ats: Vec<Duration> = Vec::new();
    let mut crash_downtimes: Vec<Duration> = Vec::new();
    let mut journal_out = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--driver" => {
                let v = value("--driver")?;
                driver = Some(v.parse().map_err(|e| format!("--driver {v}: {e}"))?);
            }
            "--id" => id = Some(parse_num(&value("--id")?, "--id")? as usize),
            "--spill" => spill = Some(PathBuf::from(value("--spill")?)),
            "--c-min" => c_min = parse_num(&value("--c-min")?, "--c-min")? as usize,
            "--c-max" => c_max = parse_num(&value("--c-max")?, "--c-max")? as usize,
            "--heartbeat-ms" => heartbeat = parse_ms(&value("--heartbeat-ms")?, "--heartbeat-ms")?,
            "--connect-timeout-ms" => {
                connect_timeout = parse_ms(&value("--connect-timeout-ms")?, "--connect-timeout-ms")?
            }
            "--kill-after" => {
                kill_after = Some(parse_num(&value("--kill-after")?, "--kill-after")? as usize)
            }
            "--respawn-delay-ms" => {
                respawn_delay = Some(parse_ms(
                    &value("--respawn-delay-ms")?,
                    "--respawn-delay-ms",
                )?)
            }
            "--respawn-max" => {
                respawn_max = parse_num(&value("--respawn-max")?, "--respawn-max")? as usize
            }
            "--respawn-seed" => {
                respawn_seed = Some(parse_num(&value("--respawn-seed")?, "--respawn-seed")?)
            }
            "--crash-at-ms" => crash_ats.push(parse_ms(&value("--crash-at-ms")?, "--crash-at-ms")?),
            "--crash-downtime-ms" => {
                crash_downtimes.push(parse_ms(
                    &value("--crash-downtime-ms")?,
                    "--crash-downtime-ms",
                )?);
            }
            "--journal-out" => journal_out = Some(PathBuf::from(value("--journal-out")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if crash_ats.len() != crash_downtimes.len() {
        return Err("--crash-at-ms and --crash-downtime-ms must come in pairs".to_string());
    }
    let mut crashes: Vec<(Duration, Duration)> =
        crash_ats.into_iter().zip(crash_downtimes).collect();
    crashes.sort_by_key(|&(at, _)| at);
    Ok(Args {
        driver: driver.ok_or(format!("--driver is required\n{USAGE}"))?,
        id: id.ok_or(format!("--id is required\n{USAGE}"))?,
        spill: spill.ok_or(format!("--spill is required\n{USAGE}"))?,
        c_min,
        c_max,
        heartbeat,
        connect_timeout,
        kill_after,
        respawn_delay,
        respawn_max,
        respawn_seed,
        crashes,
        journal_out,
    })
}

fn parse_num(s: &str, flag: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("{flag} {s}: {e}"))
}

fn parse_ms(s: &str, flag: &str) -> Result<Duration, String> {
    Ok(Duration::from_millis(parse_num(s, flag)?))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = LiveExecutorConfig::new(args.id, args.spill.clone());
    cfg.mape = MapeConfig::new(args.c_min, args.c_max);
    cfg.heartbeat_interval = args.heartbeat;
    cfg.connect_timeout = args.connect_timeout;
    cfg.kill_after_tasks = args.kill_after;
    // Respawn policy: explicit flags win; otherwise the first scheduled
    // crash derives one from its downtime, mirroring the in-thread
    // cluster's `respawn_for`.
    let derived_delay = args
        .respawn_delay
        .or_else(|| args.crashes.first().map(|&(_, downtime)| downtime));
    cfg.respawn = derived_delay.map(|delay| {
        let mut r = RespawnConfig::new(delay);
        r.max_respawns = args.respawn_max;
        if let Some(seed) = args.respawn_seed {
            r.seed = seed;
        }
        r
    });

    let kill = Arc::new(AtomicBool::new(false));
    // The crash watchdog: sleeps down the schedule, flipping the kill
    // switch at each crash time — the process-boundary stand-in for the
    // parent cluster's chaos agent.
    if !args.crashes.is_empty() {
        let kill = Arc::clone(&kill);
        let crashes = args.crashes.clone();
        let start = std::time::Instant::now();
        std::thread::spawn(move || {
            for (at, _) in crashes {
                if let Some(wait) = at.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                kill.store(true, Ordering::Relaxed);
            }
        });
    }

    let journal = cfg.journal.clone();
    let result = run_foreground(args.driver, cfg, kill);
    if let Some(path) = &args.journal_out {
        if let Err(e) = std::fs::write(path, journal.to_jsonl()) {
            eprintln!("sae-executor {}: journal write failed: {e}", args.id);
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sae-executor {}: {e}", args.id);
            ExitCode::FAILURE
        }
    }
}
