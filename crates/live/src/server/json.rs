//! A minimal JSON reader for `POST /jobs` bodies.
//!
//! The control API accepts small, flat documents (a job spec is a handful
//! of scalars and one stage array), so this is a straightforward
//! recursive-descent parser over the full grammar — objects, arrays,
//! strings with the standard escapes, numbers, booleans, null — with a
//! depth cap instead of a streaming interface. The workspace vendors no
//! JSON crate; everything that *writes* JSON here does so with `format!`,
//! and this module is the matching read side.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Duplicate keys keep the last value.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Nesting deeper than this is rejected — far beyond any job spec, and it
/// bounds parser recursion against adversarial bodies.
const MAX_DEPTH: usize = 32;

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, &'static str> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err("trailing bytes after the document");
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, &'static str> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep");
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input"),
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(_) => Err("unexpected character"),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, &'static str> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err("malformed literal")
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, &'static str> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or("malformed number")
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, &'static str> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("malformed \\u escape")?;
                        // Surrogates are rejected rather than paired: job
                        // specs have no business encoding astral-plane
                        // characters through UTF-16 escapes.
                        out.push(char::from_u32(hex).ok_or("surrogate in \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err("unknown escape"),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("control byte in string"),
            Some(_) => {
                // Copy one UTF-8 scalar (already validated: input is &str).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, &'static str> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err("expected ',' or ']'"),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, &'static str> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err("expected a string key");
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err("expected ':'");
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err("expected ',' or '}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_spec_shape() {
        let v = parse(
            r#"{"name":"sort-a","tenant":"alice","weight":4,
               "stages":[{"kind":"spill","tasks":8,"records_per_task":1000,"seed":42}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("tenant").and_then(Value::as_str), Some("alice"));
        assert_eq!(v.get("weight").and_then(Value::as_u64), Some(4));
        let stages = v.get("stages").and_then(Value::as_arr).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].get("tasks").and_then(Value::as_u64), Some(8));
    }

    #[test]
    fn parses_scalars_and_escapes() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(
            parse(r#""a\tb\u0041\"""#).unwrap(),
            Value::Str("a\tbA\"".into())
        );
        assert_eq!(parse("[1,[2],[]]").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\x\"",
            "{\"a\" 1}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&deep).is_err(), "depth cap missing");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }
}
