//! `sae-server`: a multi-tenant job server over the live runtime.
//!
//! The single-job [`Driver`](crate::Driver) runs one [`LiveJob`] and
//! exits. This module generalises its protocol state machine into a
//! long-running server: clients submit jobs over a hand-rolled HTTP/1.1
//! control API ([`sae_net::http`]), a shared executor fleet serves every
//! job's tasks concurrently, and a stride scheduler ([`sched::FairShare`])
//! splits the fleet's slots across tenants by weight.
//!
//! One reactor thread owns every socket — the executor wire listener, the
//! HTTP listener, and all accepted connections — on the same
//! [`sae_poll::Poller`] event loop the single-job reactor uses. Per
//! wakeup it drains readiness, decodes frames / HTTP requests, runs due
//! timers, and dispatches tasks to free slots.
//!
//! # Control API
//!
//! | Route                  | Meaning                                    |
//! |------------------------|--------------------------------------------|
//! | `POST /jobs`           | submit a job spec (JSON), `201` + id       |
//! | `GET /jobs`            | list all jobs with status                  |
//! | `GET /jobs/:id`        | one job's live status                      |
//! | `DELETE /jobs/:id`     | cancel (`409` once terminal)               |
//! | `GET /jobs/:id/report` | per-stage report (attempts, durations)     |
//! | `GET /jobs/:id/journal`| the job's deterministic lifecycle journal  |
//! | `GET /jobs/:id/trace`  | the server's Chrome-trace timeline         |
//! | `GET /jobs/:id/events` | SSE stream of the job's journal (resumable)|
//! | `GET /events`          | cluster-wide SSE stream (journal, ζ, spans)|
//! | `GET /metrics`         | Prometheus text, per-tenant labels         |
//! | `GET /healthz`         | liveness + draining flag                   |
//!
//! # Streaming telemetry
//!
//! The two `/events` routes answer with `Transfer-Encoding: chunked`
//! server-sent events ([`sae_net::sse`]). A cluster stream subscribes to
//! the shared [`FlightRecorder`] fan-out and forwards journal records,
//! job lifecycle transitions, task spans, ζ samples, and periodic metric
//! deltas as JSON SSE frames. A per-job stream follows that job's journal
//! line by line — the line number is the SSE event id, so a client that
//! reconnects with `Last-Event-ID` resumes exactly where it left off.
//! Stream output rides the same reactor write buffers as everything else
//! and stops being refilled past [`HIGH_WATER`], so a stalled consumer
//! loses events (counted per subscriber) but can never stall the serve
//! loop or change a journal byte.
//!
//! # Admission control
//!
//! At most [`ServerConfig::max_active`] jobs run concurrently; beyond
//! that, submissions queue FIFO up to [`ServerConfig::max_queued`] deep.
//! A full queue answers `429 Too Many Requests`; a draining server (after
//! SIGINT/SIGTERM or a programmatic stop) answers `503 Service
//! Unavailable`. Draining stops admission, cancels queued jobs, gives
//! running jobs up to [`ServerConfig::shutdown_drain`] to finish, then
//! broadcasts `Shutdown` to the fleet and returns a [`ServerReport`].
//!
//! # Fairness and accounting
//!
//! Every task dispatch charges the owning job `STRIDE1 / weight` pass
//! points; free slots go to the runnable job with the lowest pass. Slot
//! accounting is exact: each `AssignJobTask` is booked in an in-flight
//! table keyed `(job, task)` and freed only by the matching
//! `JobTaskOutcome` (executors report outcomes even for attempts whose
//! job was cancelled before they started) or by the executor being
//! declared lost. Frames from superseded executor incarnations are fenced
//! by the same [`EpochRegistry`] the single-job driver uses.
//!
//! Each job keeps a **journal**: JSONL lifecycle lines with no wall-clock
//! times, no executor placement and no server-assigned ids, so two
//! fault-free runs of the same submission schedule produce byte-identical
//! journals — the determinism the `jobserver` bench asserts.

pub mod json;
pub mod sched;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sae_dag::sched::PendingQueue;
use sae_dag::{Message, TraceEvent};
use sae_metrics::{
    render_prometheus, Counter, Gauge, MetricRegistry, RegistrySnapshot, EXPOSITION_CONTENT_TYPE,
};
use sae_net::http::{self, Limits, Method, Request, RequestParser, Response};
use sae_net::sse::{SseFrame, StreamEncoder};
use sae_poll::{Event, Interest, Poller, TimerWheel};

use crate::epochs::{Admission, EpochRegistry};
use crate::job::{LiveJob, LiveStageKind, LiveStageSpec};
use crate::log::Logger;
use crate::recorder::{FlightRecorder, LiveEvent, Subscription};
use crate::wire::{Frame, FrameCursor};

use json::Value;
use sched::FairShare;

/// Poller token of the executor wire listener.
const WIRE_LISTENER: u64 = 0;
/// Poller token of the HTTP control listener.
const HTTP_LISTENER: u64 = 1;
/// Connections use `slot + CONN_BASE` as their token.
const CONN_BASE: u64 = 2;
/// Timer-wheel payload of the periodic sweep.
const TIMER_TICK: u64 = 0;
/// Bytes one socket read may pull in per call.
const READ_CHUNK: usize = 16 * 1024;
/// Executor write-queue depth that masks it from new assignments.
const HIGH_WATER: usize = 64 * 1024;
/// Streaming connections coalesce writes: buffered SSE frames are pushed
/// to the socket on the periodic tick, or as soon as this many bytes are
/// queued — one wakeup per batch for every subscriber instead of one per
/// event, which is what keeps 8 idle dashboards off the data plane's
/// critical path.
const STREAM_FLUSH: usize = 8 * 1024;
/// Executor write-queue depth that declares the connection broken.
const HARD_CAP: usize = 4 * 1024 * 1024;
/// Bound on flushing queued frames (the `Shutdown` broadcast above all)
/// after the serve loop exits.
const FINAL_FLUSH: Duration = Duration::from_millis(500);
/// Recorder fan-out queue depth behind one cluster `/events` stream.
const EVENT_SUB_CAPACITY: usize = 1024;

/// Job-server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor ids the fleet may register with (`0..executors`).
    pub executors: usize,
    /// Jobs allowed to run concurrently; beyond this submissions queue.
    pub max_active: usize,
    /// Queued (admitted, not yet started) jobs beyond `max_active`;
    /// past this depth submissions are rejected with `429`.
    pub max_queued: usize,
    /// A task failing this many attempts fails its job.
    pub max_task_attempts: usize,
    /// Executor silence longer than this declares it lost.
    pub heartbeat_timeout: Duration,
    /// Period of the heartbeat/drain sweep timer.
    pub check_interval: Duration,
    /// On shutdown, how long running jobs may drain before the server
    /// cancels them and exits.
    pub shutdown_drain: Duration,
    /// HTTP parser limits (head and body size caps).
    pub limits: Limits,
    /// Shared flight recorder (served verbatim by `GET /jobs/:id/trace`).
    pub recorder: FlightRecorder,
    /// Shared metric registry (served by `GET /metrics`).
    pub metrics: MetricRegistry,
    /// Programmatic stop: setting this true drains the server exactly
    /// like SIGINT/SIGTERM — the path tests use.
    pub stop: Arc<AtomicBool>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            executors: 2,
            max_active: 8,
            max_queued: 16,
            max_task_attempts: 4,
            heartbeat_timeout: Duration::from_millis(800),
            check_interval: Duration::from_millis(50),
            shutdown_drain: Duration::from_secs(2),
            limits: Limits::default(),
            recorder: FlightRecorder::disabled(),
            metrics: MetricRegistry::new(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for an active slot.
    Queued,
    /// Stages in progress.
    Running,
    /// Every stage finished.
    Completed,
    /// A task exceeded its attempt budget.
    Failed,
    /// Cancelled by `DELETE /jobs/:id` or server drain.
    Cancelled,
}

impl JobStatus {
    /// The status as its API string.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// One finished job as the final [`ServerReport`] records it.
#[derive(Debug, Clone)]
pub struct JobSummary {
    /// Server-assigned job id.
    pub id: u64,
    /// Job name from the spec.
    pub name: String,
    /// Submitting tenant.
    pub tenant: String,
    /// Fair-share weight.
    pub weight: u64,
    /// Final status.
    pub status: JobStatus,
    /// Stages that ran to completion.
    pub stages_completed: usize,
    /// Task attempts dispatched on the job's behalf.
    pub attempts: usize,
    /// Attempts that failed or were lost with their executor.
    pub failed_attempts: usize,
    /// Wall-clock from job start to terminal state (0 if never started).
    pub runtime_secs: f64,
    /// The job's deterministic lifecycle journal (JSONL).
    pub journal: String,
}

/// What [`JobServer::serve`] returns once the server drains.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Every job the server ever admitted, by id.
    pub jobs: Vec<JobSummary>,
    /// Final snapshot of the shared metric registry.
    pub metrics: RegistrySnapshot,
}

/// Mutable state of one job's current stage (the multi-job analogue of
/// the driver's `StageState`).
struct StageRun {
    done: Vec<bool>,
    assigned_to: Vec<Option<usize>>,
    failures: Vec<usize>,
    failed_on: Vec<Vec<usize>>,
    remaining: usize,
    attempts: usize,
    failed_attempts: usize,
    started: Instant,
}

impl StageRun {
    fn new(tasks: usize) -> Self {
        Self {
            done: vec![false; tasks],
            assigned_to: vec![None; tasks],
            failures: vec![0; tasks],
            failed_on: vec![Vec::new(); tasks],
            remaining: tasks,
            attempts: 0,
            failed_attempts: 0,
            started: Instant::now(),
        }
    }
}

/// One admitted job.
struct JobState {
    id: u64,
    job: LiveJob,
    tenant: String,
    weight: u64,
    status: JobStatus,
    stage_idx: usize,
    queue: PendingQueue,
    st: StageRun,
    started_at: Option<Instant>,
    runtime_secs: f64,
    total_attempts: usize,
    total_failed: usize,
    stages_completed: usize,
    /// Wall-clock seconds per completed stage, in stage order.
    stage_durations: Vec<f64>,
    journal: String,
    /// Lines in `journal` — the next journal SSE event id.
    journal_lines: u64,
}

impl JobState {
    /// Can this job absorb another slot right now?
    fn runnable(&self) -> bool {
        self.status == JobStatus::Running && !self.queue.is_empty()
    }
}

/// Server-side view of one executor.
struct ExecState {
    registered: bool,
    alive: bool,
    slots: usize,
    running: usize,
    last_heartbeat: Instant,
}

impl ExecState {
    fn usable(&self) -> bool {
        self.registered && self.alive
    }
}

/// Per-executor outbound frame queue (same shape as the single-job
/// reactor's lanes).
struct Lane {
    conn: Option<u64>,
    queue: VecDeque<u8>,
}

/// What an accepted connection is.
enum ConnKind {
    /// An executor speaking the length-prefixed frame protocol.
    Wire {
        cursor: FrameCursor,
        executor: Option<usize>,
    },
    /// An HTTP control client.
    Http {
        parser: RequestParser,
        out: VecDeque<u8>,
        /// Close once `out` drains (parse error or `Connection: close`).
        close: bool,
        /// A live `/events` SSE stream, once one is established. The
        /// connection stops serving further requests.
        stream: Option<StreamState>,
    },
}

/// State of one live SSE stream on an HTTP connection.
struct StreamState {
    /// Cluster-wide streams pull from a recorder fan-out subscription.
    sub: Option<Subscription>,
    /// `Some(job)` for a per-job `GET /jobs/:id/events` stream, which
    /// follows the job's journal instead of the recorder.
    job: Option<u64>,
    /// First journal line to emit — 0, or `Last-Event-ID + 1` on resume.
    start_line: u64,
    /// Journal lines already examined (skipped or streamed); the line
    /// number of the next unexamined line, and the SSE id it gets.
    line_no: u64,
    /// Byte offset into the journal matching `line_no`, so following an
    /// append-only journal costs only the new bytes per pump.
    next_byte: usize,
    /// Last status label a per-job stream announced.
    last_status: Option<&'static str>,
    /// The terminal chunk is queued; close once it flushes.
    done: bool,
}

struct Conn {
    stream: TcpStream,
    conn_id: u64,
    want_write: bool,
    kind: ConnKind,
}

/// Cached metric handles; names follow the `server.*{tenant="x"}` label
/// convention [`render_prometheus`] parses back into label sets.
struct ServerMetrics {
    registry: MetricRegistry,
    http_requests: Counter,
    jobs_rejected: Counter,
    tasks_dispatched: Counter,
    outcomes: Counter,
    executors_lost: Counter,
    reincarnations: Counter,
    frames_fenced: Counter,
    wakeups: Counter,
    jobs_running: Gauge,
    jobs_queued: Gauge,
    recorder_ring_dropped: Counter,
    recorder_sub_dropped: Counter,
    per_tenant: HashMap<String, TenantMetrics>,
}

struct TenantMetrics {
    submitted: Counter,
    completed: Counter,
    cancelled: Counter,
    failed: Counter,
    tasks: Counter,
}

impl ServerMetrics {
    fn new(registry: &MetricRegistry) -> Self {
        Self {
            registry: registry.clone(),
            http_requests: registry.counter("server.http_requests"),
            jobs_rejected: registry.counter("server.jobs_rejected"),
            tasks_dispatched: registry.counter("server.tasks_dispatched"),
            outcomes: registry.counter("server.task_outcomes"),
            executors_lost: registry.counter("server.executors_lost"),
            reincarnations: registry.counter("server.reincarnations"),
            frames_fenced: registry.counter("server.frames_fenced"),
            wakeups: registry.counter("server.wakeups"),
            jobs_running: registry.gauge("server.jobs_running"),
            jobs_queued: registry.gauge("server.jobs_queued"),
            recorder_ring_dropped: registry.counter("live.recorder.dropped_total{kind=\"ring\"}"),
            recorder_sub_dropped: registry
                .counter("live.recorder.dropped_total{kind=\"subscriber\"}"),
            per_tenant: HashMap::new(),
        }
    }

    /// Per-tenant handles, created on first use. Tenant names are
    /// validated at submission to a label-safe charset.
    fn tenant(&mut self, tenant: &str) -> &TenantMetrics {
        let registry = &self.registry;
        self.per_tenant
            .entry(tenant.to_string())
            .or_insert_with(|| TenantMetrics {
                submitted: registry
                    .counter(&format!("server.jobs_submitted{{tenant=\"{tenant}\"}}")),
                completed: registry
                    .counter(&format!("server.jobs_completed{{tenant=\"{tenant}\"}}")),
                cancelled: registry
                    .counter(&format!("server.jobs_cancelled{{tenant=\"{tenant}\"}}")),
                failed: registry.counter(&format!("server.jobs_failed{{tenant=\"{tenant}\"}}")),
                tasks: registry.counter(&format!("server.tasks_completed{{tenant=\"{tenant}\"}}")),
            })
    }
}

/// A bound job server, ready to [`serve`](JobServer::serve).
#[derive(Debug)]
pub struct JobServer {
    wire: TcpListener,
    http: TcpListener,
    cfg: ServerConfig,
}

impl JobServer {
    /// Binds ephemeral loopback ports for the wire and HTTP listeners.
    pub fn bind(cfg: ServerConfig) -> io::Result<Self> {
        Self::bind_to(cfg, "127.0.0.1:0", "127.0.0.1:0")
    }

    /// Binds the given wire and HTTP addresses (the `sae-server` binary's
    /// fixed-port path; port 0 picks an ephemeral port).
    pub fn bind_to(
        cfg: ServerConfig,
        wire: impl std::net::ToSocketAddrs,
        http: impl std::net::ToSocketAddrs,
    ) -> io::Result<Self> {
        Ok(Self {
            wire: TcpListener::bind(wire)?,
            http: TcpListener::bind(http)?,
            cfg,
        })
    }

    /// The address executors connect to.
    pub fn wire_addr(&self) -> io::Result<SocketAddr> {
        self.wire.local_addr()
    }

    /// The address control clients connect to.
    pub fn http_addr(&self) -> io::Result<SocketAddr> {
        self.http.local_addr()
    }

    /// Runs the serve loop until SIGINT/SIGTERM or the configured stop
    /// flag, then drains and reports.
    pub fn serve(self) -> io::Result<ServerReport> {
        ServerLoop::new(self.wire, self.http, self.cfg)?.run()
    }
}

struct ServerLoop {
    poller: Poller,
    wire: TcpListener,
    http: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    freed_now: Vec<usize>,
    exec_conn: Vec<Option<usize>>,
    next_conn: u64,
    events: Vec<Event>,
    wheel: TimerWheel,
    read_buf: Vec<u8>,
    cfg: ServerConfig,
    epochs: EpochRegistry,
    execs: Vec<ExecState>,
    lanes: Vec<Lane>,
    dirty: Vec<usize>,
    scratch: Vec<u8>,
    fair: FairShare,
    jobs: BTreeMap<u64, JobState>,
    waiting: VecDeque<u64>,
    /// `(job, task) -> executor` for every assignment whose outcome has
    /// not arrived. The only place slot accounting is decremented.
    inflight: HashMap<(u64, usize), usize>,
    next_job: u64,
    draining: Option<Instant>,
    metrics: ServerMetrics,
    /// Last metric values streamed to cluster `/events` subscribers;
    /// ticks send only what changed.
    last_metrics: BTreeMap<String, f64>,
    /// Recorder ring drops already mirrored into the registry.
    published_ring_drops: u64,
    /// Recorder subscriber drops already mirrored into the registry.
    published_sub_drops: u64,
    log: Logger,
}

impl ServerLoop {
    fn new(wire: TcpListener, http: TcpListener, cfg: ServerConfig) -> io::Result<Self> {
        wire.set_nonblocking(true)?;
        http.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(&wire, WIRE_LISTENER, Interest::READABLE)?;
        poller.register(&http, HTTP_LISTENER, Interest::READABLE)?;
        let now = Instant::now();
        Ok(Self {
            poller,
            wire,
            http,
            conns: Vec::new(),
            free: Vec::new(),
            freed_now: Vec::new(),
            exec_conn: vec![None; cfg.executors],
            next_conn: 1,
            events: Vec::new(),
            wheel: TimerWheel::new(),
            read_buf: vec![0u8; READ_CHUNK],
            epochs: EpochRegistry::new(cfg.executors),
            execs: (0..cfg.executors)
                .map(|_| ExecState {
                    registered: false,
                    alive: false,
                    slots: 0,
                    running: 0,
                    last_heartbeat: now,
                })
                .collect(),
            lanes: (0..cfg.executors)
                .map(|_| Lane {
                    conn: None,
                    queue: VecDeque::new(),
                })
                .collect(),
            dirty: Vec::new(),
            scratch: Vec::new(),
            fair: FairShare::new(),
            jobs: BTreeMap::new(),
            waiting: VecDeque::new(),
            inflight: HashMap::new(),
            next_job: 1,
            draining: None,
            metrics: ServerMetrics::new(&cfg.metrics),
            last_metrics: BTreeMap::new(),
            published_ring_drops: 0,
            published_sub_drops: 0,
            log: Logger::new("server", cfg.recorder.clone()),
            cfg,
        })
    }

    fn run(&mut self) -> io::Result<ServerReport> {
        self.log.info(|| {
            format!(
                "serving: {} executor slots configured, max_active={}, max_queued={}",
                self.cfg.executors, self.cfg.max_active, self.cfg.max_queued
            )
        });
        self.wheel
            .schedule_at(Instant::now() + self.cfg.check_interval, TIMER_TICK);
        loop {
            self.flush_dirty();
            let timeout = self
                .wheel
                .next_timeout(Instant::now())
                .unwrap_or(self.cfg.check_interval);
            let mut events = std::mem::take(&mut self.events);
            self.poller.wait(&mut events, Some(timeout))?;
            self.metrics.wakeups.inc();
            for ev in &events {
                match ev.token {
                    WIRE_LISTENER => self.accept_burst(true),
                    HTTP_LISTENER => self.accept_burst(false),
                    token => {
                        let idx = (token - CONN_BASE) as usize;
                        if idx >= self.conns.len() || self.conns[idx].is_none() {
                            continue; // closed earlier in this batch
                        }
                        if ev.readable || ev.error {
                            self.read_drain(idx);
                        }
                        if ev.writable {
                            self.flush_conn(idx);
                        }
                    }
                }
            }
            self.events = events;
            for (_, what) in self.wheel.expire(Instant::now()) {
                if what == TIMER_TICK {
                    self.tick();
                    self.wheel
                        .schedule_at(Instant::now() + self.cfg.check_interval, TIMER_TICK);
                }
            }
            self.try_assign();
            self.pump_streams();
            self.free.append(&mut self.freed_now);
            if let Some(since) = self.draining {
                let running = self.jobs.values().any(|j| !j.status.terminal());
                if !running || since.elapsed() > self.cfg.shutdown_drain {
                    break;
                }
            }
        }
        self.finish()
    }

    /// The periodic sweep: heartbeat timeouts, the shutdown latch, and
    /// admission-gauge refresh.
    fn tick(&mut self) {
        let now = Instant::now();
        for e in 0..self.execs.len() {
            let ex = &self.execs[e];
            if ex.registered
                && ex.alive
                && now.duration_since(ex.last_heartbeat) > self.cfg.heartbeat_timeout
            {
                self.declare_lost(e);
            }
        }
        if self.draining.is_none()
            && (sae_poll::signal::triggered() || self.cfg.stop.load(Ordering::Relaxed))
        {
            self.begin_drain();
        }
        let running = self
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .count();
        self.metrics.jobs_running.set(running as f64);
        self.metrics.jobs_queued.set(self.waiting.len() as f64);
        self.publish_drop_totals();
        self.stream_metric_deltas();
        self.flush_streams();
    }

    /// Mirrors the recorder's cumulative drop counters (ring overwrites
    /// and per-subscriber queue drops) into the metric registry.
    fn publish_drop_totals(&mut self) {
        let ring = self.cfg.recorder.dropped();
        if ring > self.published_ring_drops {
            self.metrics
                .recorder_ring_dropped
                .add(ring - self.published_ring_drops);
            self.published_ring_drops = ring;
        }
        let subs = self.cfg.recorder.subscriber_dropped();
        if subs > self.published_sub_drops {
            self.metrics
                .recorder_sub_dropped
                .add(subs - self.published_sub_drops);
            self.published_sub_drops = subs;
        }
    }

    /// Appends a `metrics` SSE frame with every changed counter/gauge to
    /// each cluster `/events` stream whose write buffer has room.
    fn stream_metric_deltas(&mut self) {
        let any_cluster_stream = self.conns.iter().flatten().any(|c| {
            matches!(&c.kind, ConnKind::Http { stream: Some(st), .. }
                if st.job.is_none() && !st.done)
        });
        if !any_cluster_stream {
            return;
        }
        let snap = self.cfg.metrics.snapshot();
        let mut cur: BTreeMap<String, f64> = BTreeMap::new();
        for (k, v) in &snap.counters {
            cur.insert(k.clone(), *v as f64);
        }
        for (k, v) in &snap.float_counters {
            cur.insert(k.clone(), *v);
        }
        for (k, v) in &snap.gauges {
            cur.insert(k.clone(), *v);
        }
        let changed: Vec<String> = cur
            .iter()
            .filter(|(k, v)| self.last_metrics.get(*k) != Some(v))
            .map(|(k, v)| format!("\"{}\":{}", http::escape_json(k), fmt_num(*v)))
            .collect();
        if changed.is_empty() {
            return;
        }
        self.last_metrics = cur;
        let mut chunk = Vec::new();
        let frame = SseFrame::new(format!("{{{}}}", changed.join(","))).with_event("metrics");
        push_sse(&mut chunk, &frame);
        // Queued only: the tick's stream flush that follows pushes these
        // to the sockets together with any coalesced event frames.
        for slot in self.conns.iter_mut() {
            let Some(conn) = slot else { continue };
            let ConnKind::Http {
                out,
                stream: Some(st),
                ..
            } = &mut conn.kind
            else {
                continue;
            };
            if st.job.is_some() || st.done || out.len() >= HIGH_WATER {
                continue;
            }
            out.extend(chunk.iter().copied());
        }
    }

    /// Stops admission and cancels queued jobs; running jobs get the
    /// drain window.
    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now());
        self.log.info(|| {
            format!(
                "draining: admission closed, running jobs get {:?}",
                self.cfg.shutdown_drain
            )
        });
        while let Some(id) = self.waiting.pop_front() {
            self.cancel_job(id);
        }
    }

    /// After the loop: cancel whatever is still running, broadcast
    /// `Shutdown`, flush, and build the report.
    fn finish(&mut self) -> io::Result<ServerReport> {
        let ids: Vec<u64> = self.jobs.keys().copied().collect();
        for id in ids {
            if !self.jobs[&id].status.terminal() {
                self.cancel_job(id);
            }
        }
        // Let event streams carry the terminal journal lines, then close
        // each with an `end` frame and the terminal chunk.
        self.pump_streams();
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            let ConnKind::Http {
                out,
                close,
                stream: Some(st),
                ..
            } = &mut conn.kind
            else {
                continue;
            };
            if !st.done {
                let mut buf = Vec::new();
                push_sse(
                    &mut buf,
                    &SseFrame::new("{\"reason\":\"server-drain\"}").with_event("end"),
                );
                StreamEncoder::sse(200).finish(&mut buf);
                out.extend(buf);
                st.done = true;
            }
            *close = true;
        }
        self.broadcast(&Frame::Shutdown);
        self.drain_writes();
        self.drain_http_writes();
        let jobs = self
            .jobs
            .values()
            .map(|j| JobSummary {
                id: j.id,
                name: j.job.name.clone(),
                tenant: j.tenant.clone(),
                weight: j.weight,
                status: j.status,
                stages_completed: j.stages_completed,
                // Jobs that ended mid-stage (failed/cancelled) still owe
                // their in-flight stage's dispatches to the total.
                attempts: j.total_attempts + j.st.attempts,
                failed_attempts: j.total_failed,
                runtime_secs: j.runtime_secs,
                journal: j.journal.clone(),
            })
            .collect();
        Ok(ServerReport {
            jobs,
            metrics: self.cfg.metrics.snapshot(),
        })
    }

    // ---- connection plumbing ------------------------------------------

    fn accept_burst(&mut self, is_wire: bool) {
        loop {
            let accepted = if is_wire {
                self.wire.accept()
            } else {
                self.http.accept()
            };
            match accepted {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn_id = self.next_conn;
                    self.next_conn += 1;
                    let idx = match self.free.pop() {
                        Some(idx) => idx,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    if self
                        .poller
                        .register(&stream, idx as u64 + CONN_BASE, Interest::READABLE)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    let kind = if is_wire {
                        ConnKind::Wire {
                            cursor: FrameCursor::new(),
                            executor: None,
                        }
                    } else {
                        ConnKind::Http {
                            parser: RequestParser::with_limits(self.cfg.limits),
                            out: VecDeque::new(),
                            close: false,
                            stream: None,
                        }
                    };
                    self.conns[idx] = Some(Conn {
                        stream,
                        conn_id,
                        want_write: false,
                        kind,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.log.error(|| format!("acceptor died: {e}"));
                    return;
                }
            }
        }
    }

    fn read_drain(&mut self, idx: usize) {
        loop {
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return,
            };
            match conn.stream.read(&mut self.read_buf) {
                Ok(0) => return self.close_conn(idx),
                Ok(n) => {
                    let bytes: Vec<u8> = self.read_buf[..n].to_vec();
                    match &mut conn.kind {
                        ConnKind::Wire { cursor, .. } => {
                            cursor.extend(&bytes);
                            if !self.pump_wire(idx) {
                                return;
                            }
                        }
                        ConnKind::Http { parser, .. } => {
                            parser.extend(&bytes);
                            if !self.pump_http(idx) {
                                return;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return self.close_conn(idx),
            }
        }
    }

    /// Decodes and handles every complete frame buffered on a wire
    /// connection. Returns `false` once the connection is gone.
    fn pump_wire(&mut self, idx: usize) -> bool {
        loop {
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return false,
            };
            let ConnKind::Wire { cursor, executor } = &mut conn.kind else {
                return true;
            };
            let frame = match cursor.next() {
                Ok(Some(frame)) => frame,
                Ok(None) => return true,
                Err(_) => {
                    // Framing lost: the connection is unusable.
                    self.close_conn(idx);
                    return false;
                }
            };
            let conn_id = conn.conn_id;
            match *executor {
                Some(e) => self.handle_wire_frame(e, conn_id, frame),
                None => {
                    let Frame::Register { executor: e, slots } = frame else {
                        self.close_conn(idx);
                        return false;
                    };
                    if e >= self.cfg.executors {
                        self.log.error(|| {
                            format!("executor {e} registered from outside the configured fleet")
                        });
                        self.close_conn(idx);
                        return false;
                    }
                    *executor = Some(e);
                    self.exec_conn[e] = Some(idx);
                    self.handle_register(e, slots, conn_id);
                }
            }
        }
    }

    /// Parses and answers every complete HTTP request buffered on a
    /// control connection. Returns `false` once the connection is gone.
    fn pump_http(&mut self, idx: usize) -> bool {
        loop {
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return false,
            };
            let ConnKind::Http { parser, stream, .. } = &mut conn.kind else {
                return true;
            };
            if stream.is_some() {
                // An established SSE stream owns this connection; bytes
                // after the streaming request are ignored.
                return true;
            }
            match parser.next() {
                Ok(Some(req)) => {
                    self.metrics.http_requests.inc();
                    let close_requested = req
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    if let Some(routed) = self.route_events(&req) {
                        match routed {
                            Ok((head, state)) => {
                                let Some(conn) = self.conns[idx].as_mut() else {
                                    return false;
                                };
                                // Bound the kernel's queue in front of
                                // this long-lived stream: once a stalled
                                // consumer fills it, writes block and the
                                // HIGH_WATER/drop discipline takes over.
                                let _ = sae_poll::set_send_buffer(&conn.stream, HIGH_WATER);
                                if let ConnKind::Http { out, stream, .. } = &mut conn.kind {
                                    out.extend(head);
                                    *stream = Some(state);
                                }
                                // Replay anything already available (a
                                // per-job stream's existing journal) and
                                // push the head out without waiting for
                                // the coalescing tick.
                                self.pump_stream(idx);
                                self.flush_conn(idx);
                                return self.conns[idx].is_some();
                            }
                            Err(resp) => {
                                self.scratch.clear();
                                resp.encode(&mut self.scratch);
                                let Some(conn) = self.conns[idx].as_mut() else {
                                    return false;
                                };
                                if let ConnKind::Http { out, close, .. } = &mut conn.kind {
                                    out.extend(self.scratch.iter().copied());
                                    *close |= close_requested;
                                }
                                self.flush_conn(idx);
                                if self.conns[idx].is_none() {
                                    return false;
                                }
                                continue;
                            }
                        }
                    }
                    let resp = self.route(&req);
                    self.scratch.clear();
                    resp.encode(&mut self.scratch);
                    let Some(conn) = self.conns[idx].as_mut() else {
                        return false;
                    };
                    if let ConnKind::Http { out, close, .. } = &mut conn.kind {
                        out.extend(self.scratch.iter().copied());
                        *close |= close_requested;
                    }
                    self.flush_conn(idx);
                    if self.conns[idx].is_none() {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(e) => {
                    // Malformed request: answer with the mapped status and
                    // close — framing can no longer be trusted.
                    let resp = Response::error(e.status(), &format!("{e:?}"));
                    self.scratch.clear();
                    resp.encode(&mut self.scratch);
                    if let ConnKind::Http { out, close, .. } = &mut conn.kind {
                        out.extend(self.scratch.iter().copied());
                        *close = true;
                    }
                    self.flush_conn(idx);
                    return false;
                }
            }
        }
    }

    /// Flushes whatever the connection has queued: the executor lane for
    /// wire connections, the response buffer for HTTP ones.
    fn flush_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_ref() else {
            return;
        };
        match &conn.kind {
            ConnKind::Wire { executor, .. } => {
                if let Some(e) = *executor {
                    self.flush_executor(e);
                }
            }
            ConnKind::Http { .. } => self.flush_http(idx),
        }
    }

    fn flush_dirty(&mut self) {
        while let Some(e) = self.dirty.pop() {
            self.flush_executor(e);
        }
    }

    fn flush_executor(&mut self, e: usize) {
        let Some(idx) = self.exec_conn[e] else {
            return;
        };
        loop {
            let lane = &mut self.lanes[e];
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return,
            };
            if lane.conn != Some(conn.conn_id) {
                return; // lane retargeted to a newer incarnation
            }
            if lane.queue.is_empty() {
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self.poller.modify(
                        &conn.stream,
                        idx as u64 + CONN_BASE,
                        Interest::READABLE,
                    );
                }
                return;
            }
            let (a, b) = lane.queue.as_slices();
            let bufs = [IoSlice::new(a), IoSlice::new(b)];
            match conn.stream.write_vectored(&bufs) {
                Ok(0) => return self.close_conn(idx),
                Ok(n) => {
                    lane.queue.drain(..n);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if lane.queue.len() > HARD_CAP {
                        self.log.error(|| {
                            format!("executor {e} write queue overflowed; closing its connection")
                        });
                        return self.close_conn(idx);
                    }
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poller.modify(
                            &conn.stream,
                            idx as u64 + CONN_BASE,
                            Interest::BOTH,
                        );
                    }
                    return;
                }
                Err(_) => return self.close_conn(idx),
            }
        }
    }

    fn flush_http(&mut self, idx: usize) {
        loop {
            let conn = match self.conns[idx].as_mut() {
                Some(c) => c,
                None => return,
            };
            let ConnKind::Http { out, close, .. } = &mut conn.kind else {
                return;
            };
            if out.is_empty() {
                if *close {
                    return self.close_conn(idx);
                }
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self.poller.modify(
                        &conn.stream,
                        idx as u64 + CONN_BASE,
                        Interest::READABLE,
                    );
                }
                return;
            }
            let (a, b) = out.as_slices();
            let bufs = [IoSlice::new(a), IoSlice::new(b)];
            match conn.stream.write_vectored(&bufs) {
                Ok(0) => return self.close_conn(idx),
                Ok(n) => {
                    out.drain(..n);
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poller.modify(
                            &conn.stream,
                            idx as u64 + CONN_BASE,
                            Interest::BOTH,
                        );
                    }
                    return;
                }
                Err(_) => return self.close_conn(idx),
            }
        }
    }

    /// Tears a connection down. Wire connections report through the epoch
    /// registry so current incarnations are declared lost.
    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.poller.deregister(&conn.stream);
        self.freed_now.push(idx);
        if let ConnKind::Wire {
            executor: Some(e), ..
        } = conn.kind
        {
            if self.exec_conn.get(e).copied().flatten() == Some(idx) {
                self.exec_conn[e] = None;
            }
            if self.epochs.disconnect(e, conn.conn_id) {
                if self.lanes[e].conn == Some(conn.conn_id) {
                    self.lanes[e].conn = None;
                    self.lanes[e].queue.clear();
                }
                if self.execs[e].alive {
                    self.declare_lost(e);
                }
            }
        }
    }

    /// Final flush of queued executor frames (the `Shutdown` broadcast),
    /// bounded by [`FINAL_FLUSH`].
    fn drain_writes(&mut self) {
        let deadline = Instant::now() + FINAL_FLUSH;
        loop {
            let mut blocked = false;
            for e in 0..self.lanes.len() {
                self.flush_executor(e);
                if !self.lanes[e].queue.is_empty() && self.exec_conn[e].is_some() {
                    blocked = true;
                }
            }
            let now = Instant::now();
            if !blocked || now >= deadline {
                return;
            }
            let mut events = std::mem::take(&mut self.events);
            let nap = (deadline - now).min(Duration::from_millis(5));
            let _ = self.poller.wait(&mut events, Some(nap));
            self.events = events;
        }
    }

    /// Final flush of buffered HTTP bytes (stream terminators above all),
    /// bounded by [`FINAL_FLUSH`].
    fn drain_http_writes(&mut self) {
        let deadline = Instant::now() + FINAL_FLUSH;
        loop {
            for idx in 0..self.conns.len() {
                if self.conns[idx].is_some() {
                    self.flush_conn(idx);
                }
            }
            let blocked = self
                .conns
                .iter()
                .flatten()
                .any(|c| matches!(&c.kind, ConnKind::Http { out, .. } if !out.is_empty()));
            let now = Instant::now();
            if !blocked || now >= deadline {
                return;
            }
            let mut events = std::mem::take(&mut self.events);
            let nap = (deadline - now).min(Duration::from_millis(5));
            let _ = self.poller.wait(&mut events, Some(nap));
            self.events = events;
        }
    }

    // ---- executor fleet -----------------------------------------------

    fn handle_register(&mut self, e: usize, slots: usize, conn: u64) {
        let reg = self.epochs.register(e, conn);
        let lane = &mut self.lanes[e];
        lane.conn = Some(conn);
        lane.queue.clear();
        if reg.reincarnation {
            self.metrics.reincarnations.inc();
            self.requeue_inflight_on(e);
        }
        let ex = &mut self.execs[e];
        ex.registered = true;
        ex.alive = true;
        ex.slots = slots;
        ex.running = 0;
        ex.last_heartbeat = Instant::now();
        self.log.info(|| {
            if reg.reincarnation {
                format!(
                    "executor {e} reincarnated (epoch {}) with {slots} slots",
                    reg.epoch
                )
            } else {
                format!("executor {e} registered with {slots} slots")
            }
        });
        self.announce_jobs_to(e);
    }

    fn handle_wire_frame(&mut self, e: usize, conn: u64, frame: Frame) {
        if self.epochs.admit(e, conn) == Admission::Stale {
            self.metrics.frames_fenced.inc();
            self.log.debug(|| {
                format!(
                    "fenced a {} frame from a stale incarnation of executor {e}",
                    frame.kind_str()
                )
            });
            return;
        }
        if !self.execs[e].alive {
            // Frames flowing on the current connection of an executor we
            // declared lost: the partition healed. New epoch, rejoin.
            let epoch = self.epochs.resurrect(e);
            self.execs[e].alive = true;
            self.execs[e].running = 0;
            self.metrics.reincarnations.inc();
            self.log
                .info(|| format!("executor {e} resurrected on live traffic (epoch {epoch})"));
            self.announce_jobs_to(e);
        }
        match frame {
            Frame::Core(Message::Heartbeat { executor }) if executor == e => {
                self.execs[e].last_heartbeat = Instant::now();
            }
            Frame::Core(Message::PoolSizeChanged { executor, size }) if executor == e => {
                // §5.4: the executor's pool resized; scheduling follows.
                self.execs[e].last_heartbeat = Instant::now();
                self.execs[e].slots = size;
                self.log
                    .debug(|| format!("executor {e} resized its pool to {size}"));
            }
            Frame::JobTaskOutcome { job, task, ok, .. } => {
                self.execs[e].last_heartbeat = Instant::now();
                self.handle_outcome(job, task, e, ok);
            }
            Frame::ZetaSample {
                executor,
                threads,
                zeta_bits,
                at_bits,
            } if executor == e => {
                self.execs[e].last_heartbeat = Instant::now();
                self.cfg.recorder.note_zeta_streamed(e);
                self.cfg
                    .recorder
                    .push(LiveEvent::Trace(TraceEvent::IntervalClosed {
                        executor: e,
                        threads,
                        zeta: f64::from_bits(zeta_bits),
                        at: f64::from_bits(at_bits),
                    }));
            }
            Frame::TaskSpan {
                key,
                executor,
                start_bits,
                end_bits,
                ok,
            } if executor == e => {
                self.cfg.recorder.push(LiveEvent::TaskSpan {
                    job: key.job,
                    stage: key.stage,
                    task: key.task,
                    attempt: key.attempt,
                    epoch: key.epoch,
                    executor: e,
                    start: f64::from_bits(start_bits),
                    end: f64::from_bits(end_bits),
                    ok,
                });
            }
            // Single-job frames (TaskFinished/TaskFailed) or echoes: the
            // server only speaks the job-scoped protocol.
            _ => {}
        }
    }

    /// Re-announces every live job's current stage to one executor (a
    /// fresh or reincarnated peer has an empty job table).
    fn announce_jobs_to(&mut self, e: usize) {
        let frames: Vec<Frame> = self
            .jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .map(stage_frame)
            .collect();
        for frame in frames {
            self.send_frame(e, &frame);
        }
    }

    fn declare_lost(&mut self, e: usize) {
        self.execs[e].alive = false;
        self.execs[e].running = 0;
        self.metrics.executors_lost.inc();
        self.log
            .error(|| format!("executor {e} declared lost; requeueing its work"));
        self.requeue_inflight_on(e);
        // Survivors poison their monitoring interval: requeued work is not
        // the workload they were probing.
        let attached: Vec<usize> = (0..self.lanes.len())
            .filter(|&x| x != e && self.lanes[x].conn.is_some())
            .collect();
        for x in attached {
            self.send_frame(x, &Frame::FaultNotice { executor: e });
        }
    }

    /// Books a failure for (and requeues) every in-flight assignment on
    /// `e` — the executor died or was superseded.
    fn requeue_inflight_on(&mut self, e: usize) {
        let hit: Vec<(u64, usize)> = self
            .inflight
            .iter()
            .filter(|(_, ex)| **ex == e)
            .map(|(k, _)| *k)
            .collect();
        for (job, task) in hit {
            self.inflight.remove(&(job, task));
            self.record_failure(job, task, e);
        }
    }

    // ---- job lifecycle ------------------------------------------------

    fn handle_outcome(&mut self, job: u64, task: usize, from: usize, ok: bool) {
        // The in-flight table is the slot ledger: only a booked assignment
        // frees a slot, and only once. Late outcomes of requeued or
        // retired work miss the table and change nothing.
        let Some(&e) = self.inflight.get(&(job, task)) else {
            return;
        };
        if from != e {
            // A stale outcome from an executor that no longer holds the
            // booking (the task was requeued and reassigned, e.g. after a
            // lost-then-resurrected peer replayed its result). Leave the
            // booking — and the current assignee's slot — untouched; the
            // real outcome from `e` will settle the ledger.
            return;
        }
        self.inflight.remove(&(job, task));
        self.execs[e].running = self.execs[e].running.saturating_sub(1);
        self.metrics.outcomes.inc();
        let Some(js) = self.jobs.get_mut(&job) else {
            return;
        };
        if js.status != JobStatus::Running
            || task >= js.st.done.len()
            || js.st.done[task]
            || js.st.assigned_to[task] != Some(e)
        {
            return;
        }
        js.st.assigned_to[task] = None;
        if ok {
            js.st.done[task] = true;
            js.st.remaining -= 1;
            let tenant = js.tenant.clone();
            self.metrics.tenant(&tenant).tasks.inc();
            if self.jobs[&job].st.remaining == 0 {
                self.finish_stage(job);
            }
        } else {
            self.record_failure(job, task, e);
        }
    }

    fn record_failure(&mut self, job: u64, task: usize, e: usize) {
        let Some(js) = self.jobs.get_mut(&job) else {
            return;
        };
        if js.status != JobStatus::Running || task >= js.st.done.len() || js.st.done[task] {
            return;
        }
        js.st.assigned_to[task] = None;
        js.st.failures[task] += 1;
        js.st.failed_attempts += 1;
        js.total_failed += 1;
        if !js.st.failed_on[task].contains(&e) {
            js.st.failed_on[task].push(e);
        }
        if js.st.failures[task] >= self.cfg.max_task_attempts {
            self.log
                .error(|| format!("job {job} task {task} exceeded its attempt budget"));
            self.fail_job(job, task);
            return;
        }
        if !js.queue.contains(task) {
            let preferred = [task % self.cfg.executors.max(1)];
            js.queue.push(task, &preferred);
        }
    }

    fn begin_stage(&mut self, job: u64) {
        let executors = self.cfg.executors;
        let recorder = self.cfg.recorder.clone();
        let js = self.jobs.get_mut(&job).expect("job exists");
        let spec = &js.job.stages[js.stage_idx];
        let tasks = spec.tasks;
        let kind = spec.kind;
        js.st = StageRun::new(tasks);
        js.queue.reset(tasks, executors);
        for t in 0..tasks {
            js.queue.push(t, &[t % executors.max(1)]);
        }
        let line = format!(
            "{{\"event\":\"stage-start\",\"stage\":{},\"kind\":\"{}\",\"tasks\":{}}}",
            js.stage_idx,
            kind_name(kind),
            tasks
        );
        journal_line(&recorder, js, line);
        let frame = stage_frame(js);
        self.log
            .info(|| format!("job {job} stage started: {tasks} tasks"));
        self.broadcast(&frame);
    }

    fn finish_stage(&mut self, job: u64) {
        let recorder = self.cfg.recorder.clone();
        let js = self.jobs.get_mut(&job).expect("job exists");
        let stage = js.stage_idx;
        // Journal per-task attempt counts in task order — content depends
        // only on the job's logical history, never on completion order.
        for t in 0..js.st.done.len() {
            let line = format!(
                "{{\"event\":\"task\",\"stage\":{},\"task\":{},\"attempts\":{}}}",
                stage,
                t,
                js.st.failures[t] + 1
            );
            journal_line(&recorder, js, line);
        }
        let line = format!(
            "{{\"event\":\"stage-end\",\"stage\":{},\"attempts\":{},\"failed_attempts\":{}}}",
            stage, js.st.attempts, js.st.failed_attempts
        );
        journal_line(&recorder, js, line);
        js.total_attempts += js.st.attempts;
        // Absorbed into the running total: zero the stage counter so the
        // live views' `total + current` sum stays exact after the final
        // stage, which no `begin_stage` call will replace.
        js.st.attempts = 0;
        js.st.failed_attempts = 0;
        js.stage_durations
            .push(js.st.started.elapsed().as_secs_f64());
        js.stages_completed += 1;
        js.stage_idx += 1;
        if js.stage_idx == js.job.stages.len() {
            js.status = JobStatus::Completed;
            let line = format!(
                "{{\"event\":\"completed\",\"stages\":{}}}",
                js.job.stages.len()
            );
            journal_line(&recorder, js, line);
            js.runtime_secs = js
                .started_at
                .map(|t| t.elapsed().as_secs_f64())
                .unwrap_or(0.0);
            status_event(&recorder, js);
            let tenant = js.tenant.clone();
            self.metrics.tenant(&tenant).completed.inc();
            self.retire_job(job);
            self.log.info(|| format!("job {job} completed"));
        } else {
            self.begin_stage(job);
        }
    }

    fn fail_job(&mut self, job: u64, task: usize) {
        let recorder = self.cfg.recorder.clone();
        let js = self.jobs.get_mut(&job).expect("job exists");
        js.status = JobStatus::Failed;
        let line = format!(
            "{{\"event\":\"failed\",\"stage\":{},\"task\":{}}}",
            js.stage_idx, task
        );
        journal_line(&recorder, js, line);
        js.runtime_secs = js
            .started_at
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        status_event(&recorder, js);
        let tenant = js.tenant.clone();
        self.metrics.tenant(&tenant).failed.inc();
        self.retire_job(job);
    }

    fn cancel_job(&mut self, job: u64) {
        let recorder = self.cfg.recorder.clone();
        let Some(js) = self.jobs.get_mut(&job) else {
            return;
        };
        let was_queued = js.status == JobStatus::Queued;
        js.status = JobStatus::Cancelled;
        let line = format!("{{\"event\":\"cancelled\",\"stage\":{}}}", js.stage_idx);
        journal_line(&recorder, js, line);
        js.runtime_secs = js
            .started_at
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        status_event(&recorder, js);
        let tenant = js.tenant.clone();
        self.metrics.tenant(&tenant).cancelled.inc();
        if was_queued {
            self.waiting.retain(|&id| id != job);
        }
        self.retire_job(job);
        self.log.info(|| format!("job {job} cancelled"));
    }

    /// Common terminal-state bookkeeping: out of the allocator, `JobEnd`
    /// to the fleet (which fences queued-but-unstarted attempts on the
    /// executors), and a queued job promoted into the freed active slot.
    /// In-flight table entries stay — their outcomes still free slots.
    fn retire_job(&mut self, job: u64) {
        self.fair.retire(job);
        self.broadcast(&Frame::JobEnd { job });
        self.promote_waiting();
    }

    fn promote_waiting(&mut self) {
        while self.active_jobs() < self.cfg.max_active {
            let Some(id) = self.waiting.pop_front() else {
                return;
            };
            if self.jobs[&id].status == JobStatus::Queued {
                self.start_job(id);
            }
        }
    }

    fn active_jobs(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.status == JobStatus::Running)
            .count()
    }

    fn start_job(&mut self, job: u64) {
        let recorder = self.cfg.recorder.clone();
        let js = self.jobs.get_mut(&job).expect("job exists");
        js.status = JobStatus::Running;
        js.started_at = Some(Instant::now());
        status_event(&recorder, js);
        let weight = js.weight;
        self.fair.admit(job, weight);
        self.begin_stage(job);
    }

    /// Hands free slots to queued tasks, fair-share order, until nothing
    /// more can move.
    fn try_assign(&mut self) {
        for e in 0..self.execs.len() {
            loop {
                if !self.execs[e].usable()
                    || self.execs[e].running >= self.execs[e].slots
                    || self.lanes[e].queue.len() >= HIGH_WATER
                {
                    break;
                }
                // Select the fair-share winner that can actually give this
                // executor a task; jobs whose remaining tasks all failed
                // here are passed over without being charged a stride.
                let mut tried: Vec<u64> = Vec::new();
                let mut picked = None;
                loop {
                    let fair = &self.fair;
                    let jobs = &self.jobs;
                    let Some(j) = fair.peek(|id| {
                        !tried.contains(&id) && jobs.get(&id).is_some_and(JobState::runnable)
                    }) else {
                        break;
                    };
                    let js = self.jobs.get_mut(&j).expect("peeked job exists");
                    let JobState { queue, st, .. } = js;
                    match queue.pick(e, |t| st.failed_on[t].contains(&e)) {
                        Some(task) => {
                            picked = Some((j, task));
                            break;
                        }
                        None => tried.push(j),
                    }
                }
                let Some((job, task)) = picked else {
                    break;
                };
                self.fair.charge(job);
                let js = self.jobs.get_mut(&job).expect("job exists");
                js.st.assigned_to[task] = Some(e);
                js.st.attempts += 1;
                self.inflight.insert((job, task), e);
                self.execs[e].running += 1;
                self.metrics.tasks_dispatched.inc();
                if !self.send_frame(e, &Frame::AssignJobTask { job, task }) {
                    // No usable lane: treat like a broken socket.
                    self.declare_lost(e);
                    break;
                }
            }
        }
    }

    // ---- outbound frames ----------------------------------------------

    /// Queues `frame` for `e`; `false` means no attached connection.
    fn send_frame(&mut self, e: usize, frame: &Frame) -> bool {
        let lane = &mut self.lanes[e];
        if lane.conn.is_none() {
            return false;
        }
        self.scratch.clear();
        frame.encode(&mut self.scratch);
        if lane.queue.is_empty() {
            self.dirty.push(e);
        }
        lane.queue.extend(self.scratch.iter().copied());
        true
    }

    fn broadcast(&mut self, frame: &Frame) {
        for e in 0..self.lanes.len() {
            if self.lanes[e].conn.is_some() {
                self.send_frame(e, frame);
            }
        }
    }

    // ---- HTTP routing -------------------------------------------------

    fn route(&mut self, req: &Request) -> Response {
        let segments = req.path_segments();
        match (req.method, segments.as_slice()) {
            (Method::Get, ["healthz"]) => Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"draining\":{}}}",
                    self.draining.is_some()
                ),
            ),
            (Method::Get, ["metrics"]) => {
                let mut resp = Response::text(200, render_prometheus(&self.cfg.metrics));
                resp.content_type = EXPOSITION_CONTENT_TYPE;
                resp
            }
            (Method::Post, ["jobs"]) => self.submit(req),
            (Method::Get, ["jobs"]) => self.list_jobs(),
            (Method::Get, ["jobs", id]) => match self.parse_id(id) {
                Some(job) => self.job_status(job),
                None => Response::error(404, "no such job"),
            },
            (Method::Delete, ["jobs", id]) => match self.parse_id(id) {
                Some(job) => self.cancel_request(job),
                None => Response::error(404, "no such job"),
            },
            (Method::Get, ["jobs", id, "report"]) => match self.parse_id(id) {
                Some(job) => self.job_report(job),
                None => Response::error(404, "no such job"),
            },
            (Method::Get, ["jobs", id, "journal"]) => match self.parse_id(id) {
                Some(job) => Response::text(200, self.jobs[&job].journal.clone()),
                None => Response::error(404, "no such job"),
            },
            (Method::Get, ["jobs", id, "trace"]) => match self.parse_id(id) {
                Some(_) => Response::json(200, self.cfg.recorder.chrome_trace()),
                None => Response::error(404, "no such job"),
            },
            (
                _,
                ["jobs"] | ["jobs", _] | ["jobs", _, _] | ["metrics"] | ["healthz"] | ["events"],
            ) => Response::error(405, "method not allowed on this route"),
            _ => Response::error(404, "unknown route"),
        }
    }

    /// Routes the SSE endpoints: `Some(Ok)` carries the response head and
    /// the stream state to install, `Some(Err)` a plain error response,
    /// `None` means the request is not a stream route.
    fn route_events(&mut self, req: &Request) -> Option<Result<(Vec<u8>, StreamState), Response>> {
        let segments = req.path_segments();
        match (req.method, segments.as_slice()) {
            (Method::Get, ["events"]) => {
                let mut head = Vec::new();
                StreamEncoder::sse(200).head(&mut head);
                // A new subscriber needs the full metric state once;
                // ticks only stream deltas from here on.
                let snap = self.cfg.metrics.snapshot();
                let mut all: Vec<String> = Vec::new();
                for (k, v) in &snap.counters {
                    all.push(format!(
                        "\"{}\":{}",
                        http::escape_json(k),
                        fmt_num(*v as f64)
                    ));
                }
                for (k, v) in &snap.float_counters {
                    all.push(format!("\"{}\":{}", http::escape_json(k), fmt_num(*v)));
                }
                for (k, v) in &snap.gauges {
                    all.push(format!("\"{}\":{}", http::escape_json(k), fmt_num(*v)));
                }
                push_sse(
                    &mut head,
                    &SseFrame::new(format!("{{{}}}", all.join(","))).with_event("metrics"),
                );
                Some(Ok((
                    head,
                    StreamState {
                        sub: Some(self.cfg.recorder.subscribe(EVENT_SUB_CAPACITY)),
                        job: None,
                        start_line: 0,
                        line_no: 0,
                        next_byte: 0,
                        last_status: None,
                        done: false,
                    },
                )))
            }
            (Method::Get, ["jobs", id, "events"]) => match self.parse_id(id) {
                Some(job) => {
                    let mut head = Vec::new();
                    StreamEncoder::sse(200).head(&mut head);
                    // `Last-Event-ID: n` means line n was delivered;
                    // resume from the next one.
                    let start_line = req
                        .header("last-event-id")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(|n| n + 1)
                        .unwrap_or(0);
                    Some(Ok((
                        head,
                        StreamState {
                            sub: None,
                            job: Some(job),
                            start_line,
                            line_no: 0,
                            next_byte: 0,
                            last_status: None,
                            done: false,
                        },
                    )))
                }
                None => Some(Err(Response::error(404, "no such job"))),
            },
            _ => None,
        }
    }

    /// Refills every streaming connection's write buffer up to
    /// [`HIGH_WATER`] — past that the stream stops pulling and a slow
    /// consumer's events age out of its bounded queue instead of
    /// accumulating in server memory.
    fn pump_streams(&mut self) {
        for idx in 0..self.conns.len() {
            self.pump_stream(idx);
        }
    }

    fn pump_stream(&mut self, idx: usize) {
        let mut wrote = false;
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let ConnKind::Http {
                out,
                close,
                stream: Some(st),
                ..
            } = &mut conn.kind
            else {
                return;
            };
            if st.done {
                return;
            }
            let mut buf = Vec::new();
            if let Some(job) = st.job {
                let Some(js) = self.jobs.get(&job) else {
                    return;
                };
                let status = js.status.as_str();
                if st.last_status != Some(status) {
                    st.last_status = Some(status);
                    push_sse(
                        &mut buf,
                        &SseFrame::new(format!("{{\"job\":{job},\"status\":\"{status}\"}}"))
                            .with_event("status"),
                    );
                }
                // Follow the append-only journal from where the last
                // pump left off — only the new bytes are scanned. Every
                // journal line is newline-terminated, so the tail never
                // splits a record.
                let mut drained = true;
                for line in js.journal[st.next_byte..].lines() {
                    if st.line_no >= st.start_line {
                        if out.len() + buf.len() >= HIGH_WATER {
                            drained = false;
                            break;
                        }
                        push_sse(
                            &mut buf,
                            &SseFrame::new(line)
                                .with_event("journal")
                                .with_id(st.line_no.to_string()),
                        );
                    }
                    st.line_no += 1;
                    st.next_byte += line.len() + 1;
                }
                if js.status.terminal() && drained && out.len() + buf.len() < HIGH_WATER {
                    push_sse(
                        &mut buf,
                        &SseFrame::new(format!("{{\"status\":\"{status}\"}}")).with_event("end"),
                    );
                    StreamEncoder::sse(200).finish(&mut buf);
                    st.done = true;
                    *close = true;
                }
            } else if let Some(sub) = &st.sub {
                while out.len() + buf.len() < HIGH_WATER {
                    let Some((seq, ev)) = sub.pop() else {
                        break;
                    };
                    if let Some(frame) = cluster_frame(seq, &ev) {
                        push_sse(&mut buf, &frame);
                    }
                }
            }
            if !buf.is_empty() {
                out.extend(buf);
                wrote = true;
            }
        }
        // Coalesce: small batches wait for the tick flush; only a closing
        // stream or a high backlog goes to the socket immediately.
        if wrote && self.stream_flush_due(idx) {
            self.flush_conn(idx);
        }
    }

    /// Whether a streaming connection's buffered output should be pushed
    /// to the socket now rather than waiting for the periodic tick.
    fn stream_flush_due(&self, idx: usize) -> bool {
        match self.conns[idx].as_ref().map(|c| &c.kind) {
            Some(ConnKind::Http {
                out,
                stream: Some(st),
                ..
            }) => st.done || out.len() >= STREAM_FLUSH,
            _ => false,
        }
    }

    /// Tick-time flush of every streaming connection with buffered
    /// output — the slow path that bounds coalescing latency.
    fn flush_streams(&mut self) {
        for idx in 0..self.conns.len() {
            let pending = matches!(
                self.conns[idx].as_ref().map(|c| &c.kind),
                Some(ConnKind::Http {
                    out,
                    stream: Some(_),
                    ..
                }) if !out.is_empty()
            );
            if pending {
                self.flush_conn(idx);
            }
        }
    }

    fn parse_id(&self, s: &str) -> Option<u64> {
        let id = s.parse::<u64>().ok()?;
        self.jobs.contains_key(&id).then_some(id)
    }

    fn submit(&mut self, req: &Request) -> Response {
        if self.draining.is_some() {
            self.metrics.jobs_rejected.inc();
            return Response::error(503, "server is draining");
        }
        let body = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        let spec = match parse_job_spec(body) {
            Ok(spec) => spec,
            Err(detail) => return Response::error(400, detail),
        };
        let queue_full = self.waiting.len() >= self.cfg.max_queued;
        let start_now = self.active_jobs() < self.cfg.max_active;
        if !start_now && queue_full {
            self.metrics.jobs_rejected.inc();
            return Response::error(429, "admission queue is full");
        }
        let id = self.next_job;
        self.next_job += 1;
        let mut js = JobState {
            id,
            tenant: spec.tenant.clone(),
            weight: spec.weight,
            status: JobStatus::Queued,
            stage_idx: 0,
            queue: PendingQueue::new(),
            st: StageRun::new(0),
            started_at: None,
            runtime_secs: 0.0,
            total_attempts: 0,
            total_failed: 0,
            stages_completed: 0,
            stage_durations: Vec::new(),
            journal: String::new(),
            journal_lines: 0,
            job: spec.job,
        };
        let line = format!(
            "{{\"event\":\"submitted\",\"name\":\"{}\",\"tenant\":\"{}\",\"weight\":{},\"stages\":{}}}",
            http::escape_json(&js.job.name),
            js.tenant,
            js.weight,
            js.job.stages.len()
        );
        journal_line(&self.cfg.recorder, &mut js, line);
        let tenant = js.tenant.clone();
        self.metrics.tenant(&tenant).submitted.inc();
        self.jobs.insert(id, js);
        let status = if start_now {
            self.start_job(id);
            JobStatus::Running
        } else {
            self.waiting.push_back(id);
            status_event(&self.cfg.recorder, &self.jobs[&id]);
            JobStatus::Queued
        };
        Response::json(
            201,
            format!("{{\"job\":{},\"status\":\"{}\"}}", id, status.as_str()),
        )
    }

    fn cancel_request(&mut self, job: u64) -> Response {
        if self.jobs[&job].status.terminal() {
            return Response::error(409, "job already terminal");
        }
        self.cancel_job(job);
        Response::json(200, format!("{{\"job\":{job},\"status\":\"cancelled\"}}"))
    }

    fn status_line(&self, js: &JobState) -> String {
        let (done, total) = if js.status == JobStatus::Running {
            (js.st.done.iter().filter(|d| **d).count(), js.st.done.len())
        } else {
            (0, 0)
        };
        format!(
            "{{\"job\":{},\"name\":\"{}\",\"tenant\":\"{}\",\"weight\":{},\"status\":\"{}\",\
             \"stage\":{},\"stages\":{},\"tasks_done\":{},\"tasks_total\":{},\
             \"attempts\":{},\"failed_attempts\":{}}}",
            js.id,
            http::escape_json(&js.job.name),
            js.tenant,
            js.weight,
            js.status.as_str(),
            js.stage_idx,
            js.job.stages.len(),
            done,
            total,
            js.total_attempts + js.st.attempts,
            js.total_failed
        )
    }

    fn job_status(&self, job: u64) -> Response {
        Response::json(200, self.status_line(&self.jobs[&job]))
    }

    fn list_jobs(&self) -> Response {
        let items: Vec<String> = self.jobs.values().map(|js| self.status_line(js)).collect();
        Response::json(200, format!("{{\"jobs\":[{}]}}", items.join(",")))
    }

    fn job_report(&self, job: u64) -> Response {
        let js = &self.jobs[&job];
        let runtime = match js.status {
            JobStatus::Running => js
                .started_at
                .map(|t| t.elapsed().as_secs_f64())
                .unwrap_or(0.0),
            _ => js.runtime_secs,
        };
        let stages: Vec<String> = js
            .job
            .stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "{{\"stage\":{},\"name\":\"{}\",\"kind\":\"{}\",\"tasks\":{},\"done\":{},\
                     \"duration_secs\":{:.6}}}",
                    i,
                    http::escape_json(&s.name),
                    kind_name(s.kind),
                    s.tasks,
                    i < js.stages_completed,
                    js.stage_durations.get(i).copied().unwrap_or(0.0)
                )
            })
            .collect();
        Response::json(
            200,
            format!(
                "{{\"job\":{},\"status\":\"{}\",\"runtime_secs\":{:.6},\"attempts\":{},\
                 \"failed_attempts\":{},\"stages\":[{}]}}",
                js.id,
                js.status.as_str(),
                runtime,
                js.total_attempts + js.st.attempts,
                js.total_failed,
                stages.join(",")
            ),
        )
    }
}

/// Appends one line to a job's journal and mirrors it to the recorder as
/// a [`LiveEvent::JournalLine`] for `/events` subscribers. The journal
/// string gets exactly the bytes it always got — streaming (or the
/// absence of any subscriber) never changes a journal byte.
fn journal_line(recorder: &FlightRecorder, js: &mut JobState, line: String) {
    js.journal.push_str(&line);
    js.journal.push('\n');
    let line_no = js.journal_lines;
    js.journal_lines += 1;
    let at = recorder.now();
    recorder.push(LiveEvent::JournalLine {
        job: js.id,
        line_no,
        line,
        at,
    });
}

/// Announces a job lifecycle transition to `/events` subscribers.
fn status_event(recorder: &FlightRecorder, js: &JobState) {
    recorder.push(LiveEvent::JobStatusChanged {
        job: js.id,
        tenant: js.tenant.clone(),
        status: js.status.as_str(),
        at: recorder.now(),
    });
}

/// Encodes one SSE frame as a single HTTP chunk.
fn push_sse(out: &mut Vec<u8>, frame: &SseFrame) {
    let mut payload = Vec::with_capacity(frame.data.len() + 32);
    frame.encode(&mut payload);
    sae_net::sse::encode_chunk(&payload, out);
}

/// Formats a metric value as a JSON number (integers without a fraction).
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// One recorder event as a cluster `/events` SSE frame; events with no
/// streaming representation return `None`.
fn cluster_frame(seq: u64, ev: &LiveEvent) -> Option<SseFrame> {
    let (event, data) = match ev {
        LiveEvent::JournalLine {
            job, line_no, line, ..
        } => (
            "journal",
            format!("{{\"job\":{job},\"line\":{line_no},\"record\":{line}}}"),
        ),
        LiveEvent::JobStatusChanged {
            job,
            tenant,
            status,
            at,
        } => (
            "status",
            format!(
                "{{\"job\":{job},\"tenant\":\"{}\",\"status\":\"{status}\",\"at\":{}}}",
                http::escape_json(tenant),
                fmt_num(*at)
            ),
        ),
        LiveEvent::TaskSpan {
            job,
            stage,
            task,
            attempt,
            epoch,
            executor,
            start,
            end,
            ok,
        } => (
            "span",
            format!(
                "{{\"job\":{job},\"stage\":{stage},\"task\":{task},\"attempt\":{attempt},\
                 \"epoch\":{epoch},\"executor\":{executor},\"start\":{},\"end\":{},\"ok\":{ok}}}",
                fmt_num(*start),
                fmt_num(*end)
            ),
        ),
        LiveEvent::Trace(TraceEvent::IntervalClosed {
            executor,
            threads,
            zeta,
            at,
        }) => (
            "zeta",
            format!(
                "{{\"executor\":{executor},\"threads\":{threads},\"zeta\":{},\"at\":{}}}",
                fmt_num(*zeta),
                fmt_num(*at)
            ),
        ),
        LiveEvent::ExecutorReincarnated {
            executor,
            epoch,
            at,
            ..
        } => (
            "reincarnated",
            format!(
                "{{\"executor\":{executor},\"epoch\":{epoch},\"at\":{}}}",
                fmt_num(*at)
            ),
        ),
        _ => return None,
    };
    Some(
        SseFrame::new(data)
            .with_event(event)
            .with_id(seq.to_string()),
    )
}

/// The current stage announcement for one job.
fn stage_frame(js: &JobState) -> Frame {
    let spec = &js.job.stages[js.stage_idx];
    Frame::JobStageStart {
        job: js.id,
        stage: js.stage_idx,
        kind: spec.kind,
        tasks: spec.tasks,
        records_per_task: spec.records_per_task,
        seed: spec.seed,
    }
}

fn kind_name(kind: LiveStageKind) -> &'static str {
    match kind {
        LiveStageKind::Spill => "spill",
        LiveStageKind::Sort => "sort",
    }
}

/// A validated submission.
struct SubmittedSpec {
    job: LiveJob,
    tenant: String,
    weight: u64,
}

/// Caps that keep one submission from monopolising the server.
const MAX_STAGES: usize = 16;
const MAX_TASKS: u64 = 4096;
const MAX_RECORDS: u64 = 50_000_000;

/// Parses and validates a `POST /jobs` body.
///
/// Accepted shapes:
/// ```json
/// {"name":"x","tenant":"a","weight":4,
///  "stages":[{"kind":"spill","tasks":8,"records_per_task":1000,"seed":42}]}
/// ```
/// or the Terasort shorthand (spill stage + sort stage over the same
/// parameters):
/// ```json
/// {"tenant":"a","tasks":8,"records_per_task":1000,"seed":42}
/// ```
fn parse_job_spec(body: &str) -> Result<SubmittedSpec, &'static str> {
    let doc = json::parse(body).map_err(|_| "body is not valid JSON")?;
    let Value::Obj(_) = doc else {
        return Err("body must be a JSON object");
    };
    let tenant = match doc.get("tenant") {
        None => "default".to_string(),
        Some(v) => {
            let t = v.as_str().ok_or("tenant must be a string")?;
            let ok = !t.is_empty()
                && t.len() <= 32
                && t.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
            if !ok {
                return Err("tenant must be 1-32 chars of [A-Za-z0-9_-]");
            }
            t.to_string()
        }
    };
    let weight = match doc.get("weight") {
        None => 1,
        Some(v) => {
            let w = v.as_u64().ok_or("weight must be a positive integer")?;
            if w == 0 || w > 1024 {
                return Err("weight must be in 1..=1024");
            }
            w
        }
    };
    // The default name must not embed the server-assigned id: journals
    // carry the name, and same-spec resubmissions must journal
    // identically regardless of what id they landed on.
    let name = match doc.get("name") {
        None => "job".to_string(),
        Some(v) => {
            let n = v.as_str().ok_or("name must be a string")?;
            if n.is_empty() || n.len() > 64 {
                return Err("name must be 1-64 chars");
            }
            n.to_string()
        }
    };
    let stages = match doc.get("stages") {
        Some(v) => {
            let arr = v.as_arr().ok_or("stages must be an array")?;
            if arr.is_empty() || arr.len() > MAX_STAGES {
                return Err("stages must have 1-16 entries");
            }
            let mut out = Vec::with_capacity(arr.len());
            for (i, s) in arr.iter().enumerate() {
                let kind = match s.get("kind").and_then(Value::as_str) {
                    Some("spill") => LiveStageKind::Spill,
                    Some("sort") => LiveStageKind::Sort,
                    _ => return Err("stage kind must be \"spill\" or \"sort\""),
                };
                let (tasks, records, seed) = stage_numbers(s)?;
                out.push(LiveStageSpec {
                    name: format!("{}-{i}", kind_name(kind)),
                    kind,
                    tasks: tasks as usize,
                    records_per_task: records as usize,
                    seed,
                });
            }
            out
        }
        None => {
            // Terasort shorthand: spill then sort, same parameters.
            let (tasks, records, seed) = stage_numbers(&doc)?;
            vec![
                LiveStageSpec {
                    name: "spill-0".into(),
                    kind: LiveStageKind::Spill,
                    tasks: tasks as usize,
                    records_per_task: records as usize,
                    seed,
                },
                LiveStageSpec {
                    name: "sort-1".into(),
                    kind: LiveStageKind::Sort,
                    tasks: tasks as usize,
                    records_per_task: records as usize,
                    seed,
                },
            ]
        }
    };
    Ok(SubmittedSpec {
        job: LiveJob { name, stages },
        tenant,
        weight,
    })
}

/// Pulls `(tasks, records_per_task, seed)` out of a stage (or shorthand)
/// object with range validation.
fn stage_numbers(v: &Value) -> Result<(u64, u64, u64), &'static str> {
    let tasks = v
        .get("tasks")
        .and_then(Value::as_u64)
        .ok_or("tasks must be a positive integer")?;
    if tasks == 0 || tasks > MAX_TASKS {
        return Err("tasks must be in 1..=4096");
    }
    let records = v
        .get("records_per_task")
        .and_then(Value::as_u64)
        .ok_or("records_per_task must be a positive integer")?;
    if records == 0 || records > MAX_RECORDS {
        return Err("records_per_task must be in 1..=50000000");
    }
    let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(42);
    Ok((tasks, records, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_parses_both_shapes() {
        let full = parse_job_spec(
            r#"{"name":"x","tenant":"alice","weight":4,
                "stages":[{"kind":"spill","tasks":8,"records_per_task":100,"seed":7},
                          {"kind":"sort","tasks":8,"records_per_task":100,"seed":7}]}"#,
        )
        .unwrap();
        assert_eq!(full.tenant, "alice");
        assert_eq!(full.weight, 4);
        assert_eq!(full.job.stages.len(), 2);
        assert_eq!(full.job.stages[1].kind, LiveStageKind::Sort);

        let short = parse_job_spec(r#"{"tasks":4,"records_per_task":50}"#).unwrap();
        assert_eq!(short.tenant, "default");
        assert_eq!(short.weight, 1);
        assert_eq!(short.job.name, "job");
        assert_eq!(short.job.stages.len(), 2);
        assert_eq!(short.job.stages[0].kind, LiveStageKind::Spill);
        assert_eq!(short.job.stages[0].seed, 42);
    }

    #[test]
    fn job_spec_rejects_bad_inputs() {
        for (body, why) in [
            ("not json", "malformed"),
            ("[1]", "non-object"),
            (r#"{"tasks":0,"records_per_task":5}"#, "zero tasks"),
            (r#"{"tasks":5,"records_per_task":0}"#, "zero records"),
            (r#"{"tasks":9999,"records_per_task":5}"#, "tasks cap"),
            (
                r#"{"tenant":"has space","tasks":1,"records_per_task":1}"#,
                "tenant charset",
            ),
            (
                r#"{"weight":0,"tasks":1,"records_per_task":1}"#,
                "zero weight",
            ),
            (r#"{"stages":[]}"#, "empty stages"),
            (
                r#"{"stages":[{"kind":"fry","tasks":1,"records_per_task":1}]}"#,
                "unknown kind",
            ),
        ] {
            assert!(parse_job_spec(body).is_err(), "accepted {why}: {body}");
        }
    }

    #[test]
    fn default_config_is_consistent() {
        let cfg = ServerConfig::default();
        assert!(cfg.max_active >= 1);
        assert!(cfg.max_queued >= 1);
        assert!(cfg.shutdown_drain > Duration::ZERO);
    }

    /// A server loop with no attached executors, one Running job with
    /// `tasks` tasks, and task 0 booked in-flight on executor 1.
    fn loop_with_booked_task(tasks: usize) -> ServerLoop {
        let wire = TcpListener::bind("127.0.0.1:0").unwrap();
        let http = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut sl = ServerLoop::new(wire, http, ServerConfig::default()).unwrap();
        let spec =
            parse_job_spec(&format!("{{\"tasks\":{tasks},\"records_per_task\":1}}")).unwrap();
        let mut st = StageRun::new(tasks);
        st.assigned_to[0] = Some(1);
        sl.jobs.insert(
            1,
            JobState {
                id: 1,
                tenant: spec.tenant.clone(),
                weight: spec.weight,
                status: JobStatus::Running,
                stage_idx: 0,
                queue: PendingQueue::new(),
                st,
                started_at: Some(Instant::now()),
                runtime_secs: 0.0,
                total_attempts: 1,
                total_failed: 0,
                stages_completed: 0,
                stage_durations: Vec::new(),
                journal: String::new(),
                journal_lines: 0,
                job: spec.job,
            },
        );
        sl.execs[1].running = 1;
        sl.inflight.insert((1, 0), 1);
        sl
    }

    #[test]
    fn stale_outcome_from_wrong_executor_leaves_booking_intact() {
        // Task (1,0) was requeued off executor 0 and reassigned to 1; a
        // late outcome replayed by resurrected executor 0 must not free
        // executor 1's booking or mark the task done.
        let mut sl = loop_with_booked_task(2);
        sl.handle_outcome(1, 0, 0, true);
        assert_eq!(sl.inflight.get(&(1, 0)), Some(&1), "booking was dropped");
        assert_eq!(sl.execs[1].running, 1, "assignee's slot was over-freed");
        assert!(!sl.jobs[&1].st.done[0]);
        assert_eq!(sl.jobs[&1].st.assigned_to[0], Some(1));

        // The real outcome from executor 1 then settles the ledger once.
        sl.handle_outcome(1, 0, 1, true);
        assert!(sl.inflight.is_empty());
        assert_eq!(sl.execs[1].running, 0);
        assert!(sl.jobs[&1].st.done[0]);
        assert_eq!(sl.jobs[&1].st.remaining, 1);
    }

    #[test]
    fn status_strings_round_trip() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert!(!s.as_str().is_empty());
        }
        assert!(JobStatus::Completed.terminal());
        assert!(!JobStatus::Running.terminal());
    }
}
