//! Weighted fair-share slot allocation across concurrent jobs.
//!
//! Stride scheduling (Waldspurger & Weihl, OSDI '95) over task dispatches:
//! each job carries a `stride = STRIDE1 / weight` and a `pass` that
//! advances by one stride per task dispatched on its behalf. Every time a
//! slot frees, the runnable job with the lowest pass wins it, so over any
//! window the tasks dispatched per job converge to the weight ratio —
//! a weight-4 tenant gets 4 slots' worth of work for every 1 a weight-1
//! tenant gets, without starving anyone.
//!
//! The scheduler is a pure state machine: no clocks, no randomness, ties
//! broken by job id. Given the same sequence of [`FairShare::admit`],
//! [`FairShare::retire`] and [`FairShare::pick`] calls it produces the
//! same dispatch sequence, which is what makes the server's accounting
//! journal replayable — [`replay`] re-runs a recorded schedule and
//! byte-identical journals out of two runs prove the allocator
//! deterministic (the acceptance gate `jobserver_bench` asserts).

use std::collections::BTreeMap;

/// Pass advance for a weight-1 job per dispatched task. Large enough
/// that integer division by any sane weight keeps fine-grained ratios:
/// weights up to ~10⁴ stay exact to <0.01%.
pub const STRIDE1: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct Entry {
    stride: u64,
    pass: u64,
}

/// One recorded allocator decision, for the replay journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Decision ordinal (0-based).
    pub seq: u64,
    /// The job the slot went to.
    pub job: u64,
    /// The job's pass value *before* this dispatch charged it.
    pub pass: u64,
}

/// The stride allocator. Jobs are admitted with a weight, charged per
/// dispatched task, and retired when they finish or are cancelled.
#[derive(Debug, Default)]
pub struct FairShare {
    entries: BTreeMap<u64, Entry>,
    dispatches: u64,
}

impl FairShare {
    /// An empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits `job` with `weight` (clamped to ≥1). The job starts at the
    /// minimum pass currently in the system, so a late arrival competes
    /// immediately instead of monopolising slots while it "catches up"
    /// from pass 0.
    pub fn admit(&mut self, job: u64, weight: u64) {
        let floor = self.entries.values().map(|e| e.pass).min().unwrap_or(0);
        self.entries.insert(
            job,
            Entry {
                stride: STRIDE1 / weight.max(1),
                pass: floor,
            },
        );
    }

    /// Removes `job` from contention (completed, failed, or cancelled).
    pub fn retire(&mut self, job: u64) {
        self.entries.remove(&job);
    }

    /// Whether `job` is currently admitted.
    pub fn contains(&self, job: u64) -> bool {
        self.entries.contains_key(&job)
    }

    /// Admitted jobs, ascending by id.
    pub fn jobs(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }

    /// The runnable job with the lowest `(pass, id)`, without charging it.
    /// `runnable` filters jobs that could actually use the slot (current
    /// stage has queued tasks); jobs it rejects keep their pass, so a job
    /// blocked on stragglers is not penalised for slots it could not take.
    pub fn peek(&self, mut runnable: impl FnMut(u64) -> bool) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(id, _)| runnable(**id))
            .min_by_key(|(id, e)| (e.pass, **id))
            .map(|(id, _)| *id)
    }

    /// Charges `job` one stride for a dispatched task. Callers that need
    /// to inspect per-executor state between selection and dispatch use
    /// [`FairShare::peek`] then `charge` only once the dispatch actually
    /// happens, so a job the executor cannot serve is never billed.
    pub fn charge(&mut self, job: u64) -> Option<Dispatch> {
        let e = self.entries.get_mut(&job)?;
        let dispatch = Dispatch {
            seq: self.dispatches,
            job,
            pass: e.pass,
        };
        e.pass = e.pass.saturating_add(e.stride);
        self.dispatches += 1;
        Some(dispatch)
    }

    /// [`FairShare::peek`] + [`FairShare::charge`] in one step.
    pub fn pick(&mut self, runnable: impl FnMut(u64) -> bool) -> Option<Dispatch> {
        let job = self.peek(runnable)?;
        self.charge(job)
    }
}

/// One step of a recorded submission schedule, for [`replay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `admit(job, weight)`.
    Admit(u64, u64),
    /// `retire(job)`.
    Retire(u64),
    /// One `pick` over all admitted jobs (every job runnable).
    Pick,
}

/// Replays a schedule through a fresh allocator and renders the dispatch
/// journal as JSONL. Two calls with the same schedule must return
/// byte-identical strings — the determinism proof the bench checks in.
pub fn replay(schedule: &[Step]) -> String {
    let mut fs = FairShare::new();
    let mut out = String::new();
    for step in schedule {
        match *step {
            Step::Admit(job, weight) => fs.admit(job, weight),
            Step::Retire(job) => fs.retire(job),
            Step::Pick => {
                if let Some(d) = fs.pick(|_| true) {
                    out.push_str(&format!(
                        "{{\"seq\":{},\"job\":{},\"pass\":{}}}\n",
                        d.seq, d.job, d.pass
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dispatch counts per job over `n` picks, all jobs always runnable.
    fn shares(fs: &mut FairShare, n: usize) -> BTreeMap<u64, usize> {
        let mut counts = BTreeMap::new();
        for _ in 0..n {
            let d = fs.pick(|_| true).expect("jobs admitted");
            *counts.entry(d.job).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn equal_weights_split_evenly() {
        let mut fs = FairShare::new();
        for j in 0..4 {
            fs.admit(j, 1);
        }
        let counts = shares(&mut fs, 400);
        for j in 0..4 {
            assert_eq!(counts[&j], 100, "job {j}");
        }
    }

    #[test]
    fn weights_split_proportionally() {
        let mut fs = FairShare::new();
        fs.admit(1, 4);
        fs.admit(2, 1);
        let counts = shares(&mut fs, 500);
        // 4:1 over 500 dispatches = 400:100.
        assert_eq!(counts[&1], 400);
        assert_eq!(counts[&2], 100);
    }

    #[test]
    fn late_arrival_joins_at_the_pass_floor() {
        let mut fs = FairShare::new();
        fs.admit(0, 1);
        shares(&mut fs, 100); // job 0 has advanced 100 strides
        fs.admit(1, 1);
        // If job 1 started at pass 0 it would win the next 100 picks
        // straight; at the floor, the next 100 split evenly.
        let counts = shares(&mut fs, 100);
        assert_eq!(counts[&0], 50);
        assert_eq!(counts[&1], 50);
    }

    #[test]
    fn blocked_jobs_are_skipped_without_penalty() {
        let mut fs = FairShare::new();
        fs.admit(0, 1);
        fs.admit(1, 1);
        // Job 0 is blocked for 10 picks: job 1 takes them all.
        for _ in 0..10 {
            assert_eq!(fs.pick(|j| j != 0).unwrap().job, 1);
        }
        // Once runnable again, job 0's untouched pass means it catches
        // up on the next 10 picks.
        let counts = shares(&mut fs, 10);
        assert_eq!(counts.get(&0), Some(&10));
    }

    #[test]
    fn retire_removes_from_contention() {
        let mut fs = FairShare::new();
        fs.admit(0, 1);
        fs.admit(1, 1);
        fs.retire(0);
        for _ in 0..5 {
            assert_eq!(fs.pick(|_| true).unwrap().job, 1);
        }
        assert!(!fs.contains(0));
        fs.retire(1);
        assert!(fs.pick(|_| true).is_none());
    }

    #[test]
    fn ties_break_by_job_id() {
        let mut fs = FairShare::new();
        fs.admit(7, 1);
        fs.admit(3, 1);
        // Equal pass: lower id first, strictly alternating after.
        assert_eq!(fs.pick(|_| true).unwrap().job, 3);
        assert_eq!(fs.pick(|_| true).unwrap().job, 7);
        assert_eq!(fs.pick(|_| true).unwrap().job, 3);
    }

    #[test]
    fn replay_is_deterministic() {
        let schedule: Vec<Step> = std::iter::once(Step::Admit(0, 1))
            .chain(std::iter::once(Step::Admit(1, 4)))
            .chain(std::iter::repeat_n(Step::Pick, 50))
            .chain(std::iter::once(Step::Admit(2, 2)))
            .chain(std::iter::repeat_n(Step::Pick, 50))
            .chain(std::iter::once(Step::Retire(1)))
            .chain(std::iter::repeat_n(Step::Pick, 25))
            .collect();
        let a = replay(&schedule);
        let b = replay(&schedule);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 125);
    }
}
