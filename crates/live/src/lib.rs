//! A live single-machine cluster runtime for the self-adaptive executor
//! protocol: real sockets, real threads, real disk I/O.
//!
//! Everything else in this workspace *simulates* the paper's system; this
//! crate *runs* it. A [`Driver`] listens on loopback TCP; N
//! [`LiveExecutor`]s connect, register, and service task assignments on
//! `sae-pool`'s [`AdaptivePool`](sae_pool::AdaptivePool) — so the MAPE-K
//! loop, the §5.4 `PoolSizeChanged` protocol extension, heartbeat-based
//! failure detection and task retry all execute end-to-end over a real
//! wire. The pieces deliberately shared with the simulated engine:
//!
//! * the [`Message`](sae_dag::Message) enum and its binary encoding
//!   ([`sae_dag::codec`]) — one wire format for both runtimes;
//! * the driver's locality-aware
//!   [`PendingQueue`](sae_dag::sched::PendingQueue) scheduler;
//! * the MAPE-K controller stack from `sae-core`, via
//!   [`AdaptivePool`](sae_pool::AdaptivePool).
//!
//! What is live-only: the control envelope ([`wire::Frame`]) carrying
//! registration/stage/completion traffic around the core messages, the
//! wall-clock heartbeat timers, and task bodies that really generate,
//! spill, read and sort Terasort records ([`task`]).
//!
//! # Quick start
//!
//! ```no_run
//! use sae_live::{terasort, ClusterConfig, LiveCluster};
//!
//! let mut cluster = LiveCluster::launch(ClusterConfig::default()).unwrap();
//! let report = cluster.run(&terasort(24, 20_000, 42)).unwrap();
//! println!(
//!     "ran {} stages, saw {} pool-size round-trips",
//!     report.stages.len(),
//!     report.decisions.len()
//! );
//! cluster.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod driver;
pub mod epochs;
pub mod executor;
pub mod job;
pub mod log;
pub mod nemesis;
pub mod recorder;
pub mod server;
pub mod task;
pub mod wire;

pub use cluster::{ClusterConfig, LiveCluster, TempDir};
pub use driver::{
    Driver, DriverConfig, DriverTransport, LiveError, LiveReport, LiveStageReport, PoolDecision,
    SlotInfo,
};
pub use epochs::{Admission, EpochRegistry, Registration};
pub use executor::{LiveExecutor, LiveExecutorConfig, RespawnConfig};
pub use job::{terasort, LiveJob, LiveStageKind, LiveStageSpec};
pub use log::{LogLevel, Logger};
pub use nemesis::Nemesis;
pub use recorder::{chrome_trace, FlightRecorder, LiveEvent};
pub use server::{JobServer, JobStatus, JobSummary, ServerConfig, ServerReport};
