//! The flight recorder: a lock-free-ish bounded ring buffer of live
//! runtime events, merged into one clock-aligned Chrome trace.
//!
//! Every component of a loopback cluster — the driver's event loop, each
//! executor's serve loop, heartbeat threads, pool workers — pushes
//! [`LiveEvent`]s into one shared [`FlightRecorder`]. The recorder is a
//! fixed-capacity ring: a push claims the next sequence number with one
//! atomic `fetch_add` and stores the event in slot `seq % capacity` under
//! a per-slot mutex, so writers never contend on a global lock and old
//! events are overwritten (and counted as dropped) rather than growing
//! memory without bound — the "black box" discipline of a real flight
//! recorder.
//!
//! All timestamps are seconds since the recorder's epoch, the single
//! `Instant` shared by the whole cluster. That is what makes the merged
//! export clock-aligned: a driver-side `TaskStarted` and the executor-side
//! frame that caused it land on one timeline without any skew correction.
//!
//! The scheduler-visible vocabulary is [`sae_dag::TraceEvent`] — the same
//! enum the simulator records — serialized by the same
//! [`sae_dag::append_chrome_entries`] rows, so a sim trace and a live
//! trace of the same job overlay in Perfetto. Around it, live-only events
//! capture what the simulator has no wire for: frames sent and received,
//! heartbeats, slot-registry changes, and log lines.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use sae_dag::{append_chrome_entries, TraceEvent};

use crate::log::LogLevel;

/// One event on the live cluster's merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveEvent {
    /// A scheduler-visible event, in the simulator's shared vocabulary.
    Trace(TraceEvent),
    /// A frame left for the wire.
    FrameSent {
        /// Executor the frame concerns (the sender for executor→driver
        /// traffic, the destination for driver→executor traffic).
        executor: usize,
        /// Frame kind (see [`crate::wire::Frame::kind_str`]).
        kind: &'static str,
        /// Encoded size in bytes, length prefix included.
        bytes: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// A frame arrived off the wire.
    FrameReceived {
        /// Executor the frame concerns.
        executor: usize,
        /// Frame kind (see [`crate::wire::Frame::kind_str`]).
        kind: &'static str,
        /// Encoded size in bytes, length prefix included.
        bytes: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The driver observed a heartbeat from an executor.
    Heartbeat {
        /// The executor that beat.
        executor: usize,
        /// Seconds of silence this beat ended.
        gap: f64,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The driver's slot registry changed for one executor.
    SlotRegistryChanged {
        /// The executor whose entry changed.
        executor: usize,
        /// Its total slots (last announced pool size).
        slots: usize,
        /// Slots not currently running a task.
        free: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The nemesis wire layer injected one scheduled fault window.
    FaultInjected {
        /// The executor whose link the fault hit.
        executor: usize,
        /// The fault kind ([`sae_dag::WireFaultKind::label`], or
        /// `"disk"` / `"crash"` for the chaos agent's faults).
        kind: &'static str,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// A dead or partitioned executor re-registered (or was resurrected
    /// on evidence of life) and rejoined the fleet.
    ExecutorReincarnated {
        /// The reborn executor.
        executor: usize,
        /// Its new registration epoch.
        epoch: u64,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The driver dropped a frame from a superseded incarnation.
    EpochFenced {
        /// The executor whose stale incarnation sent the frame.
        executor: usize,
        /// Frame kind (see [`crate::wire::Frame::kind_str`]).
        kind: &'static str,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The live-executor count fell below the configured floor: the
    /// driver parked the job instead of failing fast.
    Degraded {
        /// Usable executors at the moment of entry.
        live: usize,
        /// The configured `min_live_executors` floor.
        floor: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The fleet recovered above the floor and the job resumed.
    DegradedRecovered {
        /// Seconds spent parked.
        waited: f64,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// A log line emitted through [`crate::log::Logger`].
    Log {
        /// Severity.
        level: LogLevel,
        /// The component that logged ("driver", "executor-2", ...).
        scope: String,
        /// The rendered message.
        message: String,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// One task attempt's execution span, streamed off the wire with its
    /// full (job, stage, task, attempt, epoch) trace key — the
    /// cross-process correlation record that lets a multi-process fleet's
    /// events merge into one causally-ordered trace during the run.
    TaskSpan {
        /// Job the task belongs to ([`crate::wire::SINGLE_JOB`] for the
        /// single-job driver).
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// Task index within the stage.
        task: usize,
        /// Attempt number as reported by the executor.
        attempt: usize,
        /// The executor incarnation that ran the attempt.
        epoch: u64,
        /// The executor that ran the attempt.
        executor: usize,
        /// Span start, seconds since the *executor's* recorder epoch.
        start: f64,
        /// Span end, same clock as `start`.
        end: f64,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// A job changed lifecycle state on the multi-tenant server.
    JobStatusChanged {
        /// The job.
        job: u64,
        /// Owning tenant.
        tenant: String,
        /// The new status label ("queued", "running", "completed", ...).
        status: &'static str,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The server appended one line to a job's journal. Streamed to
    /// per-job `/events` subscribers; the line number doubles as the SSE
    /// event id that `Last-Event-ID` resume counts from.
    JournalLine {
        /// The job.
        job: u64,
        /// Zero-based line number within the job's journal.
        line_no: u64,
        /// The JSONL line, without the trailing newline.
        line: String,
        /// Seconds since the recorder epoch.
        at: f64,
    },
}

impl LiveEvent {
    /// The event's timestamp in seconds since the recorder epoch.
    pub fn at(&self) -> f64 {
        match self {
            LiveEvent::Trace(e) => e.at(),
            LiveEvent::FrameSent { at, .. }
            | LiveEvent::FrameReceived { at, .. }
            | LiveEvent::Heartbeat { at, .. }
            | LiveEvent::SlotRegistryChanged { at, .. }
            | LiveEvent::FaultInjected { at, .. }
            | LiveEvent::ExecutorReincarnated { at, .. }
            | LiveEvent::EpochFenced { at, .. }
            | LiveEvent::Degraded { at, .. }
            | LiveEvent::DegradedRecovered { at, .. }
            | LiveEvent::Log { at, .. }
            | LiveEvent::JobStatusChanged { at, .. }
            | LiveEvent::JournalLine { at, .. } => *at,
            LiveEvent::TaskSpan { end, .. } => *end,
        }
    }
}

struct Inner {
    slots: Vec<Mutex<Option<(u64, LiveEvent)>>>,
    cursor: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    /// Live fan-out subscribers. Behind an `RwLock` so the hot push path
    /// takes only a read lock; `has_subs` short-circuits even that when
    /// nobody is listening.
    subs: RwLock<Vec<Arc<SubShared>>>,
    has_subs: AtomicBool,
    /// Cumulative events dropped across all subscriber queues, surviving
    /// subscriber disconnect (per-subscriber counters die with them).
    sub_dropped: AtomicU64,
    /// Per-executor count of ζ decision records already pushed onto this
    /// recorder from *streamed* `ZetaSample` frames, so the shutdown-time
    /// journal replay (in-thread executors and the process-fleet reaper
    /// alike) replays only the unstreamed tail instead of duplicating the
    /// live merge.
    zeta_streamed: Mutex<Vec<u64>>,
}

/// State shared between a [`Subscription`] handle and the recorder.
struct SubShared {
    queue: Mutex<VecDeque<(u64, LiveEvent)>>,
    capacity: usize,
    dropped: AtomicU64,
    closed: AtomicBool,
}

/// A handle onto one bounded fan-out queue of live events.
///
/// Created by [`FlightRecorder::subscribe`]. Every event pushed to the
/// recorder after that point is cloned into the subscriber's queue; when
/// the queue is full the **oldest** queued event is overwritten and the
/// subscriber's `dropped` counter incremented — a slow consumer loses
/// telemetry (visibly) but can never stall a writer or grow memory.
/// Dropping the handle unsubscribes.
pub struct Subscription {
    shared: Arc<SubShared>,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("capacity", &self.shared.capacity)
            .field("queued", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Subscription {
    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events this subscriber lost to queue overwrites.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns the oldest queued event with its global
    /// sequence number.
    pub fn pop(&self) -> Option<(u64, LiveEvent)> {
        self.shared.queue.lock().pop_front()
    }

    /// Drains every queued event, oldest first.
    pub fn drain(&self) -> Vec<(u64, LiveEvent)> {
        self.shared.queue.lock().drain(..).collect()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

/// A shared, bounded, overwrite-on-full event ring.
///
/// Cloning shares the ring; capacity 0 disables recording entirely (every
/// push is a branch and a return — the configuration the overhead
/// benchmark compares against).
///
/// # Examples
///
/// ```
/// use sae_live::recorder::{FlightRecorder, LiveEvent};
///
/// let rec = FlightRecorder::new(8);
/// rec.push(LiveEvent::Heartbeat { executor: 0, gap: 0.1, at: rec.now() });
/// let events = rec.snapshot();
/// assert_eq!(events.len(), 1);
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a ring of `capacity` slots with the epoch set to now.
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// Creates a ring whose timestamps count from `epoch`.
    ///
    /// Hand the same recorder (or at least the same epoch) to every
    /// component of a cluster: clock alignment of the merged trace is
    /// exactly "everyone measures seconds since this one instant".
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                epoch,
                subs: RwLock::new(Vec::new()),
                has_subs: AtomicBool::new(false),
                sub_dropped: AtomicU64::new(0),
                zeta_streamed: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A recorder that records nothing (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether pushes are recorded at all.
    pub fn enabled(&self) -> bool {
        !self.inner.slots.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// The epoch all timestamps count from.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Seconds elapsed since the epoch — the timestamp for a new event.
    pub fn now(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// Records one event; the oldest event is overwritten when full.
    ///
    /// The event also fans out to every live [`Subscription`] — including
    /// when the ring itself is disabled (capacity 0): streaming consumers
    /// and the post-hoc ring are independent sinks.
    pub fn push(&self, event: LiveEvent) {
        let capacity = self.inner.slots.len();
        let has_subs = self.inner.has_subs.load(Ordering::Acquire);
        if capacity == 0 && !has_subs {
            return;
        }
        let seq = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        if has_subs {
            self.fan_out(seq, &event);
        }
        if capacity == 0 {
            return;
        }
        let mut slot = self.inner.slots[seq as usize % capacity].lock();
        if slot.is_some() {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some((seq, event));
    }

    /// Clones `event` into every live subscriber queue, overwriting the
    /// oldest queued event (and counting a drop) when one is full. Closed
    /// subscribers found along the way are garbage-collected opportunistically.
    fn fan_out(&self, seq: u64, event: &LiveEvent) {
        let mut saw_closed = false;
        {
            let subs = self.inner.subs.read();
            for sub in subs.iter() {
                if sub.closed.load(Ordering::Acquire) {
                    saw_closed = true;
                    continue;
                }
                let mut queue = sub.queue.lock();
                if queue.len() >= sub.capacity {
                    queue.pop_front();
                    sub.dropped.fetch_add(1, Ordering::Relaxed);
                    self.inner.sub_dropped.fetch_add(1, Ordering::Relaxed);
                }
                queue.push_back((seq, event.clone()));
            }
        }
        if saw_closed {
            // Rare path: only taken on the first push after a disconnect.
            let mut subs = self.inner.subs.write();
            subs.retain(|s| !s.closed.load(Ordering::Acquire));
            self.inner
                .has_subs
                .store(!subs.is_empty(), Ordering::Release);
        }
    }

    /// Registers a fan-out subscriber with a bounded queue of `capacity`
    /// events (minimum 1). See [`Subscription`] for the overwrite-oldest
    /// drop discipline.
    pub fn subscribe(&self, capacity: usize) -> Subscription {
        let shared = Arc::new(SubShared {
            queue: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let mut subs = self.inner.subs.write();
        subs.retain(|s| !s.closed.load(Ordering::Acquire));
        subs.push(Arc::clone(&shared));
        self.inner.has_subs.store(true, Ordering::Release);
        Subscription { shared }
    }

    /// Live (not yet dropped) subscriber handles.
    pub fn subscribers(&self) -> usize {
        self.inner
            .subs
            .read()
            .iter()
            .filter(|s| !s.closed.load(Ordering::Acquire))
            .count()
    }

    /// Cumulative events lost across all subscriber queues, including
    /// queues whose subscribers have since disconnected.
    pub fn subscriber_dropped(&self) -> u64 {
        self.inner.sub_dropped.load(Ordering::Relaxed)
    }

    /// Notes that one streamed ζ sample from `executor` was pushed onto
    /// this recorder, so the shutdown-time journal replay skips it.
    pub fn note_zeta_streamed(&self, executor: usize) {
        let mut counts = self.inner.zeta_streamed.lock();
        if counts.len() <= executor {
            counts.resize(executor + 1, 0);
        }
        counts[executor] += 1;
    }

    /// How many of `executor`'s ζ decision records already reached this
    /// recorder via live `ZetaSample` frames.
    pub fn zeta_streamed(&self, executor: usize) -> u64 {
        self.inner
            .zeta_streamed
            .lock()
            .get(executor)
            .copied()
            .unwrap_or(0)
    }

    /// Total events ever pushed (recorded or overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrites.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the ring's current contents, oldest first.
    ///
    /// Events are ordered by timestamp (ties broken by push order):
    /// components push concurrently, and some events — the ζ samples an
    /// executor replays from its decision journal at shutdown — are pushed
    /// after the instants they describe.
    pub fn snapshot(&self) -> Vec<LiveEvent> {
        let mut pairs: Vec<(u64, LiveEvent)> = self
            .inner
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .collect();
        pairs.sort_by(|a, b| {
            a.1.at()
                .partial_cmp(&b.1.at())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.into_iter().map(|(_, e)| e).collect()
    }

    /// Like [`FlightRecorder::snapshot`], additionally clearing the ring.
    pub fn drain(&self) -> Vec<LiveEvent> {
        let mut pairs: Vec<(u64, LiveEvent)> = self
            .inner
            .slots
            .iter()
            .filter_map(|s| s.lock().take())
            .collect();
        pairs.sort_by(|a, b| {
            a.1.at()
                .partial_cmp(&b.1.at())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.into_iter().map(|(_, e)| e).collect()
    }

    /// Exports the ring's contents as a Chrome trace (see [`chrome_trace`]).
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.snapshot())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome trace-event JSON array.
///
/// Row layout extends the simulator's export ([`sae_dag`]'s pid 0 =
/// driver, pid 1 = executors) with pid 2 = the wire: frame and heartbeat
/// instants per executor row, plus a cumulative `wire-bytes` counter
/// track. Slot-registry changes become per-executor `slots-exec{e}`
/// counter tracks on the driver process, alongside the `pool-size-exec{e}`
/// and `zeta-exec{e}` tracks that [`sae_dag::append_chrome_entries`] emits
/// for `PoolResized` / `IntervalClosed` events. Open the output in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace(events: &[LiveEvent]) -> String {
    let us = |t: f64| (t * 1e6).round() as i64;
    let mut entries: Vec<String> = Vec::with_capacity(events.len() + 3);
    for (pid, name) in [(0, "driver"), (1, "executors"), (2, "wire")] {
        entries.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"{name}"}}}}"#
        ));
    }
    let (mut wire_sent, mut wire_received) = (0u64, 0u64);
    for event in events {
        match event {
            LiveEvent::Trace(e) => append_chrome_entries(e, &mut entries),
            LiveEvent::FrameSent {
                executor,
                kind,
                bytes,
                at,
            } => {
                wire_sent += *bytes as u64;
                entries.push(format!(
                    r#"{{"name":"send:{kind}","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"t","args":{{"bytes":{bytes}}}}}"#,
                    us(*at)
                ));
                entries.push(format!(
                    r#"{{"name":"wire-bytes","ph":"C","ts":{},"pid":2,"tid":0,"args":{{"sent":{wire_sent},"received":{wire_received}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::FrameReceived {
                executor,
                kind,
                bytes,
                at,
            } => {
                wire_received += *bytes as u64;
                entries.push(format!(
                    r#"{{"name":"recv:{kind}","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"t","args":{{"bytes":{bytes}}}}}"#,
                    us(*at)
                ));
                entries.push(format!(
                    r#"{{"name":"wire-bytes","ph":"C","ts":{},"pid":2,"tid":0,"args":{{"sent":{wire_sent},"received":{wire_received}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::Heartbeat { executor, gap, at } => {
                let gap = if gap.is_finite() { *gap } else { 0.0 };
                entries.push(format!(
                    r#"{{"name":"heartbeat","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"t","args":{{"gap_s":{gap:?}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::SlotRegistryChanged {
                executor,
                slots,
                free,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"slots-exec{executor}","ph":"C","ts":{},"pid":0,"tid":{executor},"args":{{"slots":{slots},"free":{free}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::FaultInjected { executor, kind, at } => {
                entries.push(format!(
                    r#"{{"name":"fault:{kind}","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"p","args":{{}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::ExecutorReincarnated {
                executor,
                epoch,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"reincarnated","ph":"i","ts":{},"pid":0,"tid":{executor},"s":"p","args":{{"epoch":{epoch}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::EpochFenced { executor, kind, at } => {
                entries.push(format!(
                    r#"{{"name":"fenced:{kind}","ph":"i","ts":{},"pid":0,"tid":{executor},"s":"t","args":{{}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::Degraded { live, floor, at } => {
                entries.push(format!(
                    r#"{{"name":"degraded","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"live":{live},"floor":{floor}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::DegradedRecovered { waited, at } => {
                entries.push(format!(
                    r#"{{"name":"degraded-recovered","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"waited_s":{waited:?}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::Log {
                level,
                scope,
                message,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"log-{}","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"scope":"{}","message":"{}"}}}}"#,
                    level.as_str(),
                    us(*at),
                    esc_json(scope),
                    esc_json(message)
                ));
            }
            LiveEvent::TaskSpan {
                job,
                stage,
                task,
                attempt,
                epoch,
                executor,
                start,
                end,
                ok,
            } => {
                let dur = ((end - start).max(0.0) * 1e6).round() as i64;
                entries.push(format!(
                    r#"{{"name":"span:j{job}:s{stage}:t{task}:a{attempt}","ph":"X","ts":{},"dur":{dur},"pid":1,"tid":{executor},"args":{{"job":{job},"stage":{stage},"task":{task},"attempt":{attempt},"epoch":{epoch},"ok":{ok}}}}}"#,
                    us(*start)
                ));
            }
            LiveEvent::JobStatusChanged {
                job,
                tenant,
                status,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"job{job}:{status}","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"tenant":"{}"}}}}"#,
                    us(*at),
                    esc_json(tenant)
                ));
            }
            // Journal lines are the streaming plane's payload, not trace
            // geometry — the journal artifact itself is the archival form.
            LiveEvent::JournalLine { .. } => {}
        }
    }
    format!("[{}]", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat(executor: usize, at: f64) -> LiveEvent {
        LiveEvent::Heartbeat {
            executor,
            gap: 0.05,
            at,
        }
    }

    #[test]
    fn push_and_snapshot_round_trip_in_time_order() {
        let rec = FlightRecorder::new(16);
        rec.push(heartbeat(1, 2.0));
        rec.push(heartbeat(0, 1.0));
        rec.push(LiveEvent::Trace(TraceEvent::StageStarted {
            stage: 0,
            at: 0.5,
        }));
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        for pair in events.windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.dropped(), 0);
        // Snapshot is non-destructive; drain clears.
        assert_eq!(rec.snapshot().len(), 3);
        assert_eq!(rec.drain().len(), 3);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.push(heartbeat(i, i as f64));
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.dropped(), 6);
        // Only the newest four survive.
        let ats: Vec<f64> = events.iter().map(LiveEvent::at).collect();
        assert_eq!(ats, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.enabled());
        rec.push(heartbeat(0, 1.0));
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.recorded(), 0);
        assert_eq!(rec.chrome_trace().matches("heartbeat").count(), 0);
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let rec = FlightRecorder::new(4096);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        rec.push(heartbeat(t, i as f64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 800);
        assert_eq!(rec.snapshot().len(), 800);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn subscribers_receive_pushed_events_in_order() {
        let rec = FlightRecorder::new(16);
        let sub = rec.subscribe(8);
        assert_eq!(rec.subscribers(), 1);
        for i in 0..5 {
            rec.push(heartbeat(i, i as f64));
        }
        let got = sub.drain();
        assert_eq!(got.len(), 5);
        for (i, (seq, ev)) in got.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(ev.at(), i as f64);
        }
        assert_eq!(sub.dropped(), 0);
        // The ring is unaffected by fan-out.
        assert_eq!(rec.snapshot().len(), 5);
    }

    #[test]
    fn slow_subscriber_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(64);
        let sub = rec.subscribe(4);
        for i in 0..10 {
            rec.push(heartbeat(i, i as f64));
        }
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.dropped(), 6);
        assert_eq!(rec.subscriber_dropped(), 6);
        let ats: Vec<f64> = sub.drain().iter().map(|(_, e)| e.at()).collect();
        assert_eq!(ats, vec![6.0, 7.0, 8.0, 9.0]);
        // The ring itself dropped nothing; the sinks are independent.
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn dropped_subscription_is_garbage_collected() {
        let rec = FlightRecorder::new(16);
        let sub = rec.subscribe(4);
        drop(sub);
        rec.push(heartbeat(0, 0.0)); // GC pass runs inside push
        assert_eq!(rec.subscribers(), 0);
        rec.push(heartbeat(0, 1.0));
        assert_eq!(rec.snapshot().len(), 2);
    }

    #[test]
    fn disabled_ring_still_fans_out_to_subscribers() {
        let rec = FlightRecorder::disabled();
        let sub = rec.subscribe(8);
        rec.push(heartbeat(0, 0.5));
        assert_eq!(sub.len(), 1);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn zeta_streamed_counts_accumulate_per_executor() {
        let rec = FlightRecorder::new(4);
        assert_eq!(rec.zeta_streamed(3), 0);
        rec.note_zeta_streamed(3);
        rec.note_zeta_streamed(3);
        rec.note_zeta_streamed(0);
        assert_eq!(rec.zeta_streamed(3), 2);
        assert_eq!(rec.zeta_streamed(0), 1);
        assert_eq!(rec.zeta_streamed(7), 0);
    }

    #[test]
    fn task_span_renders_as_complete_event_with_trace_key() {
        let rec = FlightRecorder::new(8);
        rec.push(LiveEvent::TaskSpan {
            job: 3,
            stage: 1,
            task: 7,
            attempt: 0,
            epoch: 2,
            executor: 4,
            start: 0.5,
            end: 0.75,
            ok: true,
        });
        let json = rec.chrome_trace();
        assert!(json.contains(r#""name":"span:j3:s1:t7:a0","ph":"X""#));
        assert!(json.contains(r#""ts":500000,"dur":250000"#));
        assert!(json.contains(r#""epoch":2,"ok":true"#));
    }

    #[test]
    fn chrome_trace_merges_sim_vocabulary_and_wire_events() {
        let rec = FlightRecorder::new(64);
        rec.push(LiveEvent::Trace(TraceEvent::StageStarted {
            stage: 0,
            at: 0.0,
        }));
        rec.push(LiveEvent::FrameSent {
            executor: 1,
            kind: "register",
            bytes: 21,
            at: 0.1,
        });
        rec.push(LiveEvent::FrameReceived {
            executor: 1,
            kind: "heartbeat",
            bytes: 13,
            at: 0.2,
        });
        rec.push(LiveEvent::Trace(TraceEvent::PoolResized {
            executor: 1,
            to: 4,
            at: 0.3,
        }));
        rec.push(LiveEvent::SlotRegistryChanged {
            executor: 1,
            slots: 4,
            free: 4,
            at: 0.4,
        });
        rec.push(LiveEvent::Log {
            level: LogLevel::Info,
            scope: "driver".into(),
            message: "say \"hi\"\n".into(),
            at: 0.5,
        });
        let json = rec.chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The sim vocabulary renders through the shared serializer...
        assert!(json.contains(r#""name":"stage-0","ph":"B""#));
        assert!(json.contains(r#""name":"pool-size-exec1","ph":"C""#));
        // ...wire events land on pid 2 with a cumulative byte counter...
        assert!(json.contains(r#""name":"send:register","ph":"i""#));
        assert!(json.contains(r#""name":"recv:heartbeat","ph":"i""#));
        assert!(json.contains(r#""sent":21,"received":13"#));
        // ...registry changes become a slots counter track...
        assert!(json.contains(r#""name":"slots-exec1","ph":"C""#));
        assert!(json.contains(r#""slots":4,"free":4"#));
        // ...and log messages are JSON-escaped.
        assert!(json.contains(r#""message":"say \"hi\"\n""#));
        // Process rows are named for Perfetto.
        assert!(json.contains(r#""name":"process_name","ph":"M","pid":2"#));
    }
}
