//! The flight recorder: a lock-free-ish bounded ring buffer of live
//! runtime events, merged into one clock-aligned Chrome trace.
//!
//! Every component of a loopback cluster — the driver's event loop, each
//! executor's serve loop, heartbeat threads, pool workers — pushes
//! [`LiveEvent`]s into one shared [`FlightRecorder`]. The recorder is a
//! fixed-capacity ring: a push claims the next sequence number with one
//! atomic `fetch_add` and stores the event in slot `seq % capacity` under
//! a per-slot mutex, so writers never contend on a global lock and old
//! events are overwritten (and counted as dropped) rather than growing
//! memory without bound — the "black box" discipline of a real flight
//! recorder.
//!
//! All timestamps are seconds since the recorder's epoch, the single
//! `Instant` shared by the whole cluster. That is what makes the merged
//! export clock-aligned: a driver-side `TaskStarted` and the executor-side
//! frame that caused it land on one timeline without any skew correction.
//!
//! The scheduler-visible vocabulary is [`sae_dag::TraceEvent`] — the same
//! enum the simulator records — serialized by the same
//! [`sae_dag::append_chrome_entries`] rows, so a sim trace and a live
//! trace of the same job overlay in Perfetto. Around it, live-only events
//! capture what the simulator has no wire for: frames sent and received,
//! heartbeats, slot-registry changes, and log lines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sae_dag::{append_chrome_entries, TraceEvent};

use crate::log::LogLevel;

/// One event on the live cluster's merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveEvent {
    /// A scheduler-visible event, in the simulator's shared vocabulary.
    Trace(TraceEvent),
    /// A frame left for the wire.
    FrameSent {
        /// Executor the frame concerns (the sender for executor→driver
        /// traffic, the destination for driver→executor traffic).
        executor: usize,
        /// Frame kind (see [`crate::wire::Frame::kind_str`]).
        kind: &'static str,
        /// Encoded size in bytes, length prefix included.
        bytes: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// A frame arrived off the wire.
    FrameReceived {
        /// Executor the frame concerns.
        executor: usize,
        /// Frame kind (see [`crate::wire::Frame::kind_str`]).
        kind: &'static str,
        /// Encoded size in bytes, length prefix included.
        bytes: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The driver observed a heartbeat from an executor.
    Heartbeat {
        /// The executor that beat.
        executor: usize,
        /// Seconds of silence this beat ended.
        gap: f64,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The driver's slot registry changed for one executor.
    SlotRegistryChanged {
        /// The executor whose entry changed.
        executor: usize,
        /// Its total slots (last announced pool size).
        slots: usize,
        /// Slots not currently running a task.
        free: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The nemesis wire layer injected one scheduled fault window.
    FaultInjected {
        /// The executor whose link the fault hit.
        executor: usize,
        /// The fault kind ([`sae_dag::WireFaultKind::label`], or
        /// `"disk"` / `"crash"` for the chaos agent's faults).
        kind: &'static str,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// A dead or partitioned executor re-registered (or was resurrected
    /// on evidence of life) and rejoined the fleet.
    ExecutorReincarnated {
        /// The reborn executor.
        executor: usize,
        /// Its new registration epoch.
        epoch: u64,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The driver dropped a frame from a superseded incarnation.
    EpochFenced {
        /// The executor whose stale incarnation sent the frame.
        executor: usize,
        /// Frame kind (see [`crate::wire::Frame::kind_str`]).
        kind: &'static str,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The live-executor count fell below the configured floor: the
    /// driver parked the job instead of failing fast.
    Degraded {
        /// Usable executors at the moment of entry.
        live: usize,
        /// The configured `min_live_executors` floor.
        floor: usize,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// The fleet recovered above the floor and the job resumed.
    DegradedRecovered {
        /// Seconds spent parked.
        waited: f64,
        /// Seconds since the recorder epoch.
        at: f64,
    },
    /// A log line emitted through [`crate::log::Logger`].
    Log {
        /// Severity.
        level: LogLevel,
        /// The component that logged ("driver", "executor-2", ...).
        scope: String,
        /// The rendered message.
        message: String,
        /// Seconds since the recorder epoch.
        at: f64,
    },
}

impl LiveEvent {
    /// The event's timestamp in seconds since the recorder epoch.
    pub fn at(&self) -> f64 {
        match self {
            LiveEvent::Trace(e) => e.at(),
            LiveEvent::FrameSent { at, .. }
            | LiveEvent::FrameReceived { at, .. }
            | LiveEvent::Heartbeat { at, .. }
            | LiveEvent::SlotRegistryChanged { at, .. }
            | LiveEvent::FaultInjected { at, .. }
            | LiveEvent::ExecutorReincarnated { at, .. }
            | LiveEvent::EpochFenced { at, .. }
            | LiveEvent::Degraded { at, .. }
            | LiveEvent::DegradedRecovered { at, .. }
            | LiveEvent::Log { at, .. } => *at,
        }
    }
}

struct Inner {
    slots: Vec<Mutex<Option<(u64, LiveEvent)>>>,
    cursor: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

/// A shared, bounded, overwrite-on-full event ring.
///
/// Cloning shares the ring; capacity 0 disables recording entirely (every
/// push is a branch and a return — the configuration the overhead
/// benchmark compares against).
///
/// # Examples
///
/// ```
/// use sae_live::recorder::{FlightRecorder, LiveEvent};
///
/// let rec = FlightRecorder::new(8);
/// rec.push(LiveEvent::Heartbeat { executor: 0, gap: 0.1, at: rec.now() });
/// let events = rec.snapshot();
/// assert_eq!(events.len(), 1);
/// ```
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a ring of `capacity` slots with the epoch set to now.
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// Creates a ring whose timestamps count from `epoch`.
    ///
    /// Hand the same recorder (or at least the same epoch) to every
    /// component of a cluster: clock alignment of the merged trace is
    /// exactly "everyone measures seconds since this one instant".
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                cursor: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                epoch,
            }),
        }
    }

    /// A recorder that records nothing (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether pushes are recorded at all.
    pub fn enabled(&self) -> bool {
        !self.inner.slots.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// The epoch all timestamps count from.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Seconds elapsed since the epoch — the timestamp for a new event.
    pub fn now(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// Records one event; the oldest event is overwritten when full.
    pub fn push(&self, event: LiveEvent) {
        let capacity = self.inner.slots.len();
        if capacity == 0 {
            return;
        }
        let seq = self.inner.cursor.fetch_add(1, Ordering::Relaxed);
        let mut slot = self.inner.slots[seq as usize % capacity].lock();
        if slot.is_some() {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some((seq, event));
    }

    /// Total events ever pushed (recorded or overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrites.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the ring's current contents, oldest first.
    ///
    /// Events are ordered by timestamp (ties broken by push order):
    /// components push concurrently, and some events — the ζ samples an
    /// executor replays from its decision journal at shutdown — are pushed
    /// after the instants they describe.
    pub fn snapshot(&self) -> Vec<LiveEvent> {
        let mut pairs: Vec<(u64, LiveEvent)> = self
            .inner
            .slots
            .iter()
            .filter_map(|s| s.lock().clone())
            .collect();
        pairs.sort_by(|a, b| {
            a.1.at()
                .partial_cmp(&b.1.at())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.into_iter().map(|(_, e)| e).collect()
    }

    /// Like [`FlightRecorder::snapshot`], additionally clearing the ring.
    pub fn drain(&self) -> Vec<LiveEvent> {
        let mut pairs: Vec<(u64, LiveEvent)> = self
            .inner
            .slots
            .iter()
            .filter_map(|s| s.lock().take())
            .collect();
        pairs.sort_by(|a, b| {
            a.1.at()
                .partial_cmp(&b.1.at())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.into_iter().map(|(_, e)| e).collect()
    }

    /// Exports the ring's contents as a Chrome trace (see [`chrome_trace`]).
    pub fn chrome_trace(&self) -> String {
        chrome_trace(&self.snapshot())
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders events as a Chrome trace-event JSON array.
///
/// Row layout extends the simulator's export ([`sae_dag`]'s pid 0 =
/// driver, pid 1 = executors) with pid 2 = the wire: frame and heartbeat
/// instants per executor row, plus a cumulative `wire-bytes` counter
/// track. Slot-registry changes become per-executor `slots-exec{e}`
/// counter tracks on the driver process, alongside the `pool-size-exec{e}`
/// and `zeta-exec{e}` tracks that [`sae_dag::append_chrome_entries`] emits
/// for `PoolResized` / `IntervalClosed` events. Open the output in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace(events: &[LiveEvent]) -> String {
    let us = |t: f64| (t * 1e6).round() as i64;
    let mut entries: Vec<String> = Vec::with_capacity(events.len() + 3);
    for (pid, name) in [(0, "driver"), (1, "executors"), (2, "wire")] {
        entries.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"args":{{"name":"{name}"}}}}"#
        ));
    }
    let (mut wire_sent, mut wire_received) = (0u64, 0u64);
    for event in events {
        match event {
            LiveEvent::Trace(e) => append_chrome_entries(e, &mut entries),
            LiveEvent::FrameSent {
                executor,
                kind,
                bytes,
                at,
            } => {
                wire_sent += *bytes as u64;
                entries.push(format!(
                    r#"{{"name":"send:{kind}","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"t","args":{{"bytes":{bytes}}}}}"#,
                    us(*at)
                ));
                entries.push(format!(
                    r#"{{"name":"wire-bytes","ph":"C","ts":{},"pid":2,"tid":0,"args":{{"sent":{wire_sent},"received":{wire_received}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::FrameReceived {
                executor,
                kind,
                bytes,
                at,
            } => {
                wire_received += *bytes as u64;
                entries.push(format!(
                    r#"{{"name":"recv:{kind}","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"t","args":{{"bytes":{bytes}}}}}"#,
                    us(*at)
                ));
                entries.push(format!(
                    r#"{{"name":"wire-bytes","ph":"C","ts":{},"pid":2,"tid":0,"args":{{"sent":{wire_sent},"received":{wire_received}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::Heartbeat { executor, gap, at } => {
                let gap = if gap.is_finite() { *gap } else { 0.0 };
                entries.push(format!(
                    r#"{{"name":"heartbeat","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"t","args":{{"gap_s":{gap:?}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::SlotRegistryChanged {
                executor,
                slots,
                free,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"slots-exec{executor}","ph":"C","ts":{},"pid":0,"tid":{executor},"args":{{"slots":{slots},"free":{free}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::FaultInjected { executor, kind, at } => {
                entries.push(format!(
                    r#"{{"name":"fault:{kind}","ph":"i","ts":{},"pid":2,"tid":{executor},"s":"p","args":{{}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::ExecutorReincarnated {
                executor,
                epoch,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"reincarnated","ph":"i","ts":{},"pid":0,"tid":{executor},"s":"p","args":{{"epoch":{epoch}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::EpochFenced { executor, kind, at } => {
                entries.push(format!(
                    r#"{{"name":"fenced:{kind}","ph":"i","ts":{},"pid":0,"tid":{executor},"s":"t","args":{{}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::Degraded { live, floor, at } => {
                entries.push(format!(
                    r#"{{"name":"degraded","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"live":{live},"floor":{floor}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::DegradedRecovered { waited, at } => {
                entries.push(format!(
                    r#"{{"name":"degraded-recovered","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"waited_s":{waited:?}}}}}"#,
                    us(*at)
                ));
            }
            LiveEvent::Log {
                level,
                scope,
                message,
                at,
            } => {
                entries.push(format!(
                    r#"{{"name":"log-{}","ph":"i","ts":{},"pid":0,"tid":0,"s":"g","args":{{"scope":"{}","message":"{}"}}}}"#,
                    level.as_str(),
                    us(*at),
                    esc_json(scope),
                    esc_json(message)
                ));
            }
        }
    }
    format!("[{}]", entries.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heartbeat(executor: usize, at: f64) -> LiveEvent {
        LiveEvent::Heartbeat {
            executor,
            gap: 0.05,
            at,
        }
    }

    #[test]
    fn push_and_snapshot_round_trip_in_time_order() {
        let rec = FlightRecorder::new(16);
        rec.push(heartbeat(1, 2.0));
        rec.push(heartbeat(0, 1.0));
        rec.push(LiveEvent::Trace(TraceEvent::StageStarted {
            stage: 0,
            at: 0.5,
        }));
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        for pair in events.windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
        assert_eq!(rec.recorded(), 3);
        assert_eq!(rec.dropped(), 0);
        // Snapshot is non-destructive; drain clears.
        assert_eq!(rec.snapshot().len(), 3);
        assert_eq!(rec.drain().len(), 3);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.push(heartbeat(i, i as f64));
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.dropped(), 6);
        // Only the newest four survive.
        let ats: Vec<f64> = events.iter().map(LiveEvent::at).collect();
        assert_eq!(ats, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.enabled());
        rec.push(heartbeat(0, 1.0));
        assert!(rec.snapshot().is_empty());
        assert_eq!(rec.recorded(), 0);
        assert_eq!(rec.chrome_trace().matches("heartbeat").count(), 0);
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let rec = FlightRecorder::new(4096);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        rec.push(heartbeat(t, i as f64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 800);
        assert_eq!(rec.snapshot().len(), 800);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn chrome_trace_merges_sim_vocabulary_and_wire_events() {
        let rec = FlightRecorder::new(64);
        rec.push(LiveEvent::Trace(TraceEvent::StageStarted {
            stage: 0,
            at: 0.0,
        }));
        rec.push(LiveEvent::FrameSent {
            executor: 1,
            kind: "register",
            bytes: 21,
            at: 0.1,
        });
        rec.push(LiveEvent::FrameReceived {
            executor: 1,
            kind: "heartbeat",
            bytes: 13,
            at: 0.2,
        });
        rec.push(LiveEvent::Trace(TraceEvent::PoolResized {
            executor: 1,
            to: 4,
            at: 0.3,
        }));
        rec.push(LiveEvent::SlotRegistryChanged {
            executor: 1,
            slots: 4,
            free: 4,
            at: 0.4,
        });
        rec.push(LiveEvent::Log {
            level: LogLevel::Info,
            scope: "driver".into(),
            message: "say \"hi\"\n".into(),
            at: 0.5,
        });
        let json = rec.chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // The sim vocabulary renders through the shared serializer...
        assert!(json.contains(r#""name":"stage-0","ph":"B""#));
        assert!(json.contains(r#""name":"pool-size-exec1","ph":"C""#));
        // ...wire events land on pid 2 with a cumulative byte counter...
        assert!(json.contains(r#""name":"send:register","ph":"i""#));
        assert!(json.contains(r#""name":"recv:heartbeat","ph":"i""#));
        assert!(json.contains(r#""sent":21,"received":13"#));
        // ...registry changes become a slots counter track...
        assert!(json.contains(r#""name":"slots-exec1","ph":"C""#));
        assert!(json.contains(r#""slots":4,"free":4"#));
        // ...and log messages are JSON-escaped.
        assert!(json.contains(r#""message":"say \"hi\"\n""#));
        // Process rows are named for Perfetto.
        assert!(json.contains(r#""name":"process_name","ph":"M","pid":2"#));
    }
}
