//! The observability quick start: one loopback Terasort, three artifacts.
//!
//! Runs a traced 3-executor cluster and leaves behind
//!
//! * `trace.json`    — the merged Chrome/Perfetto flight-recorder trace
//!   (open in `ui.perfetto.dev` or `chrome://tracing`);
//! * `journal.jsonl` — the MAPE-K decision journal, one record per
//!   adaptation interval per executor;
//! * `metrics.prom`  — the final metric registry in Prometheus text
//!   exposition, plus `metrics.jsonl` with the periodic snapshots.
//!
//! then prints the ζ-explain table so the adaptation story is readable
//! without any external tool:
//!
//! ```sh
//! cargo run --release -p sae-live --example flight_recorder
//! ```

use std::time::Duration;

use sae_core::MapeConfig;
use sae_live::{terasort, ClusterConfig, LiveCluster};

fn main() {
    // Artifacts must outlive the process for the user to open them, so
    // they go to a fixed directory under the system temp dir, not an
    // auto-removed scratch dir.
    let out = std::env::temp_dir().join("sae-flight-recorder-artifacts");
    std::fs::create_dir_all(&out).expect("artifact dir");

    let trace = out.join("trace.json");
    let journal = out.join("journal.jsonl");
    let prom = out.join("metrics.prom");
    let snapshots = out.join("metrics.jsonl");

    let mut cluster = LiveCluster::launch(ClusterConfig {
        executors: 3,
        mape: MapeConfig::new(2, 8),
        trace_out: Some(trace.clone()),
        journal_out: Some(journal.clone()),
        metrics_out: Some(prom.clone()),
        metrics_jsonl: Some(snapshots.clone()),
        metrics_interval: Duration::from_millis(100),
        ..ClusterConfig::default()
    })
    .expect("launch live cluster");

    let report = cluster.run(&terasort(24, 20_000, 2026)).expect("terasort");
    let records = cluster.journal_records();
    cluster.shutdown().expect("clean shutdown");

    println!(
        "ran {} stages in {:.2}s with {} PoolSizeChanged round-trips\n",
        report.stages.len(),
        report.runtime_secs,
        report.decisions.len()
    );
    println!("{}", sae_core::zeta_explain(&records));
    println!("artifacts:");
    for path in [&trace, &journal, &prom, &snapshots] {
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!("  {:>8} bytes  {}", len, path.display());
    }
}
