//! Property-based tests for the storage models.

use proptest::prelude::*;
use sae_storage::{ContentionCurve, DeviceProfile, DiskClass, NodeVariability, VariabilityConfig};

fn arb_curve() -> impl Strategy<Value = ContentionCurve> {
    (
        0.1f64..=1.0, // single-stream fraction
        0.5f64..10.0, // ramp tau
        0.0f64..64.0, // free streams
        0.0f64..0.2,  // alpha
        0.5f64..2.5,  // beta
    )
        .prop_map(|(a, tau, free, alpha, beta)| ContentionCurve::new(a, tau, free, alpha, beta))
}

proptest! {
    /// Efficiency is always in (0, 1] for any parameters and stream count.
    #[test]
    fn efficiency_always_bounded(curve in arb_curve(), n in 0usize..600) {
        let e = curve.efficiency(n);
        prop_assert!(e > 0.0 && e <= 1.0, "eff({n}) = {e}");
    }

    /// Past the free-stream knee, efficiency is non-increasing.
    #[test]
    fn efficiency_monotone_past_knee(
        alpha in 0.001f64..0.2,
        beta in 1.0f64..2.5,
        free in 1.0f64..16.0,
    ) {
        let curve = ContentionCurve::new(1.0, 1.0, free, alpha, beta);
        let start = free.ceil() as usize + 1;
        let mut prev = curve.efficiency(start);
        for n in (start + 1)..(start + 200) {
            let e = curve.efficiency(n);
            prop_assert!(e <= prev + 1e-12, "eff must not rise past knee: {e} > {prev}");
            prev = e;
        }
    }

    /// Device bandwidth is finite, non-negative, and zero only when idle.
    #[test]
    fn bandwidth_sane_for_any_mix(
        reads in 0usize..100,
        writes in 0usize..100,
        serves in 0usize..100,
    ) {
        for profile in [DeviceProfile::hdd_7200(), DeviceProfile::ssd_sata()] {
            let bw = profile.bandwidth(&[
                (DiskClass::Read, reads),
                (DiskClass::Write, writes),
                (DiskClass::ShuffleRead, serves),
            ]);
            prop_assert!(bw.is_finite());
            if reads + writes + serves == 0 {
                prop_assert_eq!(bw, 0.0);
            } else {
                prop_assert!(bw > 0.0);
                prop_assert!(bw <= profile.read_peak().max(profile.write_peak()));
            }
        }
    }

    /// Mixing classes never outperforms the best pure class at the same
    /// total concurrency.
    #[test]
    fn mixing_never_beats_pure_traffic(n_read in 1usize..40, n_write in 1usize..40) {
        let hdd = DeviceProfile::hdd_7200();
        let total = n_read + n_write;
        let mixed = hdd.bandwidth(&[(DiskClass::Read, n_read), (DiskClass::Write, n_write)]);
        let pure_read = hdd.bandwidth(&[(DiskClass::Read, total)]);
        let pure_write = hdd.bandwidth(&[(DiskClass::Write, total)]);
        prop_assert!(mixed <= pure_read.max(pure_write) + 1e-9);
    }

    /// Variability factors always respect the configured clamps and are
    /// deterministic per (seed, node).
    #[test]
    fn variability_clamped_and_deterministic(seed in any::<u64>(), node in 0usize..1000) {
        let cfg = VariabilityConfig::das5();
        let v = NodeVariability::new(cfg, seed);
        let f1 = v.speed_factor(node);
        let f2 = v.speed_factor(node);
        prop_assert_eq!(f1.to_bits(), f2.to_bits());
        prop_assert!(f1 >= cfg.min_factor && f1 <= cfg.max_factor);
    }
}
