//! Per-node performance variability (Figure 3 of the paper).

use sae_sim::rng::DeterministicRng;

/// Configuration for sampling per-node disk speed factors.
///
/// Real clusters show substantial I/O performance spread even across
/// identically specced nodes (Figure 3: reading/writing 30 GB varies by
/// \>2x across DAS-5 nodes). We model a node's speed as
/// `1 / lognormal(0, sigma)`, optionally degraded further for a small
/// fraction of "outlier" nodes (failing disks, background daemons).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariabilityConfig {
    /// Sigma of the lognormal slowness distribution (0 = homogeneous).
    pub sigma: f64,
    /// Probability that a node is a slow outlier.
    pub outlier_probability: f64,
    /// Speed multiplier applied to outlier nodes (e.g. 0.45).
    pub outlier_factor: f64,
    /// Lower clamp on the final speed factor.
    pub min_factor: f64,
    /// Upper clamp on the final speed factor.
    pub max_factor: f64,
}

impl VariabilityConfig {
    /// Variability matching the DAS-5 measurements of Figure 3: most nodes
    /// within ±15%, a few slow outliers around half speed.
    pub fn das5() -> Self {
        Self {
            sigma: 0.08,
            outlier_probability: 0.07,
            outlier_factor: 0.45,
            min_factor: 0.3,
            max_factor: 1.3,
        }
    }

    /// No variability: every node runs at exactly factor 1.0.
    pub fn homogeneous() -> Self {
        Self {
            sigma: 0.0,
            outlier_probability: 0.0,
            outlier_factor: 1.0,
            min_factor: 1.0,
            max_factor: 1.0,
        }
    }
}

impl Default for VariabilityConfig {
    fn default() -> Self {
        Self::homogeneous()
    }
}

/// Deterministic sampler of per-node speed factors.
///
/// The factor for a node depends only on `(seed, node_id)`, so cluster
/// construction order does not perturb results.
///
/// # Examples
///
/// ```
/// use sae_storage::{NodeVariability, VariabilityConfig};
///
/// let v = NodeVariability::new(VariabilityConfig::das5(), 42);
/// assert_eq!(v.speed_factor(3), v.speed_factor(3)); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct NodeVariability {
    config: VariabilityConfig,
    seed: u64,
}

impl NodeVariability {
    /// Creates a sampler with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (negative sigma,
    /// probability outside `[0,1]`, non-positive or inverted clamps).
    pub fn new(config: VariabilityConfig, seed: u64) -> Self {
        assert!(config.sigma >= 0.0, "sigma must be non-negative");
        assert!(
            (0.0..=1.0).contains(&config.outlier_probability),
            "outlier probability must be in [0, 1]"
        );
        assert!(
            config.outlier_factor > 0.0 && config.outlier_factor <= 1.0,
            "outlier factor must be in (0, 1]"
        );
        assert!(
            config.min_factor > 0.0 && config.min_factor <= config.max_factor,
            "clamps must satisfy 0 < min <= max"
        );
        Self { config, seed }
    }

    /// The speed factor for `node_id`, in `[min_factor, max_factor]`.
    pub fn speed_factor(&self, node_id: usize) -> f64 {
        let mut rng = DeterministicRng::seed(
            self.seed ^ (node_id as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let mut factor = if self.config.sigma == 0.0 {
            1.0
        } else {
            1.0 / rng.lognormal(0.0, self.config.sigma)
        };
        if rng.uniform() < self.config.outlier_probability {
            factor *= self.config.outlier_factor;
        }
        factor.clamp(self.config.min_factor, self.config.max_factor)
    }

    /// The configuration in use.
    pub fn config(&self) -> VariabilityConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_is_exactly_one() {
        let v = NodeVariability::new(VariabilityConfig::homogeneous(), 1);
        for node in 0..20 {
            assert_eq!(v.speed_factor(node), 1.0);
        }
    }

    #[test]
    fn deterministic_per_node() {
        let a = NodeVariability::new(VariabilityConfig::das5(), 7);
        let b = NodeVariability::new(VariabilityConfig::das5(), 7);
        for node in 0..50 {
            assert_eq!(
                a.speed_factor(node).to_bits(),
                b.speed_factor(node).to_bits()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = NodeVariability::new(VariabilityConfig::das5(), 1);
        let b = NodeVariability::new(VariabilityConfig::das5(), 2);
        let differs = (0..20).any(|n| a.speed_factor(n) != b.speed_factor(n));
        assert!(differs);
    }

    #[test]
    fn factors_respect_clamps() {
        let cfg = VariabilityConfig::das5();
        let v = NodeVariability::new(cfg, 99);
        for node in 0..500 {
            let f = v.speed_factor(node);
            assert!(f >= cfg.min_factor && f <= cfg.max_factor, "factor {f}");
        }
    }

    #[test]
    fn das5_produces_slow_outliers() {
        let v = NodeVariability::new(VariabilityConfig::das5(), 42);
        let slow = (0..500)
            .map(|n| v.speed_factor(n))
            .filter(|&f| f < 0.7)
            .count();
        assert!(slow > 5, "expected some outliers, got {slow}");
        assert!(slow < 120, "too many outliers: {slow}");
    }

    #[test]
    fn das5_mass_near_one() {
        let v = NodeVariability::new(VariabilityConfig::das5(), 42);
        let near = (0..500)
            .map(|n| v.speed_factor(n))
            .filter(|&f| (0.85..=1.15).contains(&f))
            .count();
        assert!(near > 300, "most nodes should be near 1.0, got {near}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let mut cfg = VariabilityConfig::das5();
        cfg.outlier_probability = 1.5;
        let _ = NodeVariability::new(cfg, 0);
    }
}
