//! Storage device models for the SAE simulator.
//!
//! The paper's central observation is that the effective throughput of a
//! storage device depends on how many threads hit it concurrently: an HDD
//! peaks at a handful of streams and collapses under seek thrash beyond
//! that, while an SSD sustains many concurrent readers but pays
//! erase-block overhead for concurrent writers (§6.3). This crate expresses
//! those behaviours as [`DeviceProfile`]s that plug into `sae-sim`'s
//! processor-sharing resources via [`Disk`].
//!
//! It also models the per-node performance variability of real clusters
//! (Figure 3 of the paper) through [`NodeVariability`].
//!
//! # Examples
//!
//! ```
//! use sae_storage::{DeviceProfile, DiskClass};
//!
//! let hdd = DeviceProfile::hdd_7200();
//! // Pure sequential read bandwidth decays once seek thrash kicks in.
//! let few = hdd.bandwidth(&[(DiskClass::Read, 4)]);
//! let many = hdd.bandwidth(&[(DiskClass::Read, 32)]);
//! assert!(few > many);
//!
//! let ssd = DeviceProfile::ssd_sata();
//! // SSD reads tolerate high concurrency far better.
//! let ssd_ratio = ssd.bandwidth(&[(DiskClass::Read, 32)])
//!     / ssd.bandwidth(&[(DiskClass::Read, 4)]);
//! let hdd_ratio = many / few;
//! assert!(ssd_ratio > hdd_ratio);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod disk;
mod profile;
mod variability;

pub use curve::ContentionCurve;
pub use disk::{Disk, DiskClass};
pub use profile::DeviceProfile;
pub use variability::{NodeVariability, VariabilityConfig};
