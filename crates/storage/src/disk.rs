//! Disk devices bound to simulation resources.

use sae_sim::{CapacityCurve, Kernel, ResourceId};

use crate::profile::DeviceProfile;

/// Traffic classes on a disk. The numeric values are the `sae-sim` flow
/// classes used on the disk's resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskClass {
    /// Sequential reads of input data (HDFS block reads).
    Read,
    /// Writes: output data, shuffle spill, replication traffic.
    Write,
    /// Reads serving shuffle fetches: many small map-output segments.
    ShuffleRead,
}

impl DiskClass {
    /// The `sae-sim` flow class for this traffic class.
    pub fn flow_class(self) -> u8 {
        match self {
            DiskClass::Read => 0,
            DiskClass::Write => 1,
            DiskClass::ShuffleRead => 2,
        }
    }

    /// All traffic classes.
    pub const ALL: [DiskClass; 3] = [DiskClass::Read, DiskClass::Write, DiskClass::ShuffleRead];
}

/// A disk device registered on a simulation kernel.
///
/// The disk's capacity curve evaluates the bound [`DeviceProfile`] against
/// the live class mix on every population change, then scales by the node's
/// speed factor (per-node variability, Figure 3).
///
/// # Examples
///
/// ```
/// use sae_sim::Kernel;
/// use sae_storage::{DeviceProfile, Disk, DiskClass};
///
/// let mut kernel: Kernel<u32> = Kernel::new();
/// let disk = Disk::register(&mut kernel, DeviceProfile::hdd_7200(), 1.0);
/// kernel.start_flow(disk.resource(), DiskClass::Read.flow_class(), 100.0, 0);
/// kernel.run_to_idle();
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    resource: ResourceId,
    profile: DeviceProfile,
    speed_factor: f64,
}

impl Disk {
    /// Registers a disk with the given profile and node speed factor on the
    /// kernel and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `speed_factor` is not finite and positive.
    pub fn register<P>(kernel: &mut Kernel<P>, profile: DeviceProfile, speed_factor: f64) -> Self {
        assert!(
            speed_factor.is_finite() && speed_factor > 0.0,
            "speed factor must be finite and positive, got {speed_factor}"
        );
        let curve_profile = profile.clone();
        let curve = CapacityCurve::from_fn(move |counts| {
            let streams = [
                (DiskClass::Read, counts.of(DiskClass::Read.flow_class())),
                (DiskClass::Write, counts.of(DiskClass::Write.flow_class())),
                (
                    DiskClass::ShuffleRead,
                    counts.of(DiskClass::ShuffleRead.flow_class()),
                ),
            ];
            curve_profile.bandwidth(&streams) * speed_factor
        })
        // The per-stream cap stems from request-response think time in the
        // task, not from the device, so it does NOT scale with the node's
        // speed factor — slow disks therefore saturate at fewer streams,
        // which is why different executors can settle on different thread
        // counts (Figure 6).
        .with_per_flow_cap(profile.per_stream_cap());
        let resource = kernel.add_resource(curve);
        Self {
            resource,
            profile,
            speed_factor,
        }
    }

    /// The simulation resource backing this disk.
    pub fn resource(&self) -> ResourceId {
        self.resource
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The node's speed factor applied to all bandwidths.
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sae_sim::Occurrence;

    fn time_to_read(profile: DeviceProfile, factor: f64, streams: usize) -> f64 {
        let mut kernel: Kernel<u32> = Kernel::new();
        let disk = Disk::register(&mut kernel, profile, factor);
        for i in 0..streams {
            kernel.start_flow(
                disk.resource(),
                DiskClass::Read.flow_class(),
                1000.0,
                i as u32,
            );
        }
        let mut last = 0.0;
        while let Some(occ) = kernel.next() {
            if let Occurrence::FlowCompleted { at, .. } = occ {
                last = at.seconds();
            }
        }
        last
    }

    #[test]
    fn single_read_matches_profile_rate() {
        // A lone stream is limited by the per-stream cap, not the device.
        let hdd = DeviceProfile::hdd_7200();
        let rate = hdd
            .bandwidth(&[(DiskClass::Read, 1)])
            .min(hdd.per_stream_cap());
        let expected = 1000.0 / rate;
        let measured = time_to_read(hdd, 1.0, 1);
        assert!((measured - expected).abs() < 1e-6);
    }

    #[test]
    fn aggregate_throughput_rises_with_streams_below_saturation() {
        // 1 stream: 60 MB/s; 3 streams: 180 MB/s — the µ-rises-with-n
        // behaviour behind Figure 7's falling congestion index.
        let t1 = time_to_read(DeviceProfile::hdd_7200(), 1.0, 1);
        let t3 = {
            let mut kernel: Kernel<u32> = Kernel::new();
            let disk = Disk::register(&mut kernel, DeviceProfile::hdd_7200(), 1.0);
            for i in 0..3 {
                kernel.start_flow(disk.resource(), 0, 1000.0 / 3.0, i);
            }
            let mut last = 0.0;
            while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
                last = at.seconds();
            }
            last
        };
        assert!(
            t3 < t1 / 2.5,
            "3 streams should be ~3x faster than 1: {t1} vs {t3}"
        );
    }

    #[test]
    fn slow_node_is_proportionally_slower() {
        // With enough streams the device envelope (which scales with the
        // node factor) binds, so a half-speed node takes twice as long.
        let t_fast = time_to_read(DeviceProfile::hdd_7200(), 1.0, 16);
        let t_slow = time_to_read(DeviceProfile::hdd_7200(), 0.5, 16);
        assert!((t_slow / t_fast - 2.0).abs() < 1e-6);
    }

    #[test]
    fn hdd_thrash_visible_end_to_end() {
        // Reading the same total volume with 32 streams takes longer than
        // with 8 streams on an HDD.
        let total = 3200.0;
        let per4 = {
            let mut kernel: Kernel<u32> = Kernel::new();
            let disk = Disk::register(&mut kernel, DeviceProfile::hdd_7200(), 1.0);
            for i in 0..8 {
                kernel.start_flow(disk.resource(), 0, total / 8.0, i);
            }
            let mut last = 0.0;
            while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
                last = at.seconds();
            }
            last
        };
        let per32 = {
            let mut kernel: Kernel<u32> = Kernel::new();
            let disk = Disk::register(&mut kernel, DeviceProfile::hdd_7200(), 1.0);
            for i in 0..32 {
                kernel.start_flow(disk.resource(), 0, total / 32.0, i);
            }
            let mut last = 0.0;
            while let Some(Occurrence::FlowCompleted { at, .. }) = kernel.next() {
                last = at.seconds();
            }
            last
        };
        assert!(
            per32 > per4 * 1.3,
            "32 streams should be >=1.3x slower: {per4} vs {per32}"
        );
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn invalid_speed_factor_rejected() {
        let mut kernel: Kernel<u32> = Kernel::new();
        let _ = Disk::register(&mut kernel, DeviceProfile::hdd_7200(), 0.0);
    }
}
