//! Parametric concurrency-efficiency curves.

/// How a device's aggregate efficiency responds to concurrent streams.
///
/// Efficiency is a dimensionless factor in `(0, 1]` multiplied onto the
/// device's peak bandwidth. It is the product of two effects:
///
/// * **Ramp-up** — a single stream may not saturate the device (e.g. an SSD
///   needs queue depth): `ramp(n) = a + (1 - a) · (1 - exp(-(n-1)/τ))`
///   where `a` is the single-stream fraction and `τ` the ramp constant.
/// * **Thrash** — beyond `free_streams` concurrent streams the device pays
///   a super-linear penalty (HDD head movement, SSD write amplification):
///   `thrash(n) = 1 / (1 + α · max(0, n - free_streams)^β)`.
///
/// # Examples
///
/// ```
/// use sae_storage::ContentionCurve;
///
/// let hdd_read = ContentionCurve::new(0.95, 2.0, 4.0, 0.02, 1.3);
/// assert!(hdd_read.efficiency(4) > hdd_read.efficiency(32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionCurve {
    single_stream_fraction: f64,
    ramp_tau: f64,
    free_streams: f64,
    thrash_alpha: f64,
    thrash_beta: f64,
    floor: f64,
}

impl ContentionCurve {
    /// Creates a curve from its five parameters.
    ///
    /// # Panics
    ///
    /// Panics if `single_stream_fraction` is outside `(0, 1]`, `ramp_tau`
    /// is not positive, `free_streams` is negative, or the thrash
    /// parameters are negative.
    pub fn new(
        single_stream_fraction: f64,
        ramp_tau: f64,
        free_streams: f64,
        thrash_alpha: f64,
        thrash_beta: f64,
    ) -> Self {
        assert!(
            single_stream_fraction > 0.0 && single_stream_fraction <= 1.0,
            "single-stream fraction must be in (0, 1]"
        );
        assert!(ramp_tau > 0.0, "ramp tau must be positive");
        assert!(free_streams >= 0.0, "free streams must be non-negative");
        assert!(thrash_alpha >= 0.0, "thrash alpha must be non-negative");
        assert!(thrash_beta >= 0.0, "thrash beta must be non-negative");
        Self {
            single_stream_fraction,
            ramp_tau,
            free_streams,
            thrash_alpha,
            thrash_beta,
            floor: f64::MIN_POSITIVE,
        }
    }

    /// Sets a lower bound on efficiency: even a fully thrashing device
    /// retains some useful throughput (elevator scheduling merges whatever
    /// adjacency remains).
    ///
    /// # Panics
    ///
    /// Panics if `floor` is outside `(0, 1]`.
    pub fn with_floor(mut self, floor: f64) -> Self {
        assert!(floor > 0.0 && floor <= 1.0, "floor must be in (0, 1]");
        self.floor = floor;
        self
    }

    /// A curve with no concurrency effects at all (always 1.0).
    pub fn flat() -> Self {
        Self::new(1.0, 1.0, 0.0, 0.0, 1.0)
    }

    /// Efficiency factor for `n` concurrent streams (0 streams → 1.0 by
    /// convention; the device is simply idle).
    pub fn efficiency(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let n = n as f64;
        let ramp = self.single_stream_fraction
            + (1.0 - self.single_stream_fraction) * (1.0 - (-(n - 1.0) / self.ramp_tau).exp());
        let over = (n - self.free_streams).max(0.0);
        let thrash = 1.0 / (1.0 + self.thrash_alpha * over.powf(self.thrash_beta));
        (ramp * thrash).clamp(self.floor, 1.0)
    }

    /// The concurrency level (within 1..=512) at which efficiency × n —
    /// i.e. aggregate device throughput under processor sharing — peaks.
    pub fn peak_concurrency(&self) -> usize {
        (1..=512usize)
            .max_by(|&a, &b| {
                let fa = self.efficiency(a);
                let fb = self.efficiency(b);
                fa.partial_cmp(&fb).expect("efficiency is never NaN")
            })
            .expect("non-empty range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_curve_is_one_everywhere() {
        let c = ContentionCurve::flat();
        for n in [0, 1, 4, 32, 500] {
            assert_eq!(c.efficiency(n), 1.0);
        }
    }

    #[test]
    fn ramp_up_increases_with_streams_before_thrash() {
        // SSD-like: single stream only achieves 40%.
        let c = ContentionCurve::new(0.4, 4.0, 64.0, 0.0, 1.0);
        assert!(c.efficiency(1) < c.efficiency(4));
        assert!(c.efficiency(4) < c.efficiency(16));
    }

    #[test]
    fn thrash_decays_past_free_streams() {
        let c = ContentionCurve::new(1.0, 1.0, 4.0, 0.02, 1.3);
        assert_eq!(c.efficiency(4), 1.0);
        assert!(c.efficiency(8) < 1.0);
        assert!(c.efficiency(16) < c.efficiency(8));
        assert!(c.efficiency(128) < c.efficiency(32));
    }

    #[test]
    fn efficiency_bounded() {
        let c = ContentionCurve::new(0.5, 2.0, 2.0, 0.1, 2.0);
        for n in 0..600 {
            let e = c.efficiency(n);
            assert!(e > 0.0 && e <= 1.0, "eff({n}) = {e}");
        }
    }

    #[test]
    fn zero_streams_is_idle_convention() {
        let c = ContentionCurve::new(0.9, 2.0, 4.0, 0.05, 1.5);
        assert_eq!(c.efficiency(0), 1.0);
    }

    #[test]
    fn peak_concurrency_finds_interior_maximum() {
        let c = ContentionCurve::new(0.6, 2.0, 4.0, 0.05, 1.5);
        let peak = c.peak_concurrency();
        assert!(
            (2..=16).contains(&peak),
            "expected interior peak, got {peak}"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        let _ = ContentionCurve::new(0.0, 1.0, 1.0, 0.0, 1.0);
    }
}
