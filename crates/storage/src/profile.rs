//! Complete device profiles: peak bandwidths plus contention curves.

use crate::curve::ContentionCurve;
use crate::disk::DiskClass;

/// A storage device's performance envelope.
///
/// Bandwidths are in MB/s. Reads and writes have separate peaks and
/// contention curves; shuffle-serving reads (remote fetches hitting the
/// local disk) behave like reads but pay a fragmentation penalty because
/// they touch many small map-output segments instead of one sequential
/// file.
///
/// # Examples
///
/// ```
/// use sae_storage::{DeviceProfile, DiskClass};
///
/// let hdd = DeviceProfile::hdd_7200();
/// let read = hdd.bandwidth(&[(DiskClass::Read, 4)]);
/// let write = hdd.bandwidth(&[(DiskClass::Write, 4)]);
/// assert!(read > write);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: &'static str,
    read_peak: f64,
    write_peak: f64,
    read_curve: ContentionCurve,
    write_curve: ContentionCurve,
    /// Multiplier on efficiency when reads and writes interleave.
    mix_penalty: f64,
    /// Extra per-stream efficiency multiplier for shuffle-serving reads.
    fragment_penalty: f64,
    /// Maximum service rate of a single stream, MB/s.
    ///
    /// Tasks do request-response I/O (issue a read, epoll-wait, process):
    /// the think-time gaps cap what one stream extracts from the device,
    /// so aggregate throughput *rises* with concurrency until
    /// `peak / per_stream_cap` streams saturate the device. This is the
    /// mechanism that makes the congestion index ζ = ε/µ fall from 2 to 4
    /// threads in Figure 7 before seek thrash turns it around.
    per_stream_cap: f64,
}

impl DeviceProfile {
    /// A 7200 rpm SATA hard disk, matching the paper's DAS-5 nodes.
    ///
    /// Sequential streams are fast, but beyond ~4 concurrent streams the
    /// head starts thrashing and aggregate bandwidth collapses — the effect
    /// behind Figures 2, 5 and 7.
    pub fn hdd_7200() -> Self {
        Self {
            name: "hdd-7200rpm",
            read_peak: 190.0,
            write_peak: 160.0,
            // Aggregate envelope is flat until ~4 streams, then the head
            // starts thrashing.
            read_curve: ContentionCurve::new(1.0, 2.0, 4.0, 0.030, 1.25).with_floor(0.22),
            // Writes tolerate slightly more concurrency (write-back caching)
            // but decay faster once seeking.
            write_curve: ContentionCurve::new(1.0, 2.0, 6.0, 0.020, 1.80).with_floor(0.18),
            mix_penalty: 0.80,
            fragment_penalty: 0.70,
            // A single request-response Spark stream (read, epoll-wait,
            // process) extracts ~20 MB/s, so ~8 streams saturate the
            // device just as seek thrash sets in — per-request latency is
            // flat below that point, which is what keeps ε (and hence ζ)
            // low until the device is genuinely congested.
            per_stream_cap: 20.0,
        }
    }

    /// A SATA SSD, matching §6.3's comparison hardware.
    ///
    /// Reads need queue depth to saturate and then stay flat to very high
    /// concurrency; writes peak mid-range because of erase-block overhead.
    pub fn ssd_sata() -> Self {
        Self {
            name: "ssd-sata",
            read_peak: 520.0,
            write_peak: 420.0,
            // No read thrash until far beyond the paper's 32-thread max.
            read_curve: ContentionCurve::new(1.0, 5.0, 96.0, 0.010, 1.10),
            // Erase-before-write: the flash translation layer keeps up to
            // ~8 concurrent write streams before garbage collection bites,
            // and it bites hard enough that the default 32 threads lose
            // ~30 % in the write stages (Figure 10b).
            write_curve: ContentionCurve::new(0.60, 4.0, 8.0, 0.050, 1.60).with_floor(0.20),
            mix_penalty: 0.92,
            fragment_penalty: 0.95,
            // SSDs need queue depth: a single request-response stream is
            // latency-bound at ~40 MB/s, so reads keep rewarding
            // concurrency to ~16 streams and saturate the device just
            // below the 32-thread default — the reason Figure 10's SSD
            // read stage is best at 32 threads while the write stages
            // peak at 16 and 8.
            per_stream_cap: 40.0,
        }
    }

    /// Builds a custom profile (for tests and ablations).
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &'static str,
        read_peak: f64,
        write_peak: f64,
        read_curve: ContentionCurve,
        write_curve: ContentionCurve,
        mix_penalty: f64,
        fragment_penalty: f64,
        per_stream_cap: f64,
    ) -> Self {
        assert!(
            read_peak > 0.0 && write_peak > 0.0,
            "peaks must be positive"
        );
        assert!(
            mix_penalty > 0.0 && mix_penalty <= 1.0,
            "mix penalty must be in (0, 1]"
        );
        assert!(
            fragment_penalty > 0.0 && fragment_penalty <= 1.0,
            "fragment penalty must be in (0, 1]"
        );
        assert!(per_stream_cap > 0.0, "per-stream cap must be positive");
        Self {
            name,
            read_peak,
            write_peak,
            read_curve,
            write_curve,
            mix_penalty,
            fragment_penalty,
            per_stream_cap,
        }
    }

    /// Maximum service rate of a single stream, MB/s.
    pub fn per_stream_cap(&self) -> f64 {
        self.per_stream_cap
    }

    /// Aggregate bandwidth of the node's *shuffle-serve path*, MB/s.
    ///
    /// Freshly spilled map output is overwhelmingly served from the page
    /// cache (DAS-5 nodes hold 56 GB of RAM against 10–30 GB of spill), so
    /// remote fetches are answered at memory-ish speeds rather than
    /// platter speeds. The path still saturates: when the fan-in of
    /// fetchers grows with cluster size (Figure 9), per-stream service
    /// collapses below [`DeviceProfile::serve_stream_cap`].
    pub fn serve_path_peak(&self) -> f64 {
        match self.name {
            "ssd-sata" => 2400.0,
            _ => 2000.0,
        }
    }

    /// Per-stream cap on the shuffle-serve path, MB/s (request-response
    /// bound, same think-time argument as [`DeviceProfile::per_stream_cap`]).
    pub fn serve_stream_cap(&self) -> f64 {
        20.0
    }

    /// Aggregate serve-path bandwidth with `n` concurrent fetch streams.
    ///
    /// High fan-in (cluster-size × threads remote fetchers) spills requests
    /// past the page cache into the device and the path degrades — the
    /// second mechanism behind Figure 9.
    pub fn serve_path_bandwidth(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let over = (n as f64 - 96.0).max(0.0);
        self.serve_path_peak() / (1.0 + 0.02 * over.powf(1.9))
    }

    /// Device name, e.g. `"hdd-7200rpm"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Peak sequential read bandwidth in MB/s.
    pub fn read_peak(&self) -> f64 {
        self.read_peak
    }

    /// Peak sequential write bandwidth in MB/s.
    pub fn write_peak(&self) -> f64 {
        self.write_peak
    }

    /// Aggregate bandwidth (MB/s) for a mix of concurrent streams.
    ///
    /// `streams` lists `(class, count)` pairs; classes absent from the
    /// slice count as zero. The result blends per-class envelopes weighted
    /// by stream count and applies the mix penalty when distinct classes
    /// interleave.
    pub fn bandwidth(&self, streams: &[(DiskClass, usize)]) -> f64 {
        let mut n_total = 0usize;
        let mut distinct = 0usize;
        for &(_, count) in streams {
            n_total += count;
            if count > 0 {
                distinct += 1;
            }
        }
        if n_total == 0 {
            return 0.0;
        }
        let mut blended = 0.0;
        for &(class, count) in streams {
            if count == 0 {
                continue;
            }
            let weight = count as f64 / n_total as f64;
            let envelope = match class {
                DiskClass::Read => self.read_peak * self.read_curve.efficiency(n_total),
                DiskClass::Write => self.write_peak * self.write_curve.efficiency(n_total),
                DiskClass::ShuffleRead => {
                    self.read_peak * self.read_curve.efficiency(n_total) * self.fragment_penalty
                }
            };
            blended += weight * envelope;
        }
        if distinct > 1 {
            blended *= self.mix_penalty.powi(distinct as i32 - 1);
        }
        blended
    }

    /// The read-stream concurrency that maximises aggregate bandwidth.
    pub fn read_peak_concurrency(&self) -> usize {
        (1..=512usize)
            .max_by(|&a, &b| {
                let fa = self.bandwidth(&[(DiskClass::Read, a)]);
                let fb = self.bandwidth(&[(DiskClass::Read, b)]);
                fa.partial_cmp(&fb).expect("bandwidth is never NaN")
            })
            .expect("non-empty range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_reads_peak_at_low_concurrency() {
        let hdd = DeviceProfile::hdd_7200();
        let peak = hdd.read_peak_concurrency();
        assert!((1..=8).contains(&peak), "HDD read peak at {peak} streams");
    }

    #[test]
    fn hdd_collapses_under_many_streams() {
        let hdd = DeviceProfile::hdd_7200();
        let at_peak = hdd.bandwidth(&[(DiskClass::Read, hdd.read_peak_concurrency())]);
        let at_128 = hdd.bandwidth(&[(DiskClass::Read, 128)]);
        assert!(
            at_128 < at_peak * 0.5,
            "expected >2x collapse: {at_peak} -> {at_128}"
        );
    }

    #[test]
    fn ssd_reads_tolerate_high_concurrency() {
        let ssd = DeviceProfile::ssd_sata();
        let at_4 = ssd.bandwidth(&[(DiskClass::Read, 4)]);
        let at_32 = ssd.bandwidth(&[(DiskClass::Read, 32)]);
        assert!(
            at_32 > at_4 * 0.95,
            "SSD should not collapse by 32 streams: {at_4} -> {at_32}"
        );
    }

    #[test]
    fn ssd_writes_peak_mid_range() {
        let ssd = DeviceProfile::ssd_sata();
        let at_8 = ssd.bandwidth(&[(DiskClass::Write, 8)]);
        let at_2 = ssd.bandwidth(&[(DiskClass::Write, 2)]);
        let at_128 = ssd.bandwidth(&[(DiskClass::Write, 128)]);
        assert!(at_8 > at_2, "writes should ramp: {at_2} -> {at_8}");
        assert!(at_8 > at_128, "writes should decay: {at_8} -> {at_128}");
    }

    #[test]
    fn mixed_traffic_pays_penalty() {
        let hdd = DeviceProfile::hdd_7200();
        let pure = hdd.bandwidth(&[(DiskClass::Read, 4)]);
        let mixed = hdd.bandwidth(&[(DiskClass::Read, 2), (DiskClass::Write, 2)]);
        assert!(mixed < pure, "mixing must cost: {pure} vs {mixed}");
    }

    #[test]
    fn shuffle_reads_slower_than_sequential_reads() {
        let hdd = DeviceProfile::hdd_7200();
        let seq = hdd.bandwidth(&[(DiskClass::Read, 8)]);
        let frag = hdd.bandwidth(&[(DiskClass::ShuffleRead, 8)]);
        assert!(frag < seq);
    }

    #[test]
    fn zero_streams_zero_bandwidth() {
        let hdd = DeviceProfile::hdd_7200();
        assert_eq!(hdd.bandwidth(&[]), 0.0);
        assert_eq!(hdd.bandwidth(&[(DiskClass::Read, 0)]), 0.0);
    }

    #[test]
    fn ssd_faster_than_hdd_everywhere() {
        let hdd = DeviceProfile::hdd_7200();
        let ssd = DeviceProfile::ssd_sata();
        for n in [1, 2, 4, 8, 16, 32, 64] {
            assert!(
                ssd.bandwidth(&[(DiskClass::Read, n)]) > hdd.bandwidth(&[(DiskClass::Read, n)]),
                "at {n} streams"
            );
        }
    }
}
