//! Monotonic counters and instantaneous gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing integer counter.
///
/// Cloning a `Counter` yields a handle to the same underlying value, so a
/// counter can be registered once and updated from many components.
///
/// # Examples
///
/// ```
/// use sae_metrics::Counter;
///
/// let tasks = Counter::new();
/// let handle = tasks.clone();
/// handle.add(3);
/// tasks.inc();
/// assert_eq!(tasks.value(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn value(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    ///
    /// Intended for interval-based sampling (drain-and-report), e.g. the
    /// per-interval byte totals behind the I/O throughput metric `µ`.
    pub fn take(&self) -> u64 {
        self.inner.swap(0, Ordering::Relaxed)
    }
}

/// A monotonically increasing floating-point counter.
///
/// Stores the value as `f64` bits inside an atomic, which keeps the type
/// `Send + Sync` without locking. Used for accumulated durations such as the
/// epoll-wait seconds `ε` of the paper's monitor.
///
/// # Examples
///
/// ```
/// use sae_metrics::FloatCounter;
///
/// let wait = FloatCounter::new();
/// wait.add(0.25);
/// wait.add(0.5);
/// assert!((wait.value() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FloatCounter {
    bits: Arc<AtomicU64>,
}

impl Default for FloatCounter {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl FloatCounter {
    /// Creates a counter starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `delta` is negative or NaN; float counters
    /// are monotonic by contract.
    pub fn add(&self, delta: f64) {
        debug_assert!(delta >= 0.0, "FloatCounter::add requires delta >= 0");
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Returns the current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Resets the counter to `0.0` and returns the previous value.
    pub fn take(&self) -> f64 {
        f64::from_bits(self.bits.swap(0f64.to_bits(), Ordering::Relaxed))
    }
}

/// An instantaneous value that may go up or down.
///
/// # Examples
///
/// ```
/// use sae_metrics::Gauge;
///
/// let pool_size = Gauge::new();
/// pool_size.set(32.0);
/// pool_size.set(8.0);
/// assert_eq!(pool_size.value(), 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adjusts the gauge by `delta` (which may be negative).
    pub fn adjust(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_starts_at_zero() {
        assert_eq!(Counter::new().value(), 0);
    }

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn counter_take_drains() {
        let c = Counter::new();
        c.add(7);
        assert_eq!(c.take(), 7);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_clone_shares_state() {
        let c = Counter::new();
        let d = c.clone();
        d.add(5);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn float_counter_accumulates() {
        let c = FloatCounter::new();
        c.add(1.5);
        c.add(2.25);
        assert!((c.value() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn float_counter_take_drains() {
        let c = FloatCounter::new();
        c.add(9.0);
        assert_eq!(c.take(), 9.0);
        assert_eq!(c.value(), 0.0);
    }

    #[test]
    fn float_counter_concurrent_adds_do_not_lose_updates() {
        let c = FloatCounter::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add(0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!((c.value() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        g.set(10.0);
        g.adjust(-3.0);
        assert_eq!(g.value(), 7.0);
    }

    #[test]
    fn gauge_can_go_negative() {
        let g = Gauge::new();
        g.adjust(-1.0);
        assert_eq!(g.value(), -1.0);
    }
}
