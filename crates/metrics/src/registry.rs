//! A namespaced registry of metrics.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::{Counter, FloatCounter, Gauge, Histogram, HistogramSnapshot};

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    float_counters: BTreeMap<String, FloatCounter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry that owns metrics by dotted name (`"disk.bytes_read"`).
///
/// `get-or-create` semantics: requesting the same name twice returns handles
/// to the same metric. Cloning the registry shares the underlying store, so
/// one registry can be threaded through the simulator, executors and the
/// controller.
///
/// # Examples
///
/// ```
/// use sae_metrics::MetricRegistry;
///
/// let reg = MetricRegistry::new();
/// reg.counter("tasks.finished").add(2);
/// reg.gauge("pool.size").set(8.0);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["tasks.finished"], 2);
/// assert_eq!(snap.gauges["pool.size"], 8.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the integer counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .lock()
            .expect("metric registry poisoned")
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the float counter named `name`, creating it if absent.
    pub fn float_counter(&self, name: &str) -> FloatCounter {
        self.inner
            .lock()
            .expect("metric registry poisoned")
            .float_counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .lock()
            .expect("metric registry poisoned")
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .lock()
            .expect("metric registry poisoned")
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Full snapshots of every histogram, in name order. The coarse
    /// [`MetricRegistry::snapshot`] keeps only observation counts; the
    /// Prometheus renderer wants the sums too.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let inner = self.inner.lock().expect("metric registry poisoned");
        inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Takes a consistent point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("metric registry poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            float_counters: inner
                .float_counters
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            histogram_counts: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot().count))
                .collect(),
        }
    }
}

/// A point-in-time view of all metrics in a [`MetricRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Integer counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Float counter values by name.
    pub float_counters: BTreeMap<String, f64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram observation counts by name.
    pub histogram_counts: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let reg = MetricRegistry::new();
        reg.counter("a").add(1);
        reg.counter("a").add(1);
        assert_eq!(reg.counter("a").value(), 2);
    }

    #[test]
    fn clone_shares_store() {
        let reg = MetricRegistry::new();
        let reg2 = reg.clone();
        reg2.counter("x").inc();
        assert_eq!(reg.counter("x").value(), 1);
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let reg = MetricRegistry::new();
        reg.counter("c").add(5);
        reg.float_counter("f").add(1.5);
        reg.gauge("g").set(-2.0);
        reg.histogram("h").record(1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.float_counters["f"], 1.5);
        assert_eq!(snap.gauges["g"], -2.0);
        assert_eq!(snap.histogram_counts["h"], 1);
    }

    #[test]
    fn distinct_names_are_distinct_metrics() {
        let reg = MetricRegistry::new();
        reg.counter("a").inc();
        assert_eq!(reg.counter("b").value(), 0);
    }

    #[test]
    fn empty_snapshot() {
        let snap = MetricRegistry::new().snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }
}
