//! Time-stamped sample sequences with windowed aggregation.

/// A single `(time, value)` sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSeriesPoint {
    /// Sample timestamp in seconds (simulated or wall-clock).
    pub time: f64,
    /// Sample value.
    pub value: f64,
}

/// An append-only sequence of time-stamped samples.
///
/// Backs the throughput-over-time plots (Figure 12) and the per-second
/// sampling the paper's monitor performs on the Spark metrics system.
/// Samples must be pushed in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use sae_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new();
/// ts.push(0.0, 10.0);
/// ts.push(1.0, 20.0);
/// ts.push(2.0, 30.0);
/// assert_eq!(ts.mean_in_window(0.5, 2.0), Some(25.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<TimeSeriesPoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last pushed timestamp (samples must be
    /// appended in chronological order) or if `time` is NaN.
    pub fn push(&mut self, time: f64, value: f64) {
        assert!(!time.is_nan(), "timestamp must not be NaN");
        if let Some(last) = self.points.last() {
            assert!(
                time >= last.time,
                "time series samples must be chronological: {time} < {}",
                last.time
            );
        }
        self.points.push(TimeSeriesPoint { time, value });
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the samples in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = &TimeSeriesPoint> {
        self.points.iter()
    }

    /// Returns the samples as a slice.
    pub fn as_slice(&self) -> &[TimeSeriesPoint] {
        &self.points
    }

    /// Returns the last sample, if any.
    pub fn last(&self) -> Option<TimeSeriesPoint> {
        self.points.last().copied()
    }

    /// Arithmetic mean over all samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64)
    }

    /// Maximum sample value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Mean of samples with `start <= time <= end`, or `None` if no sample
    /// falls inside the window.
    pub fn mean_in_window(&self, start: f64, end: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for p in &self.points {
            if p.time >= start && p.time <= end {
                sum += p.value;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Integrates the series over `[start, end]` using step interpolation
    /// (each sample's value holds until the next sample).
    ///
    /// Returns `0.0` when the window contains no information. Useful for
    /// converting a rate series (bytes/s) into a total (bytes).
    pub fn integrate(&self, start: f64, end: f64) -> f64 {
        if end <= start || self.points.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (i, p) in self.points.iter().enumerate() {
            let seg_start = p.time.max(start);
            let seg_end = self
                .points
                .get(i + 1)
                .map_or(end, |next| next.time.min(end));
            if seg_end > seg_start {
                total += p.value * (seg_end - seg_start);
            }
        }
        total
    }

    /// Resamples onto a uniform grid with spacing `dt` using
    /// last-observation-carried-forward, starting at the first sample time.
    ///
    /// Returns an empty series when the input is empty.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn resample(&self, dt: f64) -> TimeSeries {
        assert!(dt > 0.0, "resample interval must be positive");
        let mut out = TimeSeries::new();
        let (Some(first), Some(last)) = (self.points.first(), self.points.last()) else {
            return out;
        };
        let mut t = first.time;
        let mut idx = 0usize;
        while t <= last.time + 1e-12 {
            while idx + 1 < self.points.len() && self.points[idx + 1].time <= t {
                idx += 1;
            }
            out.push(t, self.points[idx].value);
            t += dt;
        }
        out
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(f64, f64)]) -> TimeSeries {
        points.iter().copied().collect()
    }

    #[test]
    fn empty_series_aggregates_to_none() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.max(), None);
        assert_eq!(ts.mean_in_window(0.0, 10.0), None);
    }

    #[test]
    fn mean_and_max() {
        let ts = series(&[(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(ts.mean(), Some(2.0));
        assert_eq!(ts.max(), Some(3.0));
    }

    #[test]
    fn windowed_mean_is_inclusive() {
        let ts = series(&[(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]);
        assert_eq!(ts.mean_in_window(1.0, 2.0), Some(25.0));
        assert_eq!(ts.mean_in_window(3.0, 4.0), None);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn out_of_order_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 0.0);
        ts.push(0.5, 0.0);
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut ts = TimeSeries::new();
        ts.push(1.0, 1.0);
        ts.push(1.0, 2.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn integrate_step_function() {
        // value 2.0 on [0,1), 4.0 on [1,3] -> integral over [0,3] = 2 + 8 = 10
        let ts = series(&[(0.0, 2.0), (1.0, 4.0)]);
        assert!((ts.integrate(0.0, 3.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn integrate_partial_window() {
        let ts = series(&[(0.0, 2.0), (1.0, 4.0)]);
        // window [0.5, 1.5]: 0.5*2 + 0.5*4 = 3
        assert!((ts.integrate(0.5, 1.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn integrate_empty_or_degenerate_window() {
        let ts = series(&[(0.0, 2.0)]);
        assert_eq!(ts.integrate(5.0, 5.0), 0.0);
        assert_eq!(TimeSeries::new().integrate(0.0, 1.0), 0.0);
    }

    #[test]
    fn resample_locf() {
        let ts = series(&[(0.0, 1.0), (0.9, 5.0), (2.0, 7.0)]);
        let r = ts.resample(1.0);
        let vals: Vec<f64> = r.iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![1.0, 5.0, 7.0]);
    }

    #[test]
    fn resample_empty_is_empty() {
        assert!(TimeSeries::new().resample(1.0).is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let ts: TimeSeries = vec![(0.0, 1.0), (1.0, 2.0)].into_iter().collect();
        assert_eq!(ts.len(), 2);
    }
}
