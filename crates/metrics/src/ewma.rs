//! Exponentially weighted moving averages.

/// An exponentially weighted moving average with configurable smoothing.
///
/// The controller uses EWMAs to smooth noisy per-second throughput samples
/// before they enter the congestion index, mirroring the sampling approach
/// described in §5.1 of the paper.
///
/// # Examples
///
/// ```
/// use sae_metrics::Ewma;
///
/// let mut ewma = Ewma::new(0.5);
/// ewma.observe(10.0);
/// ewma.observe(20.0);
/// assert_eq!(ewma.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// Higher `alpha` weighs recent observations more heavily; `alpha = 1`
    /// degenerates to "latest value".
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]` or is NaN.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Feeds a new observation into the average.
    ///
    /// The first observation seeds the average directly.
    pub fn observe(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(prev) => self.alpha * sample + (1.0 - self.alpha) * prev,
        });
    }

    /// Returns the current smoothed value, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Returns the smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Clears the average back to the unseeded state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseeded_is_none() {
        assert_eq!(Ewma::new(0.3).value(), None);
    }

    #[test]
    fn first_observation_seeds() {
        let mut e = Ewma::new(0.3);
        e.observe(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn alpha_one_tracks_latest() {
        let mut e = Ewma::new(1.0);
        e.observe(1.0);
        e.observe(99.0);
        assert_eq!(e.value(), Some(99.0));
    }

    #[test]
    fn smoothing_blends() {
        let mut e = Ewma::new(0.25);
        e.observe(0.0);
        e.observe(100.0);
        assert_eq!(e.value(), Some(25.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.observe(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.5);
        e.observe(3.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn oversized_alpha_rejected() {
        let _ = Ewma::new(1.5);
    }
}
