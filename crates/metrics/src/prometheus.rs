//! Prometheus text exposition for a [`MetricRegistry`], plus a JSONL
//! snapshot line for the periodic file sink.
//!
//! Metric names in the registry are dotted (`"live.tasks_finished"`) and
//! may carry labels with the conventional brace syntax
//! (`"live.tasks_finished{executor=\"2\"}"`). The renderer converts dots
//! to underscores, sanitizes anything the exposition format forbids,
//! escapes label values, and emits one `# HELP` / `# TYPE` pair per metric
//! family in stable (sorted) order:
//!
//! ```text
//! # HELP live_tasks_finished SAE metric live_tasks_finished
//! # TYPE live_tasks_finished counter
//! live_tasks_finished{executor="2"} 17
//! ```
//!
//! Integer and float counters both render as `counter`; gauges as `gauge`;
//! histograms as `summary` with `_count` and `_sum` series. There is no
//! HTTP endpoint — callers write the string wherever they want it scraped
//! from, which is all the loopback runtime needs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{MetricRegistry, RegistrySnapshot};

/// The `Content-Type` an HTTP endpoint serving [`render_prometheus`]
/// output must send: Prometheus text exposition format version 0.0.4.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Sanitizes a metric-family name: `[a-zA-Z_:][a-zA-Z0-9_:]*`, with dots
/// and dashes folded to underscores.
fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitizes a label key: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn sanitize_label_key(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry name into `(family, label_block)` where `label_block`
/// is already sanitized/escaped and includes the braces (empty when the
/// name carries no labels). A malformed label block is folded into the
/// family name instead of being dropped.
fn split_name(raw: &str) -> (String, String) {
    let Some(open) = raw.find('{') else {
        return (sanitize_name(raw), String::new());
    };
    let Some(body) = raw[open..]
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
    else {
        return (sanitize_name(raw), String::new());
    };
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            return (sanitize_name(raw), String::new());
        };
        let v = v.trim_matches('"');
        labels.push(format!(
            "{}=\"{}\"",
            sanitize_label_key(k.trim()),
            escape_label_value(v)
        ));
    }
    (
        sanitize_name(&raw[..open]),
        format!("{{{}}}", labels.join(",")),
    )
}

/// Formats a sample value. Prometheus accepts `NaN`, `+Inf` and `-Inf`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// Merges a `quantile="q"` label into a registry name's label block,
/// appending a fresh block when the name carries none.
fn with_quantile_label(raw: &str, q: &str) -> String {
    match raw.strip_suffix('}') {
        Some(prefix) if raw.contains('{') => format!("{prefix},quantile=\"{q}\"}}"),
        _ => format!("{raw}{{quantile=\"{q}\"}}"),
    }
}

/// One exposition family: its TYPE plus every `name{labels} value` line.
#[derive(Default)]
struct Family {
    lines: BTreeMap<String, String>,
}

fn push_sample(
    families: &mut BTreeMap<String, Family>,
    raw_name: &str,
    suffix: &str,
    value: String,
) {
    let (family, labels) = split_name(raw_name);
    let fam = families.entry(family.clone()).or_default();
    let series = format!("{family}{suffix}{labels}");
    fam.lines
        .insert(series.clone(), format!("{series} {value}"));
}

fn render_section(out: &mut String, kind: &str, families: &BTreeMap<String, Family>) {
    for (family, fam) in families {
        let _ = writeln!(out, "# HELP {family} SAE metric {family}");
        let _ = writeln!(out, "# TYPE {family} {kind}");
        for line in fam.lines.values() {
            let _ = writeln!(out, "{line}");
        }
    }
}

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4).
///
/// Output is deterministic for a given registry state: families and series
/// appear in sorted order, counters first, then gauges, then histogram
/// summaries.
pub fn render_prometheus(registry: &MetricRegistry) -> String {
    let snap = registry.snapshot();
    let mut counters: BTreeMap<String, Family> = BTreeMap::new();
    for (name, v) in &snap.counters {
        push_sample(&mut counters, name, "", v.to_string());
    }
    for (name, v) in &snap.float_counters {
        push_sample(&mut counters, name, "", fmt_value(*v));
    }
    let mut gauges: BTreeMap<String, Family> = BTreeMap::new();
    for (name, v) in &snap.gauges {
        push_sample(&mut gauges, name, "", fmt_value(*v));
    }
    let mut summaries: BTreeMap<String, Family> = BTreeMap::new();
    for (name, h) in registry.histogram_snapshots() {
        push_sample(&mut summaries, &name, "_count", h.count.to_string());
        push_sample(
            &mut summaries,
            &name,
            "_sum",
            fmt_value(h.mean * h.count as f64),
        );
        // Summary quantile series: the bare family name with a
        // `quantile` label merged into any labels the series carries.
        for q in ["0.5", "0.95", "0.99"] {
            if let Some(v) = h.quantile(q.parse().expect("literal quantile")) {
                push_sample(
                    &mut summaries,
                    &with_quantile_label(&name, q),
                    "",
                    fmt_value(v),
                );
            }
        }
    }
    let mut out = String::new();
    render_section(&mut out, "counter", &counters);
    render_section(&mut out, "gauge", &gauges);
    render_section(&mut out, "summary", &summaries);
    out
}

/// Escapes a string for a JSON string literal (the JSONL sink).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Serializes a snapshot as one JSON object (no trailing newline) for the
/// periodic JSONL metrics sink: `{"t":...,"counters":{...},...}`.
///
/// `t` is seconds since the job epoch, matching the decision journal's
/// clock.
pub fn snapshot_jsonl_line(snapshot: &RegistrySnapshot, t: f64) -> String {
    fn obj<V, F: Fn(&V) -> String>(map: &BTreeMap<String, V>, fmt: F) -> String {
        let body = map
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), fmt(v)))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
    format!(
        "{{\"t\":{},\"counters\":{},\"float_counters\":{},\"gauges\":{},\"histogram_counts\":{}}}",
        fmt_json_f64(t),
        obj(&snapshot.counters, |v| v.to_string()),
        obj(&snapshot.float_counters, |v| fmt_json_f64(*v)),
        obj(&snapshot.gauges, |v| fmt_json_f64(*v)),
        obj(&snapshot.histogram_counts, |v| v.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_help_type_and_samples_per_family() {
        let reg = MetricRegistry::new();
        reg.counter("live.tasks_finished").add(7);
        reg.gauge("live.queue_depth").set(3.0);
        let text = render_prometheus(&reg);
        assert!(text.contains("# HELP live_tasks_finished SAE metric live_tasks_finished\n"));
        assert!(text.contains("# TYPE live_tasks_finished counter\n"));
        assert!(
            text.contains("\nlive_tasks_finished 7\n")
                || text.starts_with("live_tasks_finished 7\n")
                || text.contains("live_tasks_finished 7\n")
        );
        assert!(text.contains("# TYPE live_queue_depth gauge\n"));
        assert!(text.contains("live_queue_depth 3\n"));
    }

    #[test]
    fn labels_are_parsed_and_escaped() {
        let reg = MetricRegistry::new();
        reg.counter("live.frames{executor=\"2\",dir=\"a\\b\"}")
            .inc();
        reg.counter("live.frames{executor=\"0\",dir=\"x\"y\"}")
            .inc();
        let text = render_prometheus(&reg);
        // One family header for both series.
        assert_eq!(text.matches("# TYPE live_frames counter").count(), 1);
        assert!(text.contains("live_frames{executor=\"2\",dir=\"a\\\\b\"} 1"));
        assert!(text.contains("live_frames{executor=\"0\",dir=\"x\\\"y\"} 1"));
    }

    #[test]
    fn ordering_is_stable_and_sorted() {
        let reg = MetricRegistry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").inc();
        reg.gauge("z.gauge").set(1.0);
        let first = render_prometheus(&reg);
        let second = render_prometheus(&reg);
        assert_eq!(first, second);
        let a = first.find("a_first").unwrap();
        let b = first.find("b_second").unwrap();
        let z = first.find("z_gauge").unwrap();
        assert!(a < b && b < z, "sections out of order:\n{first}");
    }

    #[test]
    fn histograms_render_as_summary_count_and_sum() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("live.heartbeat_gap_seconds");
        h.record(0.5);
        h.record(1.5);
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE live_heartbeat_gap_seconds summary\n"));
        assert!(text.contains("live_heartbeat_gap_seconds_count 2\n"));
        assert!(text.contains("live_heartbeat_gap_seconds_sum 2\n"));
    }

    #[test]
    fn weird_names_are_sanitized_not_dropped() {
        let reg = MetricRegistry::new();
        reg.counter("1bad name-with.stuff").inc();
        reg.counter("broken{label").inc();
        let text = render_prometheus(&reg);
        assert!(text.contains("_bad_name_with_stuff 1"));
        assert!(text.contains("broken_label 1"));
    }

    #[test]
    fn exposition_lines_are_well_formed() {
        let reg = MetricRegistry::new();
        reg.counter("live.tasks{executor=\"0\"}").add(2);
        reg.float_counter("live.bytes").add(1.5);
        reg.gauge("pool.size").set(8.0);
        reg.histogram("lat").record(1.0);
        for line in render_prometheus(&reg).lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                let mut parts = line.splitn(4, ' ');
                assert_eq!(parts.next(), Some("#"));
                assert!(matches!(parts.next(), Some("HELP") | Some("TYPE")));
                assert!(parts.next().is_some());
            } else {
                let (series, value) = line.rsplit_once(' ').unwrap();
                assert!(!series.contains(' ') || series.contains('"'));
                assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            }
        }
    }

    #[test]
    fn exposition_content_type_is_version_0_0_4() {
        // The scrape contract: exactly the text format's registered
        // media type, version, and charset, in that order.
        assert_eq!(
            EXPOSITION_CONTENT_TYPE,
            "text/plain; version=0.0.4; charset=utf-8"
        );
        let mut parts = EXPOSITION_CONTENT_TYPE.split("; ");
        assert_eq!(parts.next(), Some("text/plain"));
        assert_eq!(parts.next(), Some("version=0.0.4"));
        assert_eq!(parts.next(), Some("charset=utf-8"));
        assert_eq!(parts.next(), None);
    }

    #[test]
    fn histograms_emit_quantile_samples() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("lat");
        for i in 1..=100 {
            h.record(i as f64);
        }
        let text = render_prometheus(&reg);
        for q in ["0.5", "0.95", "0.99"] {
            let needle = format!("lat{{quantile=\"{q}\"}} ");
            assert!(text.contains(&needle), "missing {needle:?} in:\n{text}");
        }
        // Quantile samples are monotone in q for this distribution.
        let sample = |q: &str| -> f64 {
            let needle = format!("lat{{quantile=\"{q}\"}} ");
            let at = text.find(&needle).unwrap() + needle.len();
            text[at..].lines().next().unwrap().parse().unwrap()
        };
        assert!(sample("0.5") <= sample("0.95"));
        assert!(sample("0.95") <= sample("0.99"));
    }

    #[test]
    fn quantile_label_merges_into_existing_label_blocks() {
        let reg = MetricRegistry::new();
        reg.histogram("task.secs{executor=\"1\"}").record(2.0);
        let text = render_prometheus(&reg);
        assert!(
            text.contains("task_secs{executor=\"1\",quantile=\"0.5\"} 2"),
            "quantile label not merged:\n{text}"
        );
        assert!(text.contains("task_secs_count{executor=\"1\"} 1"));
    }

    #[test]
    fn jsonl_line_is_deterministic_and_flat() {
        let reg = MetricRegistry::new();
        reg.counter("c.one").add(1);
        reg.gauge("g\"q").set(2.5);
        let line = snapshot_jsonl_line(&reg.snapshot(), 1.25);
        assert_eq!(line, snapshot_jsonl_line(&reg.snapshot(), 1.25));
        assert!(line.starts_with("{\"t\":1.25,"));
        assert!(line.contains("\"c.one\":1"));
        assert!(line.contains("\"g\\\"q\":2.5"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn concurrent_updates_during_render_do_not_panic() {
        let reg = MetricRegistry::new();
        let mut handles = Vec::new();
        for t in 0..4 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    reg.counter(&format!("smoke.c{}{{thread=\"{t}\"}}", i % 7))
                        .inc();
                    reg.gauge("smoke.g").set(i as f64);
                    reg.histogram("smoke.h").record(i as f64);
                }
            }));
        }
        for _ in 0..50 {
            let text = render_prometheus(&reg);
            assert!(text.is_empty() || text.starts_with("# HELP"));
        }
        for h in handles {
            h.join().unwrap();
        }
        let text = render_prometheus(&reg);
        assert!(text.contains("smoke_c0{thread=\"0\"}"));
        assert!(text.contains("smoke_h_count 2000\n"));
    }
}
