//! Per-stage utilisation roll-ups (the `mpstat`/`iostat` equivalents).

use serde::{Deserialize, Serialize};

/// One utilisation sample for a node over a sampling interval.
///
/// Fractions are in `[0, 1]`. `cpu_busy + cpu_iowait` may be below 1.0 (idle
/// time) and is clamped by the builder if numeric noise pushes it above.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Fraction of CPU capacity doing useful work.
    pub cpu_busy: f64,
    /// Fraction of CPU capacity idle while waiting for outstanding disk I/O
    /// (the `%iowait` column of `mpstat`).
    pub cpu_iowait: f64,
    /// Fraction of the sampling interval during which the disk had at least
    /// one request in flight (the `%util` column of `iostat`).
    pub disk_util: f64,
}

/// Aggregated resource statistics for one stage of a job.
///
/// This is the data behind Figure 1 (per-stage CPU% and iowait) and Figure 5
/// (average disk utilisation) of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage identifier within the job.
    pub stage_id: usize,
    /// Wall-clock (simulated) duration of the stage in seconds.
    pub duration: f64,
    /// Mean CPU busy fraction across nodes and time.
    pub avg_cpu_busy: f64,
    /// Mean CPU iowait fraction across nodes and time.
    pub avg_cpu_iowait: f64,
    /// Mean disk utilisation across nodes and time.
    pub avg_disk_util: f64,
    /// Total bytes read from storage during the stage.
    pub bytes_read: u64,
    /// Total bytes written to storage during the stage.
    pub bytes_written: u64,
    /// Total bytes moved over the network (shuffle) during the stage.
    pub bytes_shuffled: u64,
}

impl StageSummary {
    /// Total I/O activity (storage reads + writes) during the stage.
    pub fn io_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Incrementally builds a [`StageSummary`] from utilisation samples.
///
/// # Examples
///
/// ```
/// use sae_metrics::{StageSummaryBuilder, UtilizationSample};
///
/// let mut b = StageSummaryBuilder::new(0);
/// b.observe(UtilizationSample { cpu_busy: 0.5, cpu_iowait: 0.3, disk_util: 0.9 });
/// b.observe(UtilizationSample { cpu_busy: 0.7, cpu_iowait: 0.1, disk_util: 0.7 });
/// b.add_read_bytes(1024);
/// let summary = b.finish(10.0);
/// assert!((summary.avg_cpu_busy - 0.6).abs() < 1e-12);
/// assert_eq!(summary.bytes_read, 1024);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StageSummaryBuilder {
    stage_id: usize,
    samples: usize,
    sum_busy: f64,
    sum_iowait: f64,
    sum_disk: f64,
    bytes_read: u64,
    bytes_written: u64,
    bytes_shuffled: u64,
}

impl StageSummaryBuilder {
    /// Creates a builder for stage `stage_id`.
    pub fn new(stage_id: usize) -> Self {
        Self {
            stage_id,
            ..Self::default()
        }
    }

    /// Feeds one utilisation sample; fractions are clamped to `[0, 1]`.
    pub fn observe(&mut self, sample: UtilizationSample) {
        self.samples += 1;
        self.sum_busy += sample.cpu_busy.clamp(0.0, 1.0);
        self.sum_iowait += sample.cpu_iowait.clamp(0.0, 1.0);
        self.sum_disk += sample.disk_util.clamp(0.0, 1.0);
    }

    /// Accumulates storage read bytes.
    pub fn add_read_bytes(&mut self, bytes: u64) {
        self.bytes_read += bytes;
    }

    /// Accumulates storage write bytes.
    pub fn add_written_bytes(&mut self, bytes: u64) {
        self.bytes_written += bytes;
    }

    /// Accumulates shuffled (network) bytes.
    pub fn add_shuffled_bytes(&mut self, bytes: u64) {
        self.bytes_shuffled += bytes;
    }

    /// Finalises the summary with the stage's wall-clock `duration`.
    ///
    /// With zero samples the utilisation averages are reported as `0.0`.
    pub fn finish(self, duration: f64) -> StageSummary {
        let n = self.samples.max(1) as f64;
        StageSummary {
            stage_id: self.stage_id,
            duration,
            avg_cpu_busy: if self.samples == 0 {
                0.0
            } else {
                self.sum_busy / n
            },
            avg_cpu_iowait: if self.samples == 0 {
                0.0
            } else {
                self.sum_iowait / n
            },
            avg_disk_util: if self.samples == 0 {
                0.0
            } else {
                self.sum_disk / n
            },
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            bytes_shuffled: self.bytes_shuffled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(busy: f64, iowait: f64, disk: f64) -> UtilizationSample {
        UtilizationSample {
            cpu_busy: busy,
            cpu_iowait: iowait,
            disk_util: disk,
        }
    }

    #[test]
    fn averages_over_samples() {
        let mut b = StageSummaryBuilder::new(3);
        b.observe(sample(0.2, 0.8, 1.0));
        b.observe(sample(0.4, 0.6, 0.0));
        let s = b.finish(5.0);
        assert_eq!(s.stage_id, 3);
        assert!((s.avg_cpu_busy - 0.3).abs() < 1e-12);
        assert!((s.avg_cpu_iowait - 0.7).abs() < 1e-12);
        assert!((s.avg_disk_util - 0.5).abs() < 1e-12);
        assert_eq!(s.duration, 5.0);
    }

    #[test]
    fn zero_samples_reports_zero_util() {
        let s = StageSummaryBuilder::new(0).finish(1.0);
        assert_eq!(s.avg_cpu_busy, 0.0);
        assert_eq!(s.avg_disk_util, 0.0);
    }

    #[test]
    fn out_of_range_samples_are_clamped() {
        let mut b = StageSummaryBuilder::new(0);
        b.observe(sample(1.5, -0.5, 2.0));
        let s = b.finish(1.0);
        assert_eq!(s.avg_cpu_busy, 1.0);
        assert_eq!(s.avg_cpu_iowait, 0.0);
        assert_eq!(s.avg_disk_util, 1.0);
    }

    #[test]
    fn byte_accounting_sums() {
        let mut b = StageSummaryBuilder::new(1);
        b.add_read_bytes(10);
        b.add_read_bytes(20);
        b.add_written_bytes(5);
        b.add_shuffled_bytes(7);
        let s = b.finish(1.0);
        assert_eq!(s.bytes_read, 30);
        assert_eq!(s.bytes_written, 5);
        assert_eq!(s.bytes_shuffled, 7);
        assert_eq!(s.io_bytes(), 35);
    }

    #[test]
    fn summary_clone_and_eq() {
        let mut b = StageSummaryBuilder::new(2);
        b.observe(sample(0.5, 0.25, 0.75));
        let s = b.finish(2.0);
        assert_eq!(s.clone(), s);
    }
}
