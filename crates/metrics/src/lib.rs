//! Metric primitives for the SAE (self-adaptive executors) stack.
//!
//! This crate provides the observability substrate that the paper obtains
//! from `mpstat`, `strace`, `iostat` and the Spark metrics system:
//!
//! * [`Counter`] / [`FloatCounter`] — monotonically increasing totals
//!   (bytes read, tasks finished, accumulated epoll-wait seconds).
//! * [`Gauge`] — instantaneous values (current pool size, queue depth).
//! * [`Histogram`] — log-bucketed distribution summaries (task durations).
//! * [`Ewma`] — exponentially weighted moving averages for smoothed signals.
//! * [`TimeSeries`] — `(time, value)` samples with resampling and windowed
//!   aggregation, used for the throughput-over-time figures.
//! * [`MetricRegistry`] — a namespaced registry of all of the above.
//! * [`StageSummary`] — the per-stage roll-up (CPU%, iowait%, disk
//!   utilisation, bytes moved) that drives Figures 1 and 5 of the paper.
//!
//! All metric types are thread-safe (lock-free where practical) so the same
//! machinery serves the single-threaded simulator and the real thread pool
//! in `sae-pool`.
//!
//! # Examples
//!
//! ```
//! use sae_metrics::{MetricRegistry, TimeSeries};
//!
//! let registry = MetricRegistry::new();
//! let bytes = registry.counter("disk.bytes_read");
//! bytes.add(4096);
//! assert_eq!(bytes.value(), 4096);
//!
//! let mut ts = TimeSeries::new();
//! ts.push(0.0, 100.0);
//! ts.push(1.0, 300.0);
//! assert_eq!(ts.mean(), Some(200.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod ewma;
mod histogram;
mod prometheus;
mod registry;
mod reporters;
mod stage;
mod timeseries;

pub use counter::{Counter, FloatCounter, Gauge};
pub use ewma::Ewma;
pub use histogram::{Histogram, HistogramSnapshot};
pub use prometheus::{render_prometheus, snapshot_jsonl_line, EXPOSITION_CONTENT_TYPE};
pub use registry::{MetricRegistry, RegistrySnapshot};
pub use reporters::{iostat_report, mpstat_report};
pub use stage::{StageSummary, StageSummaryBuilder, UtilizationSample};
pub use timeseries::{TimeSeries, TimeSeriesPoint};
