//! Log-bucketed histograms for distribution summaries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: covers [`Histogram::MIN_TRACKED`], growing by the
/// bucket growth factor per bucket, plus an overflow bucket.
const BUCKETS: usize = 256;

/// A thread-safe histogram with exponentially sized buckets.
///
/// Values are clamped into `[MIN_TRACKED, +inf)`; each bucket spans a fixed
/// multiplicative range so relative error of quantile estimates is bounded by
/// the growth factor. Suited to positively valued, heavy-tailed measurements
/// such as task durations and I/O request latencies.
///
/// # Examples
///
/// ```
/// use sae_metrics::Histogram;
///
/// let h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert!((snap.mean - 2.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Multiplicative width of each bucket (~15% relative quantile error).
const GROWTH: f64 = 1.15;

impl Histogram {
    /// Smallest distinguishable value; everything below lands in bucket 0.
    pub const MIN_TRACKED: f64 = 1e-6;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a single observation.
    ///
    /// Negative and NaN values are recorded into the lowest bucket; the
    /// histogram is meant for non-negative measurements.
    pub fn record(&self, value: f64) {
        let idx = Self::bucket_index(value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        atomic_f64_update(&self.inner.sum_bits, |s| s + v);
        atomic_f64_update(&self.inner.min_bits, |m| m.min(v));
        atomic_f64_update(&self.inner.max_bits, |m| m.max(v));
    }

    fn bucket_index(value: f64) -> usize {
        if !value.is_finite() || value <= Self::MIN_TRACKED {
            return 0;
        }
        let idx = (value / Self::MIN_TRACKED).ln() / GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `idx` in value space.
    fn bucket_floor(idx: usize) -> f64 {
        Self::MIN_TRACKED * GROWTH.powi(idx as i32)
    }

    /// Returns a point-in-time summary of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.inner.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed));
        let counts: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.inner.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.inner.max_bits.load(Ordering::Relaxed))
            },
            bucket_counts: counts,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            inner: Arc::new(Inner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            }),
        }
    }
}

fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// An immutable summary of a [`Histogram`] at a point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total number of recorded observations.
    pub count: u64,
    /// Arithmetic mean of all observations.
    pub mean: f64,
    /// Smallest observation (0.0 when empty).
    pub min: f64,
    /// Largest observation (0.0 when empty).
    pub max: f64,
    /// Raw per-bucket counts (exponentially sized buckets).
    pub bucket_counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from bucket boundaries.
    ///
    /// Returns `None` for an empty histogram. The estimate has bounded
    /// relative error given by the bucket growth factor.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return None;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.bucket_counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Midpoint of the bucket in value space, clamped to observed range.
                let lo = Histogram::bucket_floor(idx);
                let hi = lo * GROWTH;
                let est = (lo + hi) / 2.0;
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean, 0.0);
        assert_eq!(snap.quantile(0.5), None);
    }

    #[test]
    fn mean_min_max_exact() {
        let h = Histogram::new();
        for v in [2.0, 4.0, 6.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
    }

    #[test]
    fn quantile_bounded_relative_error() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 100.0); // 0.01 .. 10.0
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 5.0).abs() / 5.0 < 0.20, "p50 = {p50}");
        let p99 = s.quantile(0.99).unwrap();
        assert!((p99 - 9.9).abs() / 9.9 < 0.20, "p99 = {p99}");
    }

    #[test]
    fn tiny_and_pathological_values_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.bucket_counts[0], 3);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let h = Histogram::new();
        h.record(f64::MAX / 2.0);
        let s = h.snapshot();
        assert_eq!(*s.bucket_counts.last().unwrap(), 1);
    }

    #[test]
    fn quantile_zero_and_one_within_range() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let q0 = s.quantile(0.0).unwrap();
        let q1 = s.quantile(1.0).unwrap();
        assert!(q0 >= s.min && q0 <= s.max);
        assert!(q1 >= s.min && q1 <= s.max);
    }

    #[test]
    fn clone_shares_state() {
        let h = Histogram::new();
        let h2 = h.clone();
        h2.record(1.0);
        assert_eq!(h.snapshot().count, 1);
    }
}
