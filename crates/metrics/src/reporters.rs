//! Text reporters in the format of the Linux tools the paper used.
//!
//! The evaluation collects CPU statistics with `mpstat` and disk
//! statistics with `iostat`, averaged across the cluster (§3). These
//! reporters render [`StageSummary`] data in the same spirit, for humans
//! reading experiment output.

use crate::stage::StageSummary;

/// Renders an `mpstat`-style CPU report for a sequence of stages.
///
/// # Examples
///
/// ```
/// use sae_metrics::{mpstat_report, StageSummaryBuilder, UtilizationSample};
///
/// let mut b = StageSummaryBuilder::new(0);
/// b.observe(UtilizationSample { cpu_busy: 0.06, cpu_iowait: 0.90, disk_util: 0.95 });
/// let report = mpstat_report(&[b.finish(100.0)]);
/// assert!(report.contains("%usr"));
/// assert!(report.contains("%iowait"));
/// ```
pub fn mpstat_report(stages: &[StageSummary]) -> String {
    let mut out = String::from("stage      %usr  %iowait  %idle\n");
    for s in stages {
        let usr = s.avg_cpu_busy * 100.0;
        let iowait = s.avg_cpu_iowait * 100.0;
        let idle = (100.0 - usr - iowait).max(0.0);
        out.push_str(&format!(
            "stage-{:<4} {:>5.1} {:>8.1} {:>6.1}\n",
            s.stage_id, usr, iowait, idle
        ));
    }
    out
}

/// Renders an `iostat`-style device report for a sequence of stages.
///
/// `rMB/s` and `wMB/s` are stage averages (total bytes over stage
/// duration); `%util` is the time-weighted busy fraction.
///
/// # Examples
///
/// ```
/// use sae_metrics::{iostat_report, StageSummaryBuilder, UtilizationSample};
///
/// let mut b = StageSummaryBuilder::new(0);
/// b.observe(UtilizationSample { cpu_busy: 0.1, cpu_iowait: 0.8, disk_util: 0.91 });
/// b.add_read_bytes(10_240);
/// let report = iostat_report(&[b.finish(10.0)]);
/// assert!(report.contains("%util"));
/// ```
pub fn iostat_report(stages: &[StageSummary]) -> String {
    let mut out = String::from("stage      rMB/s   wMB/s   %util\n");
    for s in stages {
        let dur = s.duration.max(1e-9);
        out.push_str(&format!(
            "stage-{:<4} {:>6.1} {:>7.1} {:>7.1}\n",
            s.stage_id,
            s.bytes_read as f64 / dur,
            s.bytes_written as f64 / dur,
            s.avg_disk_util * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{StageSummaryBuilder, UtilizationSample};

    fn summary(id: usize, busy: f64, iowait: f64, util: f64, dur: f64) -> StageSummary {
        let mut b = StageSummaryBuilder::new(id);
        b.observe(UtilizationSample {
            cpu_busy: busy,
            cpu_iowait: iowait,
            disk_util: util,
        });
        b.add_read_bytes(1000);
        b.add_written_bytes(500);
        b.finish(dur)
    }

    #[test]
    fn mpstat_has_one_row_per_stage() {
        let stages = vec![
            summary(0, 0.06, 0.9, 0.95, 10.0),
            summary(1, 0.15, 0.8, 0.9, 5.0),
        ];
        let report = mpstat_report(&stages);
        assert_eq!(report.lines().count(), 3);
        assert!(report.contains("stage-0"));
        assert!(report.contains("stage-1"));
    }

    #[test]
    fn mpstat_idle_complements_busy_and_iowait() {
        let report = mpstat_report(&[summary(0, 0.25, 0.50, 0.9, 10.0)]);
        let row = report.lines().nth(1).unwrap();
        assert!(row.contains("25.0"));
        assert!(row.contains("50.0"));
        assert!(row.contains("25.0"));
    }

    #[test]
    fn iostat_rates_are_bytes_over_duration() {
        let report = iostat_report(&[summary(0, 0.1, 0.8, 0.91, 10.0)]);
        let row = report.lines().nth(1).unwrap();
        // 1000 B read over 10 s = 100 B/s displayed in the MB/s column of
        // this unit-agnostic summary.
        assert!(row.contains("100.0"), "{row}");
        assert!(row.contains("50.0"), "{row}");
        assert!(row.contains("91.0"), "{row}");
    }

    #[test]
    fn empty_input_renders_header_only() {
        assert_eq!(mpstat_report(&[]).lines().count(), 1);
        assert_eq!(iostat_report(&[]).lines().count(), 1);
    }
}
