//! Property-based tests for the metric primitives.

use proptest::prelude::*;
use sae_metrics::{Ewma, Histogram, TimeSeries};

proptest! {
    /// Histogram min/max/mean are consistent with the recorded values and
    /// quantiles stay within [min, max].
    #[test]
    fn histogram_summary_consistent(values in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert!((s.min - min).abs() < 1e-9);
        prop_assert!((s.max - max).abs() < 1e-9);
        prop_assert!((s.mean - mean).abs() < 1e-6 * mean.max(1.0));
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let est = s.quantile(q).unwrap();
            prop_assert!(est >= min - 1e-9 && est <= max + 1e-9);
        }
    }

    /// Quantile estimates have bounded relative error (the bucket growth
    /// factor) for values inside the tracked range.
    #[test]
    fn histogram_quantile_relative_error(values in prop::collection::vec(0.01f64..1e4, 50..500)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let s = h.snapshot();
        let exact = sorted[sorted.len() / 2];
        let est = s.quantile(0.5).unwrap();
        prop_assert!(
            (est - exact).abs() / exact < 0.30,
            "p50 estimate {est} vs exact {exact}"
        );
    }

    /// Step integration over the full span equals the sum of value×width
    /// segments (non-negative values → non-negative integral).
    #[test]
    fn timeseries_integral_matches_manual(
        values in prop::collection::vec(0.0f64..100.0, 1..50),
    ) {
        let mut ts = TimeSeries::new();
        for (i, &v) in values.iter().enumerate() {
            ts.push(i as f64, v);
        }
        let end = values.len() as f64;
        let manual: f64 = values.iter().sum(); // unit-width steps
        let integral = ts.integrate(0.0, end);
        prop_assert!((integral - manual).abs() < 1e-6 * manual.max(1.0));
        prop_assert!(integral >= 0.0);
    }

    /// EWMA output is always within the range of its inputs.
    #[test]
    fn ewma_stays_in_input_hull(
        alpha in 0.01f64..1.0,
        values in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut e = Ewma::new(alpha);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in &values {
            e.observe(v);
            let current = e.value().unwrap();
            prop_assert!(current >= min - 1e-9 && current <= max + 1e-9);
        }
    }
}
