//! Property-based tests for the engine: conservation laws over random
//! jobs, policies and configurations.

use proptest::prelude::*;
use sae_core::{StaticPolicy, ThreadPolicy};
use sae_dag::{Engine, EngineConfig, FaultPlan, JobSpec, StageSpec, TraceEvent};

/// A random but valid job: 1–4 stages, the first reading from the DFS,
/// later stages chained through shuffles.
fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        64.0f64..2048.0,                          // input MB
        0.0f64..0.2,                              // cpu per MB
        prop::collection::vec(0.1f64..1.0, 0..3), // shuffle chain fractions
        prop::bool::ANY,                          // write output?
    )
        .prop_map(|(input, cpu, chain, write)| {
            let mut builder = JobSpec::builder("prop-job");
            let mut prev_out = if chain.is_empty() {
                0.0
            } else {
                input * chain[0]
            };
            let mut first = StageSpec::read("ingest", input).cpu_per_mb(cpu);
            if prev_out > 0.0 {
                first = first.shuffle_out(prev_out);
            }
            builder = builder.stage(first);
            for (i, &frac) in chain.iter().enumerate().skip(1) {
                let out = input * frac;
                builder = builder.stage(
                    StageSpec::shuffle(&format!("hop-{i}"), prev_out)
                        .cpu_per_mb(cpu)
                        .shuffle_out(out),
                );
                prev_out = out;
            }
            if !chain.is_empty() {
                let mut last = StageSpec::shuffle("sink", prev_out).cpu_per_mb(cpu);
                if write {
                    last = last.write_output(input * 0.5);
                }
                builder = builder.stage(last);
            } else if write {
                // Single-stage job: attach the write to the read stage.
                return JobSpec::builder("prop-job")
                    .stage(
                        StageSpec::read("ingest", input)
                            .cpu_per_mb(cpu)
                            .write_output(input * 0.5),
                    )
                    .build();
            }
            builder.build()
        })
}

fn small_cluster() -> EngineConfig {
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.nodes = 2;
    cfg.block_size_mb = 64;
    cfg
}

/// A random but valid fault plan: an optional transient failure rate and
/// an optional early crash on a two-node cluster.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1024,
        prop::option::of(0.01f64..0.25),
        prop::option::of((0usize..2, 1.0f64..40.0, 1.0f64..25.0)),
    )
        .prop_map(|(seed, failures, crash)| {
            let mut plan = FaultPlan::new(seed);
            if let Some(p) = failures {
                plan = plan.with_task_failures(p);
            }
            if let Some((executor, at, downtime)) = crash {
                plan = plan.with_crash(executor, at, downtime);
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every task runs exactly once, regardless of the job shape or policy.
    #[test]
    fn tasks_conserved(job in arb_job(), threads in 1usize..33) {
        let policy = if threads == 32 {
            ThreadPolicy::Default
        } else {
            ThreadPolicy::Static(StaticPolicy::new(threads))
        };
        let report = Engine::new(small_cluster(), policy).run(&job);
        prop_assert_eq!(report.stages.len(), job.stages.len());
        for stage in &report.stages {
            prop_assert_eq!(
                stage.executors.iter().map(|e| e.tasks).sum::<usize>(),
                stage.tasks
            );
            prop_assert!(stage.duration > 0.0);
        }
    }

    /// Disk I/O accounting equals the job's declared volumes exactly.
    #[test]
    fn io_conserved(job in arb_job()) {
        let report = Engine::new(small_cluster(), ThreadPolicy::Default).run(&job);
        let expected_read: f64 = job.stages.iter().map(|s| s.read_mb + s.shuffle_in_mb).sum();
        let expected_write: f64 = job
            .stages
            .iter()
            .map(|s| s.shuffle_out_mb + s.output_mb) // output replication = 1
            .sum();
        let read: f64 = report.stages.iter().map(|s| s.disk_read_mb).sum();
        let write: f64 = report.stages.iter().map(|s| s.disk_write_mb).sum();
        prop_assert!((read - expected_read).abs() < 1e-6 * expected_read.max(1.0),
            "read {read} vs {expected_read}");
        prop_assert!((write - expected_write).abs() < 1e-6 * expected_write.max(1.0),
            "write {write} vs {expected_write}");
    }

    /// Same job + same config = bit-identical runtime (pure function).
    #[test]
    fn runs_deterministic(job in arb_job()) {
        let a = Engine::new(small_cluster(), ThreadPolicy::Default).run(&job);
        let b = Engine::new(small_cluster(), ThreadPolicy::Default).run(&job);
        prop_assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
    }

    /// Utilisation fractions are physical for any job.
    #[test]
    fn utilisation_physical(job in arb_job()) {
        let cfg = small_cluster();
        let report = Engine::new(cfg.clone(), cfg.adaptive_policy()).run(&job);
        for stage in &report.stages {
            prop_assert!((0.0..=1.0).contains(&stage.avg_cpu_busy));
            prop_assert!((0.0..=1.0).contains(&stage.avg_cpu_iowait));
            prop_assert!((0.0..=1.0).contains(&stage.avg_disk_util));
            prop_assert!(stage.avg_cpu_busy + stage.avg_cpu_iowait <= 1.0 + 1e-9);
        }
    }

    /// Adaptive decisions always stay within the configured bounds.
    #[test]
    fn adaptive_bounded(job in arb_job()) {
        let cfg = small_cluster();
        let report = Engine::new(cfg.clone(), cfg.adaptive_policy()).run(&job);
        for stage in &report.stages {
            for e in &stage.executors {
                for &d in &e.decisions {
                    prop_assert!((2..=32).contains(&d), "decision {d}");
                }
            }
        }
    }

    /// A seeded fault plan is part of the pure function: reruns either
    /// complete with bit-identical accounting or fail with the same error.
    #[test]
    fn fault_injected_runs_deterministic(job in arb_job(), plan in arb_fault_plan()) {
        let mut cfg = small_cluster();
        cfg.fault_plan = Some(plan);
        let engine = Engine::new(cfg, ThreadPolicy::Default);
        match (engine.try_run(&job), engine.try_run(&job)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.total_runtime.to_bits(), b.total_runtime.to_bits());
                prop_assert_eq!(a.total_attempts(), b.total_attempts());
                prop_assert_eq!(a.total_failed_attempts(), b.total_failed_attempts());
                for (x, y) in a.stages.iter().zip(&b.stages) {
                    prop_assert_eq!(x.duration.to_bits(), y.duration.to_bits());
                    prop_assert_eq!(x.disk_read_mb.to_bits(), y.disk_read_mb.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    /// Once the driver blacklists an executor, no further attempt ever
    /// starts on it.
    #[test]
    fn blacklisted_executors_receive_no_work(job in arb_job(), seed in 0u64..512) {
        let mut cfg = small_cluster();
        cfg.fault_plan = Some(FaultPlan::new(seed).with_task_failures(0.15));
        let engine = Engine::new(cfg, ThreadPolicy::Default);
        if let Ok((report, trace)) = engine.try_run_traced(&job) {
            let mut banned = Vec::new();
            for event in trace.events() {
                match *event {
                    TraceEvent::ExecutorBlacklisted { executor, .. } => banned.push(executor),
                    TraceEvent::TaskStarted { executor, at, .. } => prop_assert!(
                        !banned.contains(&executor),
                        "blacklisted executor {executor} started a task at {at}"
                    ),
                    _ => {}
                }
            }
            prop_assert_eq!(banned, report.blacklisted_executors);
        }
    }
}
