//! Property-based tests for the wire codec: round-trips for every
//! [`Message`] variant, streaming reassembly, and totality on malformed
//! input (errors, never panics).

use proptest::prelude::*;
use sae_dag::codec::{self, FrameError, LEN_PREFIX, MAX_BODY_LEN};
use sae_dag::Message;

/// Any protocol message, with fields across the whole `usize` domain the
/// codec must carry (the driver uses dense indices, but the wire format
/// must not silently wrap large values).
fn arb_message() -> impl Strategy<Value = Message> {
    (
        0u8..4,
        0usize..=usize::MAX,
        0usize..=usize::MAX,
        0usize..=usize::MAX,
    )
        .prop_map(|(variant, a, b, c)| match variant {
            0 => Message::AssignTask {
                task: a,
                executor: b,
            },
            1 => Message::PoolSizeChanged {
                executor: a,
                size: b,
            },
            2 => Message::Heartbeat { executor: a },
            _ => Message::TaskFailed {
                task: a,
                executor: b,
                attempt: c,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → decode is the identity, and consumes the exact frame.
    #[test]
    fn round_trip(msg in arb_message()) {
        let mut buf = Vec::new();
        codec::encode_frame(&msg, &mut buf);
        let (decoded, consumed) = codec::decode_frame(&buf)
            .expect("own encoding decodes")
            .expect("complete frame");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(consumed, buf.len());
    }

    /// A concatenated stream of frames decodes back to the same sequence,
    /// regardless of how the byte stream is chunked.
    #[test]
    fn stream_reassembly(msgs in prop::collection::vec(arb_message(), 1..20)) {
        let mut buf = Vec::new();
        for m in &msgs {
            codec::encode_frame(m, &mut buf);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((m, consumed)) = codec::decode_frame(&buf[offset..]).unwrap() {
            decoded.push(m);
            offset += consumed;
        }
        prop_assert_eq!(offset, buf.len());
        prop_assert_eq!(decoded, msgs);
    }

    /// Every strict prefix of a valid frame reports "incomplete", not an
    /// error and not a bogus message.
    #[test]
    fn prefixes_are_incomplete(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        codec::encode_frame(&msg, &mut buf);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let cut = cut.min(buf.len() - 1);
        prop_assert_eq!(codec::decode_frame(&buf[..cut]).unwrap(), None);
    }

    /// Decoding arbitrary bytes is total: it returns Ok or Err but never
    /// panics, and any successfully decoded frame re-encodes to the same
    /// body it was decoded from.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        if let Ok(Some((msg, consumed))) = codec::decode_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
            let mut re = Vec::new();
            codec::encode_frame(&msg, &mut re);
            prop_assert_eq!(&re[..], &bytes[..consumed]);
        }
    }

    /// A frame whose declared body length is shorter or longer than the
    /// variant's layout is rejected with the precise error class.
    #[test]
    fn mismatched_length_rejected(msg in arb_message(), delta in 1usize..8) {
        let mut buf = Vec::new();
        codec::encode_frame(&msg, &mut buf);
        let body_len = buf.len() - LEN_PREFIX;

        // Truncated: chop `delta` bytes off the body and fix the prefix.
        let shorter = body_len - delta.min(body_len - 1);
        let mut truncated = ((shorter as u32).to_be_bytes()).to_vec();
        truncated.extend_from_slice(&buf[LEN_PREFIX..LEN_PREFIX + shorter]);
        prop_assert!(matches!(
            codec::decode_frame(&truncated),
            Err(FrameError::Truncated { .. })
        ));

        // Oversized declared length beyond the cap.
        let mut oversized = (((MAX_BODY_LEN + delta) as u32).to_be_bytes()).to_vec();
        oversized.extend_from_slice(&buf[LEN_PREFIX..]);
        prop_assert!(matches!(
            codec::decode_frame(&oversized),
            Err(FrameError::Oversized { .. })
        ));

        // Trailing garbage inside the declared body.
        let mut padded_body = buf[LEN_PREFIX..].to_vec();
        padded_body.extend(std::iter::repeat_n(0xAB, delta));
        let mut trailing = ((padded_body.len() as u32).to_be_bytes()).to_vec();
        trailing.extend_from_slice(&padded_body);
        prop_assert!(matches!(
            codec::decode_frame(&trailing),
            Err(FrameError::TrailingBytes { .. })
        ));
    }

    /// Corrupting the tag byte of a valid frame yields UnknownTag (for tag
    /// values outside the defined space), never a panic.
    #[test]
    fn corrupt_tag_rejected(msg in arb_message(), tag in 4u8..=255) {
        let mut buf = Vec::new();
        codec::encode_frame(&msg, &mut buf);
        buf[LEN_PREFIX] = tag;
        // Tag determines expected length, so either the length no longer
        // matches (Truncated/Trailing) or the tag is unknown.
        prop_assert!(codec::decode_frame(&buf).is_err());
    }
}
