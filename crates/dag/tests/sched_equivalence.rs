//! Scheduler equivalence: the indexed pending queue must be invisible in
//! the results. Every run here executes twice — once through the indexed
//! scheduler, once through the pre-index O(pending)-scan reference
//! (`reference_scheduler = true`, available under the `reference-impl`
//! feature) — and both the job report and the full execution trace (every
//! assignment, failure, blacklist and speculative clone, in order) must be
//! bit-identical.
//!
//! Queue-level operation scripts are pinned separately by the proptests in
//! `sae_dag::sched`; these tests drive the whole engine, with faults,
//! blacklisting and speculation enabled, so the free-slot worklist, the
//! running median and the candidate index are exercised too.

use proptest::prelude::*;
use sae_core::ThreadPolicy;
use sae_dag::{Engine, EngineConfig, FaultPlan, JobSpec, StageSpec};

/// A random but valid job: 1–3 stages, the first reading from the DFS,
/// later stages chained through shuffles. Kept small — every case runs the
/// engine twice.
fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        64.0f64..768.0,                           // input MB
        0.0f64..0.1,                              // cpu per MB
        prop::collection::vec(0.1f64..1.0, 0..2), // shuffle chain fractions
        prop::bool::ANY,                          // write output?
    )
        .prop_map(|(input, cpu, chain, write)| {
            let mut builder = JobSpec::builder("equiv-job");
            let mut first = StageSpec::read("ingest", input).cpu_per_mb(cpu);
            if let Some(&frac) = chain.first() {
                first = first.shuffle_out(input * frac);
            }
            builder = builder.stage(first);
            if let Some(&frac) = chain.first() {
                let mut last = StageSpec::shuffle("sink", input * frac).cpu_per_mb(cpu);
                if write {
                    last = last.write_output(input * 0.5);
                }
                builder = builder.stage(last);
            }
            builder.build()
        })
}

/// A random fault plan mixing transient failures (these drive `failed_on`
/// avoidance and blacklisting), an optional crash, message delays, and
/// heartbeat loss.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..1024,
        prop::option::of(0.01f64..0.2),
        prop::option::of((0usize..2, 1.0f64..30.0, 1.0f64..20.0)),
        prop::option::of(0.0f64..0.01),
        prop::option::of(0.01f64..0.1),
    )
        .prop_map(|(seed, failures, crash, delay, hb_loss)| {
            let mut plan = FaultPlan::new(seed);
            if let Some(p) = failures {
                plan = plan.with_task_failures(p);
            }
            if let Some((executor, at, downtime)) = crash {
                plan = plan.with_crash(executor, at, downtime);
            }
            if let Some(d) = delay {
                plan = plan.with_message_delay(d);
            }
            if let Some(p) = hb_loss {
                plan = plan.with_heartbeat_loss(p);
            }
            plan
        })
}

fn small_cluster() -> EngineConfig {
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.nodes = 2;
    cfg.block_size_mb = 64;
    cfg
}

/// Runs the job through both schedulers and asserts bit-identical
/// outcomes (success or failure alike).
fn assert_equivalent(cfg: &EngineConfig, job: &JobSpec) -> Result<(), TestCaseError> {
    let indexed = Engine::new(cfg.clone(), ThreadPolicy::Default).try_run_traced(job);
    let mut ref_cfg = cfg.clone();
    ref_cfg.reference_scheduler = true;
    let reference = Engine::new(ref_cfg, ThreadPolicy::Default).try_run_traced(job);
    match (indexed, reference) {
        (Ok((ir, it)), Ok((rr, rt))) => {
            // `{:?}` of f64 is the shortest round-trip representation, so
            // equal debug strings mean bit-equal reports.
            prop_assert_eq!(format!("{ir:?}"), format!("{rr:?}"), "reports diverged");
            prop_assert_eq!(format!("{it:?}"), format!("{rt:?}"), "traces diverged");
        }
        (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
        (a, b) => prop_assert!(false, "outcomes diverged: {a:?} vs {b:?}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fault-free jobs: pure locality + FIFO scheduling.
    #[test]
    fn equivalent_fault_free(job in arb_job()) {
        assert_equivalent(&small_cluster(), &job)?;
    }

    /// Faulted jobs with speculation enabled: retries, `failed_on`
    /// avoidance, blacklisting, straggler cloning and the free-slot
    /// worklist all active.
    #[test]
    fn equivalent_under_faults_and_speculation(
        job in arb_job(),
        plan in arb_fault_plan(),
    ) {
        let mut cfg = small_cluster();
        cfg.fault_plan = Some(plan);
        cfg.fault_tolerance.speculation_multiplier = 1.2;
        cfg.fault_tolerance.speculation_quantile = 0.5;
        assert_equivalent(&cfg, &job)?;
    }
}

/// Remote reads under partial replication force the locality lanes (short
/// replica lists) and the FIFO fallback into play on a wider cluster.
#[test]
fn equivalent_with_partial_replication() {
    let mut cfg = EngineConfig::four_node_hdd();
    cfg.block_size_mb = 64;
    cfg.input_replication = 1; // primaries only: scarce locality
    let job = JobSpec::builder("remote")
        .stage(StageSpec::read("ingest", 4096.0).cpu_per_mb(0.002))
        .build();
    let indexed = Engine::new(cfg.clone(), ThreadPolicy::Default).run_traced(&job);
    cfg.reference_scheduler = true;
    let reference = Engine::new(cfg, ThreadPolicy::Default).run_traced(&job);
    assert_eq!(format!("{:?}", indexed.0), format!("{:?}", reference.0));
    assert_eq!(format!("{:?}", indexed.1), format!("{:?}", reference.1));
}
